//! Property test: histogram-sketch quantiles stay within one log bucket
//! of the exact nearest-rank quantile computed the way
//! `LatencyStats::quantile` does (clone, sort, nearest rank).

use proptest::prelude::*;
use tetrisched_telemetry::{HistogramSketch, BUCKETS_PER_DOUBLING};

/// Exact nearest-rank quantile, mirroring `LatencyStats::quantile`.
fn exact_quantile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Log-bucket index of a positive value, matching the sketch's grid.
fn bucket_of(v: f64) -> i64 {
    (v.log2() * BUCKETS_PER_DOUBLING).floor() as i64
}

proptest! {
    #[test]
    fn sketch_quantile_within_one_bucket(
        samples in prop::collection::vec(1e-6f64..1e9, 1..300),
        q in 0.0f64..1.0,
    ) {
        let mut sketch = HistogramSketch::new();
        for &v in &samples {
            sketch.observe(v);
        }
        prop_assert_eq!(sketch.count(), samples.len() as u64);

        let exact = exact_quantile(&samples, q);
        let approx = sketch.quantile(q);
        prop_assert!(approx > 0.0, "approx {} for exact {}", approx, exact);
        // Same nearest-rank convention on both sides, so the chosen sample
        // and the returned representative share a bucket (or a neighbour,
        // once min/max clamping is involved).
        let delta = (bucket_of(approx) - bucket_of(exact)).abs();
        prop_assert!(
            delta <= 1,
            "q={} exact={} (bucket {}) approx={} (bucket {})",
            q, exact, bucket_of(exact), approx, bucket_of(approx)
        );
        // One bucket is a factor of 2^(1/4); allow sqrt(2) end to end.
        let ratio = approx / exact;
        prop_assert!(
            (0.70..=1.42).contains(&ratio),
            "ratio {} out of one-bucket range", ratio
        );
    }

    #[test]
    fn sketch_summary_matches_exact_moments(
        samples in prop::collection::vec(1e-3f64..1e6, 1..200),
    ) {
        let mut sketch = HistogramSketch::new();
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in &samples {
            sketch.observe(v);
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        prop_assert!((sketch.sum() - sum).abs() <= 1e-9 * sum.abs().max(1.0));
        prop_assert_eq!(sketch.min(), min);
        prop_assert_eq!(sketch.max(), max);
        // CDF is monotone in both coordinates and ends at 1.
        let cdf = sketch.cdf();
        prop_assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        let last = cdf[cdf.len() - 1];
        prop_assert!((last.1 - 1.0).abs() < 1e-12);
    }
}
