//! Golden tests: the JSONL and Chrome-trace exports of a small fixed
//! scenario must match byte-for-byte. The scenario mirrors one scheduler
//! cycle (cycle span wrapping solve/decode phases plus counters), built
//! deterministically so these strings are stable across runs and
//! platforms.

use tetrisched_telemetry::{Telemetry, TelemetryConfig};

/// One hand-driven "cycle" with two phases, a counter, and a histogram.
fn fixed_scenario() -> Telemetry {
    let t = Telemetry::new(TelemetryConfig::on());
    t.advance(4);
    {
        let cycle = t.span("sim", "cycle");
        cycle.arg("cycle", 1);
        {
            let _solve = t.span("sched", "solve");
        }
        {
            let _decode = t.span("sched", "decode");
        }
    }
    t.counter_add("sim.launches", 2);
    t.observe_sim("sched.batch_size", 2.0);
    t.observe_sim("sched.batch_size", 4.0);
    t
}

#[test]
fn jsonl_golden() {
    let expected = "\
{\"type\":\"meta\",\"spans\":3,\"spans_dropped\":0}
{\"type\":\"span\",\"id\":0,\"parent\":null,\"cat\":\"sim\",\"name\":\"cycle\",\"start_us\":4000000,\"end_us\":4000005,\"args\":{\"cycle\":1}}
{\"type\":\"span\",\"id\":1,\"parent\":0,\"cat\":\"sched\",\"name\":\"solve\",\"start_us\":4000001,\"end_us\":4000002,\"args\":{}}
{\"type\":\"span\",\"id\":2,\"parent\":0,\"cat\":\"sched\",\"name\":\"decode\",\"start_us\":4000003,\"end_us\":4000004,\"args\":{}}
{\"type\":\"counter\",\"name\":\"sim.launches\",\"value\":2}
{\"type\":\"hist\",\"domain\":\"sim\",\"name\":\"sched.batch_size\",\"count\":2,\"sum\":6,\"min\":2,\"max\":4,\"mean\":3,\"p50\":4,\"p95\":4,\"p99\":4,\"cdf\":[[2.1810154653305154,0.5],[4,1]]}
";
    assert_eq!(fixed_scenario().to_jsonl(false), expected);
}

#[test]
fn chrome_trace_golden() {
    let expected = "\
{\"traceEvents\":[
{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"tetrisched\"}},
{\"name\":\"cycle\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":4000000,\"dur\":5,\"pid\":1,\"tid\":1,\"args\":{\"cycle\":1}},
{\"name\":\"solve\",\"cat\":\"sched\",\"ph\":\"X\",\"ts\":4000001,\"dur\":1,\"pid\":1,\"tid\":1,\"args\":{}},
{\"name\":\"decode\",\"cat\":\"sched\",\"ph\":\"X\",\"ts\":4000003,\"dur\":1,\"pid\":1,\"tid\":1,\"args\":{}}
],\"displayTimeUnit\":\"ms\"}
";
    assert_eq!(fixed_scenario().to_chrome_trace(), expected);
}

#[test]
fn prometheus_golden() {
    let expected = "\
# TYPE tetrisched_spans_recorded counter
tetrisched_spans_recorded 3
# TYPE tetrisched_spans_dropped counter
tetrisched_spans_dropped 0
# TYPE tetrisched_sim_launches counter
tetrisched_sim_launches 2
# TYPE tetrisched_sched_batch_size summary
tetrisched_sched_batch_size{quantile=\"0.5\"} 4
tetrisched_sched_batch_size{quantile=\"0.95\"} 4
tetrisched_sched_batch_size{quantile=\"0.99\"} 4
tetrisched_sched_batch_size_sum 6
tetrisched_sched_batch_size_count 2
";
    assert_eq!(fixed_scenario().to_prometheus(false), expected);
}
