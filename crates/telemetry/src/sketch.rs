//! Bounded-memory log-bucketed histogram sketch.
//!
//! `LatencyStats` keeps every sample and clones + sorts the vector per
//! quantile query; fine for a few thousand cycle latencies, hopeless as a
//! general telemetry primitive. The sketch instead buckets values on a
//! logarithmic grid with [`BUCKETS_PER_DOUBLING`] buckets per power of two
//! (growth factor 2^(1/4) ~= 1.19), so any quantile is recoverable to
//! within one bucket of the exact answer while memory stays proportional
//! to the number of *distinct magnitudes* observed, not the sample count.

use std::collections::BTreeMap;

/// Buckets per doubling of the value range. Four gives a worst-case
/// relative quantile error of 2^(1/8) - 1 ~= 9% (half a bucket).
pub const BUCKETS_PER_DOUBLING: f64 = 4.0;

/// Bucket indices are clamped to this symmetric range, which covers
/// magnitudes from ~2^-512 to ~2^512 — far beyond any latency or count
/// this workspace produces — and bounds the map even on garbage input.
const MAX_BUCKET: i32 = 2048;

/// A mergeable, bounded-memory quantile sketch over nonnegative samples.
///
/// Values `<= 0` are tallied in a dedicated underflow bucket whose
/// representative is zero, so latency streams that contain exact zeros
/// (e.g. disabled phases) keep correct ranks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSketch {
    buckets: BTreeMap<i32, u64>,
    zero_or_less: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Maps a positive value to its bucket index.
fn bucket_of(v: f64) -> i32 {
    let raw = (v.log2() * BUCKETS_PER_DOUBLING).floor();
    if raw.is_nan() {
        0
    } else {
        raw.clamp(-(MAX_BUCKET as f64), (MAX_BUCKET - 1) as f64) as i32
    }
}

/// Geometric midpoint of bucket `i`: the representative returned for any
/// rank that lands in the bucket.
fn representative(i: i32) -> f64 {
    ((i as f64 + 0.5) / BUCKETS_PER_DOUBLING).exp2()
}

impl HistogramSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if v > 0.0 {
            *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
        } else {
            self.zero_or_less += 1;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0 for an empty sketch.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum sample, or 0 for an empty sketch.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum sample, or 0 for an empty sketch.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Number of occupied buckets (memory proxy; excludes the underflow
    /// bucket).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Nearest-rank quantile in `[0, 1]`, or 0 for an empty sketch.
    ///
    /// Uses the same nearest-rank convention as `LatencyStats::quantile`,
    /// so the two agree to within one bucket on identical streams. The
    /// bucket representative is clamped to the observed `[min, max]` so
    /// extreme quantiles never overshoot the data.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0)) * (self.count - 1) as f64).round() as u64;
        let mut seen = self.zero_or_less;
        if rank < seen {
            return 0.0;
        }
        for (&i, &n) in &self.buckets {
            seen += n;
            if rank < seen {
                return representative(i).clamp(self.min.max(0.0), self.max);
            }
        }
        self.max
    }

    /// CDF points `(bucket_representative, cumulative_fraction)` for
    /// plotting, ascending in value.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.buckets.len() + 1);
        let mut seen = 0u64;
        if self.zero_or_less > 0 {
            seen += self.zero_or_less;
            out.push((0.0, seen as f64 / self.count as f64));
        }
        for (&i, &n) in &self.buckets {
            seen += n;
            out.push((
                representative(i).clamp(self.min.max(0.0), self.max),
                seen as f64 / self.count as f64,
            ));
        }
        out
    }

    /// Folds another sketch into this one. `min`/`max` stay exact.
    pub fn merge(&mut self, other: &HistogramSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.zero_or_less += other.zero_or_less;
        for (&i, &n) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_is_zero() {
        let s = HistogramSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert!(s.cdf().is_empty());
    }

    #[test]
    fn single_sample_round_trips() {
        let mut s = HistogramSketch::new();
        s.observe(3.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.min(), 3.0);
        assert_eq!(s.max(), 3.0);
        // With one sample every quantile lands in its bucket; the
        // representative is clamped to [min, max] = [3, 3].
        assert_eq!(s.quantile(0.0), 3.0);
        assert_eq!(s.quantile(1.0), 3.0);
    }

    #[test]
    fn quantile_within_one_bucket() {
        let mut s = HistogramSketch::new();
        let samples = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        for v in samples {
            s.observe(v);
        }
        for (q, exact) in [(0.0, 1.0), (0.5, 16.0), (1.0, 128.0)] {
            let approx = s.quantile(q);
            let ratio = approx / exact;
            assert!(
                (2f64.powf(-0.5)..=2f64.powf(0.5)).contains(&ratio),
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn zeros_occupy_low_ranks() {
        let mut s = HistogramSketch::new();
        s.observe(0.0);
        s.observe(0.0);
        s.observe(10.0);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.count(), 3);
        assert!(s.quantile(1.0) > 0.0);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let mut a = HistogramSketch::new();
        let mut b = HistogramSketch::new();
        let mut all = HistogramSketch::new();
        for v in [0.5, 1.5, 2.5] {
            a.observe(v);
            all.observe(v);
        }
        for v in [4.0, 0.0, 9.0] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn memory_stays_bounded() {
        let mut s = HistogramSketch::new();
        for i in 0..100_000u32 {
            s.observe(1.0 + (i % 1000) as f64);
        }
        assert_eq!(s.count(), 100_000);
        // 1..=1000 spans ~10 doublings -> at most ~40 buckets.
        assert!(s.bucket_count() <= 64, "buckets: {}", s.bucket_count());
    }
}
