//! Exporters over a [`TelemetrySnapshot`]: JSONL, Chrome `trace_event`,
//! and Prometheus-style text exposition.
//!
//! All three are hand-rolled (the workspace has no serde); every emitter
//! iterates the snapshot's pre-sorted collections so output order — and
//! with `include_wall = false`, content — is deterministic for a given
//! seed.

use crate::sketch::HistogramSketch;
use crate::TelemetrySnapshot;
use std::fmt::Write;

/// Quantiles summarised per histogram in JSONL and Prometheus output:
/// `(quantile, prometheus label, jsonl field)`.
const SUMMARY_QUANTILES: [(f64, &str, &str); 3] = [
    (0.5, "0.5", "p50"),
    (0.95, "0.95", "p95"),
    (0.99, "0.99", "p99"),
];

/// Escapes a string for inclusion inside JSON double quotes.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` as a JSON number (`null` if non-finite).
fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Emits `"key":"value"` with escaping.
fn json_str_field(key: &str, value: &str, out: &mut String) {
    out.push('"');
    escape_json(key, out);
    out.push_str("\":\"");
    escape_json(value, out);
    out.push('"');
}

/// Emits a span's args as a JSON object, e.g. `{"cycle":3}`.
fn json_args(args: &[(&'static str, u64)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(k, out);
        let _ = write!(out, "\":{v}");
    }
    out.push('}');
}

fn jsonl_hist(domain: &str, name: &str, h: &HistogramSketch, out: &mut String) {
    out.push_str("{\"type\":\"hist\",");
    json_str_field("domain", domain, out);
    out.push(',');
    json_str_field("name", name, out);
    let _ = write!(out, ",\"count\":{},\"sum\":", h.count());
    json_f64(h.sum(), out);
    out.push_str(",\"min\":");
    json_f64(h.min(), out);
    out.push_str(",\"max\":");
    json_f64(h.max(), out);
    out.push_str(",\"mean\":");
    json_f64(h.mean(), out);
    for (q, _, field) in SUMMARY_QUANTILES {
        let _ = write!(out, ",\"{field}\":");
        json_f64(h.quantile(q), out);
    }
    // The full bucket CDF, `[value, cumulative_fraction]` pairs in value
    // order — enough to plot a Fig. 12-style latency CDF directly.
    out.push_str(",\"cdf\":[");
    for (i, (v, f)) in h.cdf().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        json_f64(*v, out);
        out.push(',');
        json_f64(*f, out);
        out.push(']');
    }
    out.push_str("]}\n");
}

/// JSONL export: a `meta` line, then spans in id order, then counters,
/// gauges, and histogram summaries in name order.
pub fn jsonl(snap: &TelemetrySnapshot, include_wall: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"spans\":{},\"spans_dropped\":{}}}",
        snap.spans.len(),
        snap.spans_dropped
    );
    for s in &snap.spans {
        let _ = write!(out, "{{\"type\":\"span\",\"id\":{},\"parent\":", s.id);
        match s.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        out.push(',');
        json_str_field("cat", s.cat, &mut out);
        out.push(',');
        json_str_field("name", s.name, &mut out);
        let _ = write!(
            out,
            ",\"start_us\":{},\"end_us\":{},\"args\":",
            s.start_us, s.end_us
        );
        json_args(&s.args, &mut out);
        out.push_str("}\n");
    }
    for (name, v) in &snap.counters {
        out.push_str("{\"type\":\"counter\",");
        json_str_field("name", name, &mut out);
        let _ = write!(out, ",\"value\":{v}}}");
        out.push('\n');
    }
    for (name, v) in &snap.gauges {
        out.push_str("{\"type\":\"gauge\",");
        json_str_field("name", name, &mut out);
        out.push_str(",\"value\":");
        json_f64(*v, &mut out);
        out.push_str("}\n");
    }
    for (name, h) in &snap.sim_hists {
        jsonl_hist("sim", name, h, &mut out);
    }
    if include_wall {
        for (name, h) in &snap.wall_hists {
            jsonl_hist("wall", name, h, &mut out);
        }
    }
    out
}

/// Chrome `trace_event` export: complete (`"ph":"X"`) events on the
/// micro-tick clock, one process/one thread, nested by timestamp
/// containment exactly as the spans nested at record time.
pub fn chrome(snap: &TelemetrySnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
         \"args\":{\"name\":\"tetrisched\"}}",
    );
    for s in &snap.spans {
        out.push_str(",\n{");
        json_str_field("name", s.name, &mut out);
        out.push(',');
        json_str_field("cat", s.cat, &mut out);
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\"args\":",
            s.start_us,
            s.end_us.saturating_sub(s.start_us)
        );
        json_args(&s.args, &mut out);
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Maps a dotted metric name to a Prometheus metric name.
fn prom_name(name: &str, out: &mut String) {
    out.push_str("tetrisched_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
}

fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

fn prom_hist(name: &str, h: &HistogramSketch, out: &mut String) {
    let mut metric = String::new();
    prom_name(name, &mut metric);
    let _ = writeln!(out, "# TYPE {metric} summary");
    for (q, label, _) in SUMMARY_QUANTILES {
        let _ = writeln!(
            out,
            "{metric}{{quantile=\"{label}\"}} {}",
            prom_f64(h.quantile(q))
        );
    }
    let _ = writeln!(out, "{metric}_sum {}", prom_f64(h.sum()));
    let _ = writeln!(out, "{metric}_count {}", h.count());
}

/// Prometheus text exposition snapshot: counters and span totals as
/// `counter`, gauges as `gauge`, histograms as `summary` with
/// `quantile` labels.
pub fn prometheus(snap: &TelemetrySnapshot, include_wall: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE tetrisched_spans_recorded counter");
    let _ = writeln!(out, "tetrisched_spans_recorded {}", snap.spans.len());
    let _ = writeln!(out, "# TYPE tetrisched_spans_dropped counter");
    let _ = writeln!(out, "tetrisched_spans_dropped {}", snap.spans_dropped);
    for (name, v) in &snap.counters {
        let mut metric = String::new();
        prom_name(name, &mut metric);
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {v}");
    }
    for (name, v) in &snap.gauges {
        let mut metric = String::new();
        prom_name(name, &mut metric);
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {}", prom_f64(*v));
    }
    for (name, h) in &snap.sim_hists {
        prom_hist(name, h, &mut out);
    }
    if include_wall {
        for (name, h) in &snap.wall_hists {
            prom_hist(name, h, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{Telemetry, TelemetryConfig};

    fn sample_registry() -> Telemetry {
        let t = Telemetry::new(TelemetryConfig::on());
        t.advance(0);
        {
            let cycle = t.span("sim", "cycle");
            cycle.arg("cycle", 0);
            let _solve = t.span("sched", "solve");
        }
        t.counter_add("sim.submits", 3);
        t.gauge_set("sched.batch", 2.0);
        t.observe_sim("sched.batch_size", 2.0);
        t.observe_wall("cycle.wall_us", 1234.5);
        t
    }

    #[test]
    fn jsonl_lines_are_json_shaped() {
        let t = sample_registry();
        let text = t.to_jsonl(true);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"type\":\"span\""));
        assert!(text.contains("\"type\":\"counter\""));
        assert!(text.contains("\"domain\":\"wall\""));
    }

    #[test]
    fn chrome_trace_has_complete_events() {
        let t = sample_registry();
        let text = t.to_chrome_trace();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"name\":\"cycle\""));
        assert!(text.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        let t = sample_registry();
        let text = t.to_prometheus(false);
        assert!(text.contains("tetrisched_sim_submits 3"));
        assert!(text.contains("# TYPE tetrisched_sched_batch_size summary"));
        assert!(!text.contains("cycle.wall"));
    }

    #[test]
    fn export_is_deterministic() {
        let a = sample_registry();
        let b = sample_registry();
        assert_eq!(a.to_jsonl(false), b.to_jsonl(false));
        assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
        assert_eq!(a.to_prometheus(false), b.to_prometheus(false));
    }
}
