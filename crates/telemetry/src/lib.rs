//! Zero-dependency instrumentation substrate: spans, counters, gauges, and
//! bounded-memory histograms, with JSONL / Chrome-trace / Prometheus
//! exporters (DESIGN.md §3.11).
//!
//! # Clock injection
//!
//! This crate never reads a clock. Span timestamps come from a
//! deterministic *micro-tick* clock that callers drive via
//! [`Telemetry::advance`]: advancing to simulated second `t` moves the
//! timestamp base to `t * 1_000_000` microseconds, and every subsequent
//! span open/close draws `base + seq` for a strictly increasing sequence
//! counter. Two runs with the same seed therefore produce byte-identical
//! exports, which srclint rule L001 (no wall clock outside the allowlist)
//! and L005 (no wall clock in this crate or its span arguments) protect.
//!
//! Real wall-clock durations — measured with `Instant` only inside the
//! L001 allowlist — enter as *histogram observations* tagged with
//! [`TimeDomain::Wall`]. Wall histograms are excluded from exports by
//! default so the default artifacts stay reproducible; pass
//! `include_wall = true` to get Fig.-12-style latency data out
//! (EXPERIMENTS.md "Telemetry" recipe).
//!
//! # Span model
//!
//! [`Telemetry::span`] returns an RAII [`SpanGuard`]; dropping it closes
//! the span. Open spans form a stack, so nesting is purely lexical:
//! a span opened while another is open becomes its child. Span storage is
//! bounded by [`TelemetryConfig::span_capacity`]; once full, new spans are
//! counted as dropped rather than recorded, and recorded ancestors keep
//! adopting the children of dropped spans.
//!
//! # Overhead budget
//!
//! A disabled registry does one branch per call — no allocation, no
//! `RefCell` borrow — so `TelemetryConfig::default()` (disabled) is free
//! to leave in place everywhere. Enabled, each span is two BTree-free
//! vector pushes and each counter bump one `BTreeMap` probe on a
//! `&'static str` key; the end-to-end budget is <5% of cycle latency,
//! asserted by `tests/telemetry_e2e.rs` via decision equality and
//! reported by `bin/observe.rs`.

mod export;
mod sketch;

pub use sketch::{HistogramSketch, BUCKETS_PER_DOUBLING};

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Which clock a histogram's observations came from.
///
/// `Sim` values derive from simulated time or deterministic counts and are
/// safe to export byte-stably; `Wall` values are real measured durations
/// and vary run to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeDomain {
    /// Deterministic simulated time / counts.
    Sim,
    /// Real elapsed time, measured by an L001-allowlisted caller.
    Wall,
}

/// Construction-time options for a [`Telemetry`] registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. Disabled registries are no-ops on every path.
    pub enabled: bool,
    /// Maximum recorded spans; beyond this, spans are counted as dropped.
    pub span_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            span_capacity: 1 << 18,
        }
    }
}

impl TelemetryConfig {
    /// An enabled config with the default span capacity.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// One recorded span: a named interval on the micro-tick clock, with an
/// optional parent and small integer arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Dense id; also the index into the recorded-span vector.
    pub id: u32,
    /// Parent span id, if this span opened while another was open.
    pub parent: Option<u32>,
    /// Category (e.g. `"sim"`, `"sched"`, `"milp"`).
    pub cat: &'static str,
    /// Span name (e.g. `"cycle"`, `"solve"`).
    pub name: &'static str,
    /// Open timestamp, micro-ticks.
    pub start_us: u64,
    /// Close timestamp, micro-ticks; `== start_us` while still open.
    pub end_us: u64,
    /// Deterministic key/value annotations attached via [`SpanGuard::arg`].
    pub args: Vec<(&'static str, u64)>,
}

#[derive(Debug, Clone, Default)]
struct Inner {
    /// Micro-tick base set by `advance` (sim seconds * 1e6).
    base_us: u64,
    /// Last issued timestamp; the next is `max(last + 1, base_us)`.
    last_us: u64,
    spans: Vec<SpanRecord>,
    /// Ids of currently open (recorded) spans, innermost last.
    open: Vec<u32>,
    spans_dropped: u64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    sim_hists: BTreeMap<&'static str, HistogramSketch>,
    wall_hists: BTreeMap<&'static str, HistogramSketch>,
}

impl Inner {
    fn next_stamp(&mut self) -> u64 {
        self.last_us = (self.last_us + 1).max(self.base_us);
        self.last_us
    }
}

/// The instrumentation registry. Cheap to share by reference; all state
/// lives behind interior mutability so instrumented code only needs
/// `&Telemetry`.
#[derive(Debug, Default)]
pub struct Telemetry {
    on: bool,
    span_capacity: usize,
    inner: RefCell<Inner>,
}

impl Clone for Telemetry {
    fn clone(&self) -> Self {
        Self {
            on: self.on,
            span_capacity: self.span_capacity,
            inner: RefCell::new(self.inner.borrow().clone()),
        }
    }
}

/// A point-in-time copy of everything a registry recorded, in
/// deterministic order (spans by id, names sorted).
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// All recorded spans, ordered by id.
    pub spans: Vec<SpanRecord>,
    /// Spans not recorded because `span_capacity` was reached.
    pub spans_dropped: u64,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms over deterministic values, sorted by name.
    pub sim_hists: Vec<(String, HistogramSketch)>,
    /// Histograms over wall-clock values, sorted by name.
    pub wall_hists: Vec<(String, HistogramSketch)>,
}

impl Telemetry {
    /// Creates a registry from `config`.
    pub fn new(config: TelemetryConfig) -> Self {
        Self {
            on: config.enabled,
            span_capacity: config.span_capacity,
            inner: RefCell::new(Inner::default()),
        }
    }

    /// A permanently disabled registry; every call is a cheap no-op.
    pub fn disabled() -> Self {
        Self::new(TelemetryConfig::default())
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Moves the micro-tick clock to simulated second `sim_time`.
    ///
    /// Timestamps never go backwards: if the base would regress (or
    /// repeat), the sequence counter keeps climbing from the last stamp.
    pub fn advance(&self, sim_time: u64) {
        if !self.on {
            return;
        }
        self.inner.borrow_mut().base_us = sim_time.saturating_mul(1_000_000);
    }

    /// Opens a span; dropping the returned guard closes it.
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        if !self.on {
            return SpanGuard {
                tel: self,
                id: None,
            };
        }
        let mut inner = self.inner.borrow_mut();
        if inner.spans.len() >= self.span_capacity {
            inner.spans_dropped += 1;
            return SpanGuard {
                tel: self,
                id: None,
            };
        }
        let start = inner.next_stamp();
        let id = inner.spans.len() as u32;
        let parent = inner.open.last().copied();
        inner.spans.push(SpanRecord {
            id,
            parent,
            cat,
            name,
            start_us: start,
            end_us: start,
            args: Vec::new(),
        });
        inner.open.push(id);
        SpanGuard {
            tel: self,
            id: Some(id),
        }
    }

    /// Adds `delta` to counter `name`, creating it at zero first.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if !self.on {
            return;
        }
        *self.inner.borrow_mut().counters.entry(name).or_insert(0) += delta;
    }

    /// Reads counter `name` (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn gauge_set(&self, name: &'static str, v: f64) {
        if !self.on {
            return;
        }
        self.inner.borrow_mut().gauges.insert(name, v);
    }

    /// Records a deterministic (sim-domain) histogram observation.
    pub fn observe_sim(&self, name: &'static str, v: f64) {
        if !self.on {
            return;
        }
        self.inner
            .borrow_mut()
            .sim_hists
            .entry(name)
            .or_default()
            .observe(v);
    }

    /// Records a wall-clock histogram observation. The *caller* measures
    /// the duration (it must be on the srclint L001 allowlist); this crate
    /// only stores the number, and only exports it on request.
    pub fn observe_wall(&self, name: &'static str, v: f64) {
        if !self.on {
            return;
        }
        self.inner
            .borrow_mut()
            .wall_hists
            .entry(name)
            .or_default()
            .observe(v);
    }

    /// A clone of one wall histogram, if it exists.
    pub fn wall_hist(&self, name: &str) -> Option<HistogramSketch> {
        self.inner.borrow().wall_hists.get(name).cloned()
    }

    /// A clone of one sim histogram, if it exists.
    pub fn sim_hist(&self, name: &str) -> Option<HistogramSketch> {
        self.inner.borrow().sim_hists.get(name).cloned()
    }

    /// Spans not recorded because capacity was reached.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.borrow().spans_dropped
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// Deterministically ordered copy of all recorded state.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.borrow();
        TelemetrySnapshot {
            spans: inner.spans.clone(),
            spans_dropped: inner.spans_dropped,
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            sim_hists: inner
                .sim_hists
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            wall_hists: inner
                .wall_hists
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    /// JSONL export: one JSON object per line (spans, then counters,
    /// gauges, and histogram summaries). `include_wall` adds wall-domain
    /// histograms, making the output run-specific.
    pub fn to_jsonl(&self, include_wall: bool) -> String {
        export::jsonl(&self.snapshot(), include_wall)
    }

    /// Chrome `trace_event` export (open in `chrome://tracing` or
    /// Perfetto). Contains only sim-clock spans, so it is byte-stable.
    pub fn to_chrome_trace(&self) -> String {
        export::chrome(&self.snapshot())
    }

    /// Prometheus-style text exposition snapshot of counters, gauges, and
    /// histogram summaries.
    pub fn to_prometheus(&self, include_wall: bool) -> String {
        export::prometheus(&self.snapshot(), include_wall)
    }
}

/// RAII guard for an open span; dropping it closes the span at the next
/// micro-tick.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tel: &'a Telemetry,
    id: Option<u32>,
}

impl SpanGuard<'_> {
    /// Attaches a deterministic integer annotation to the span. Values
    /// must not derive from a wall clock (srclint L005).
    pub fn arg(&self, key: &'static str, v: u64) {
        let Some(id) = self.id else { return };
        let mut inner = self.tel.inner.borrow_mut();
        if let Some(span) = inner.spans.get_mut(id as usize) {
            span.args.push((key, v));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let mut inner = self.tel.inner.borrow_mut();
        let end = inner.next_stamp();
        if let Some(span) = inner.spans.get_mut(id as usize) {
            span.end_us = end;
        }
        // Guards drop in LIFO order, so `id` is the innermost open span;
        // retain() keeps the close robust even if a guard outlives its
        // parent's (which lexical scoping prevents in practice).
        inner.open.retain(|&o| o != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let t = Telemetry::disabled();
        t.advance(5);
        {
            let s = t.span("sim", "cycle");
            s.arg("cycle", 1);
        }
        t.counter_add("c", 3);
        t.observe_sim("h", 1.0);
        t.observe_wall("w", 1.0);
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.sim_hists.is_empty());
        assert!(snap.wall_hists.is_empty());
        assert_eq!(t.counter("c"), 0);
    }

    #[test]
    fn spans_nest_lexically() {
        let t = Telemetry::new(TelemetryConfig::on());
        t.advance(0);
        {
            let outer = t.span("sim", "cycle");
            outer.arg("cycle", 7);
            {
                let _inner = t.span("sched", "solve");
            }
            let _sibling = t.span("sched", "decode");
        }
        let spans = t.snapshot().spans;
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "cycle");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].name, "solve");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].name, "decode");
        assert_eq!(spans[2].parent, Some(0));
        assert!(spans[1].start_us > spans[0].start_us);
        assert!(spans[1].end_us < spans[0].end_us);
        assert_eq!(spans[0].args, vec![("cycle", 7)]);
    }

    #[test]
    fn advance_moves_the_clock_monotonically() {
        let t = Telemetry::new(TelemetryConfig::on());
        t.advance(2);
        let a = {
            let _s = t.span("sim", "a");
            t.snapshot().spans[0].start_us
        };
        assert_eq!(a, 2_000_000);
        // Regressing the base must not regress timestamps.
        t.advance(1);
        {
            let _s = t.span("sim", "b");
        }
        let spans = t.snapshot().spans;
        assert!(spans[1].start_us > spans[0].end_us);
    }

    #[test]
    fn span_capacity_drops_and_counts() {
        let t = Telemetry::new(TelemetryConfig {
            enabled: true,
            span_capacity: 2,
        });
        {
            let _a = t.span("x", "a");
            let _b = t.span("x", "b");
            let _c = t.span("x", "c"); // dropped
            let _d = t.span("x", "d"); // dropped
        }
        assert_eq!(t.span_count(), 2);
        assert_eq!(t.spans_dropped(), 2);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let t = Telemetry::new(TelemetryConfig::on());
        t.counter_add("a.b", 2);
        t.counter_add("a.b", 3);
        t.gauge_set("g", 1.5);
        t.gauge_set("g", 2.5);
        assert_eq!(t.counter("a.b"), 5);
        let snap = t.snapshot();
        assert_eq!(snap.counters, vec![("a.b".to_string(), 5)]);
        assert_eq!(snap.gauges, vec![("g".to_string(), 2.5)]);
    }

    #[test]
    fn wall_histograms_stay_out_of_default_exports() {
        let t = Telemetry::new(TelemetryConfig::on());
        t.observe_sim("sim.h", 2.0);
        t.observe_wall("wall.h", 3.0);
        let stable = t.to_jsonl(false);
        assert!(stable.contains("sim.h"));
        assert!(!stable.contains("wall.h"));
        let full = t.to_jsonl(true);
        assert!(full.contains("wall.h"));
        let prom = t.to_prometheus(false);
        assert!(!prom.contains("wall_h"));
    }
}
