//! Reservation admission control.

use std::collections::HashMap;

use tetrisched_strl::Window;

use crate::plan::CapacityPlan;
use crate::Time;

/// Identifier of an accepted reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReservationId(pub u64);

/// An accepted reservation: `k` containers guaranteed over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Reservation identity.
    pub id: ReservationId,
    /// Guaranteed container count.
    pub k: u32,
    /// Guaranteed window start.
    pub start: Time,
    /// Guaranteed window end (start + estimated duration).
    pub end: Time,
}

/// The admission-control frontend: accepts or rejects RDL windows against a
/// capacity plan, guaranteeing the plan never overcommits the cluster.
#[derive(Debug, Clone)]
pub struct ReservationSystem {
    capacity: u32,
    plan: CapacityPlan,
    live: HashMap<ReservationId, Reservation>,
    next_id: u64,
}

impl ReservationSystem {
    /// Creates a reservation system over `capacity` total containers.
    pub fn new(capacity: u32) -> Self {
        ReservationSystem {
            capacity,
            plan: CapacityPlan::new(),
            live: HashMap::new(),
            next_id: 0,
        }
    }

    /// Total cluster capacity the plan is checked against.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Read access to the underlying plan.
    pub fn plan(&self) -> &CapacityPlan {
        &self.plan
    }

    /// Attempts to admit an RDL window, committing capacity at the earliest
    /// feasible start within the window. Returns the accepted reservation,
    /// or `None` when no placement fits (the job proceeds as "SLO without
    /// reservation").
    ///
    /// `now` floors the search: reservations cannot start in the past.
    pub fn request(&mut self, window: &Window, now: Time) -> Option<Reservation> {
        let k = window.atom.k;
        let dur = window.atom.dur;
        if k == 0 || dur == 0 {
            return None;
        }
        if k > self.capacity {
            return None;
        }
        let earliest = window.start.max(now);
        let latest = window.latest_start()?;
        if earliest > latest {
            return None;
        }

        // Candidate starts: the earliest time, plus every plan breakpoint in
        // range (the level only changes at breakpoints, so the earliest
        // feasible start is among these).
        let mut candidates = vec![earliest];
        candidates.extend(
            self.plan
                .breakpoints(earliest, latest + 1)
                .into_iter()
                .filter(|&t| t > earliest),
        );
        for s in candidates {
            if s > latest {
                break;
            }
            if self.plan.max_level(s, s + dur) + k <= self.capacity {
                let id = ReservationId(self.next_id);
                self.next_id += 1;
                self.plan.add(s, s + dur, k);
                let r = Reservation {
                    id,
                    k,
                    start: s,
                    end: s + dur,
                };
                self.live.insert(id, r);
                return Some(r);
            }
        }
        None
    }

    /// Releases the *remaining* portion of a reservation from `from`
    /// onwards (a job finishing early frees its future capacity; the
    /// consumed prefix stays in the historical plan).
    pub fn release_from(&mut self, id: ReservationId, from: Time) -> bool {
        let Some(r) = self.live.remove(&id) else {
            return false;
        };
        let cut = from.clamp(r.start, r.end);
        self.plan.remove(cut, r.end, r.k);
        true
    }

    /// Drops a reservation entirely (used when the job never ran).
    pub fn cancel(&mut self, id: ReservationId) -> bool {
        let Some(r) = self.live.remove(&id) else {
            return false;
        };
        self.plan.remove(r.start, r.end, r.k);
        true
    }

    /// An accepted, still-live reservation.
    pub fn get(&self, id: ReservationId) -> Option<&Reservation> {
        self.live.get(&id)
    }

    /// Number of live reservations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Capacity committed at `t`.
    pub fn committed_at(&self, t: Time) -> u32 {
        self.plan.level_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrisched_strl::Atom;

    fn window(start: Time, finish: Time, k: u32, dur: u64) -> Window {
        Window::new(start, finish, Atom::gang(k, dur))
    }

    #[test]
    fn accepts_at_earliest_start() {
        let mut rs = ReservationSystem::new(10);
        let r = rs.request(&window(5, 50, 4, 10), 0).unwrap();
        assert_eq!(r.start, 5);
        assert_eq!(r.end, 15);
        assert_eq!(rs.committed_at(5), 4);
        assert_eq!(rs.committed_at(15), 0);
    }

    #[test]
    fn now_floors_the_start() {
        let mut rs = ReservationSystem::new(10);
        let r = rs.request(&window(0, 100, 2, 10), 42).unwrap();
        assert_eq!(r.start, 42);
    }

    #[test]
    fn defers_past_contention() {
        let mut rs = ReservationSystem::new(10);
        rs.request(&window(0, 20, 8, 20), 0).unwrap();
        // Only 2 free until t=20; a 4-wide request must wait.
        let r = rs.request(&window(0, 100, 4, 10), 0).unwrap();
        assert_eq!(r.start, 20);
    }

    #[test]
    fn rejects_when_window_too_tight() {
        let mut rs = ReservationSystem::new(10);
        rs.request(&window(0, 20, 8, 20), 0).unwrap();
        // Needs 4 nodes for 10s, must end by 25 => latest start 15 < 20.
        assert!(rs.request(&window(0, 25, 4, 10), 0).is_none());
        // But a 2-wide request fits alongside.
        assert!(rs.request(&window(0, 25, 2, 10), 0).is_some());
    }

    #[test]
    fn rejects_oversized_and_degenerate() {
        let mut rs = ReservationSystem::new(4);
        assert!(rs.request(&window(0, 100, 5, 10), 0).is_none());
        assert!(rs.request(&window(0, 100, 0, 10), 0).is_none());
        assert!(rs.request(&window(0, 100, 2, 0), 0).is_none());
        assert!(rs.request(&window(50, 40, 2, 10), 0).is_none());
    }

    #[test]
    fn release_from_frees_tail_capacity() {
        let mut rs = ReservationSystem::new(4);
        let r = rs.request(&window(0, 100, 4, 50), 0).unwrap();
        // Fully booked until 50; a second request waits.
        // Job finishes early at t=10: tail is released.
        assert!(rs.release_from(r.id, 10));
        let r2 = rs.request(&window(0, 100, 4, 10), 10).unwrap();
        assert_eq!(r2.start, 10);
        assert!(!rs.release_from(r.id, 20), "double release rejected");
    }

    #[test]
    fn cancel_restores_whole_window() {
        let mut rs = ReservationSystem::new(2);
        let r = rs.request(&window(10, 40, 2, 10), 0).unwrap();
        assert!(rs.cancel(r.id));
        assert_eq!(rs.committed_at(10), 0);
        assert_eq!(rs.live_count(), 0);
    }

    #[test]
    fn admission_never_overcommits() {
        let mut rs = ReservationSystem::new(6);
        let mut accepted = Vec::new();
        for i in 0..20 {
            if let Some(r) = rs.request(&window(0, 60, 2, 15), 0) {
                accepted.push(r);
            } else {
                // Every rejection must come after the plan saturates.
                assert!(i >= 3);
            }
        }
        for t in 0..120 {
            assert!(rs.committed_at(t) <= 6, "overcommit at {t}");
        }
        // 6 capacity / 2 wide = 3 concurrent; 60s window / 15s = 4 layers.
        assert_eq!(accepted.len(), 12);
    }

    #[test]
    fn estimated_duration_drives_the_plan() {
        // Admission books the *estimate*; an under-estimated job's
        // reservation simply ends early — the contention that causes is the
        // baseline behaviour the paper studies in Sec. 7.1.
        let mut rs = ReservationSystem::new(4);
        let r = rs.request(&window(0, 100, 4, 10), 0).unwrap();
        assert_eq!(r.end, 10);
        let r2 = rs.request(&window(0, 100, 4, 10), 0).unwrap();
        assert_eq!(r2.start, 10, "plan assumes the first job is done at 10");
    }
}
