//! Rayon-like reservation system (admission control).
//!
//! The paper runs TetriSched "in tandem" with Rayon (Curino et al., SoCC
//! 2014), YARN's reservation system (Sec. 2.1): Rayon guarantees future
//! resource capacity in the long term and acts as an admission-control
//! frontend, while the runtime scheduler makes short-term placement and
//! ordering decisions. This crate reproduces the slice of Rayon both
//! scheduler stacks depend on:
//!
//! - a **capacity plan** — a step function of committed capacity over future
//!   time ([`plan::CapacityPlan`]),
//! - **admission**: an RDL `Window(s, f, Atom(k, dur))` request is accepted
//!   at the earliest start where `k` containers fit under the plan for the
//!   atom's (estimated!) duration, and rejected otherwise
//!   ([`admission::ReservationSystem`]). Rejected SLO jobs become "SLO jobs
//!   without reservation" (Sec. 6.2.2).
//!
//! Because the plan is built from *estimated* durations, runtime
//! mis-estimation flows through admission exactly as in the paper:
//! under-estimates let reservations expire before their jobs finish;
//! over-estimates admit fewer jobs and release capacity early.

pub mod admission;
pub mod plan;

pub use admission::{Reservation, ReservationId, ReservationSystem};
pub use plan::CapacityPlan;

/// Simulated wall-clock time in seconds (re-exported convention).
pub type Time = tetrisched_cluster::Time;
