//! Step-function capacity plan over future time.

use std::collections::BTreeMap;

use crate::Time;

/// Committed capacity over time, stored as a difference map: the value at
/// time `t` is the prefix sum of deltas at keys `<= t`.
#[derive(Debug, Clone, Default)]
pub struct CapacityPlan {
    deltas: BTreeMap<Time, i64>,
}

impl CapacityPlan {
    /// Creates an empty plan (zero committed capacity everywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Commits `k` units over `[start, end)`.
    pub fn add(&mut self, start: Time, end: Time, k: u32) {
        if start >= end || k == 0 {
            return;
        }
        *self.deltas.entry(start).or_insert(0) += k as i64;
        *self.deltas.entry(end).or_insert(0) -= k as i64;
        self.prune(start);
        self.prune(end);
    }

    /// Removes a previously committed `k` units over `[start, end)`.
    ///
    /// Callers must only remove what they added; in debug builds a negative
    /// resulting level trips an assertion in [`CapacityPlan::level_at`].
    pub fn remove(&mut self, start: Time, end: Time, k: u32) {
        if start >= end || k == 0 {
            return;
        }
        *self.deltas.entry(start).or_insert(0) -= k as i64;
        *self.deltas.entry(end).or_insert(0) += k as i64;
        self.prune(start);
        self.prune(end);
    }

    fn prune(&mut self, at: Time) {
        if self.deltas.get(&at) == Some(&0) {
            self.deltas.remove(&at);
        }
    }

    /// Committed capacity at time `t`.
    pub fn level_at(&self, t: Time) -> u32 {
        let level: i64 = self.deltas.range(..=t).map(|(_, d)| d).sum();
        debug_assert!(level >= 0, "capacity plan went negative at {t}");
        level.max(0) as u32
    }

    /// Maximum committed capacity over `[start, end)`.
    pub fn max_level(&self, start: Time, end: Time) -> u32 {
        if start >= end {
            return 0;
        }
        let mut max = self.level_at(start);
        for (&t, _) in self.deltas.range((
            std::ops::Bound::Excluded(start),
            std::ops::Bound::Excluded(end),
        )) {
            max = max.max(self.level_at(t));
        }
        max
    }

    /// Breakpoints (times where the level changes) within `[start, end)`.
    pub fn breakpoints(&self, start: Time, end: Time) -> Vec<Time> {
        self.deltas.range(start..end).map(|(&t, _)| t).collect()
    }

    /// Whether the plan has no commitments.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_levels() {
        let mut p = CapacityPlan::new();
        p.add(10, 20, 4);
        p.add(15, 30, 2);
        assert_eq!(p.level_at(9), 0);
        assert_eq!(p.level_at(10), 4);
        assert_eq!(p.level_at(15), 6);
        assert_eq!(p.level_at(19), 6);
        assert_eq!(p.level_at(20), 2);
        assert_eq!(p.level_at(29), 2);
        assert_eq!(p.level_at(30), 0);
    }

    #[test]
    fn max_level_over_interval() {
        let mut p = CapacityPlan::new();
        p.add(10, 20, 4);
        p.add(15, 30, 2);
        assert_eq!(p.max_level(0, 100), 6);
        assert_eq!(p.max_level(0, 12), 4);
        assert_eq!(p.max_level(20, 40), 2);
        assert_eq!(p.max_level(40, 50), 0);
        // Half-open: the drop at 20 applies from 20 onward.
        assert_eq!(p.max_level(20, 21), 2);
    }

    #[test]
    fn remove_restores_plan() {
        let mut p = CapacityPlan::new();
        p.add(0, 50, 3);
        p.add(10, 20, 2);
        p.remove(10, 20, 2);
        assert_eq!(p.level_at(15), 3);
        p.remove(0, 50, 3);
        assert!(p.is_empty());
    }

    #[test]
    fn empty_and_degenerate_intervals_ignored() {
        let mut p = CapacityPlan::new();
        p.add(10, 10, 5);
        p.add(20, 10, 5);
        p.add(10, 20, 0);
        assert!(p.is_empty());
    }

    #[test]
    fn breakpoints_listed() {
        let mut p = CapacityPlan::new();
        p.add(10, 20, 1);
        p.add(15, 25, 1);
        assert_eq!(p.breakpoints(0, 100), vec![10, 15, 20, 25]);
        assert_eq!(p.breakpoints(12, 22), vec![15, 20]);
    }

    #[test]
    fn overlapping_same_interval_accumulates() {
        let mut p = CapacityPlan::new();
        p.add(5, 10, 1);
        p.add(5, 10, 1);
        assert_eq!(p.level_at(7), 2);
        p.remove(5, 10, 1);
        assert_eq!(p.level_at(7), 1);
    }
}
