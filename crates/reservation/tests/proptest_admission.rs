//! Property tests for Rayon-like admission control: under arbitrary
//! request sequences the plan never overcommits, accepted reservations
//! respect their windows, and releases restore capacity exactly.

use proptest::prelude::*;
use tetrisched_reservation::ReservationSystem;
use tetrisched_strl::{Atom, Window};

#[derive(Debug, Clone)]
struct Req {
    start: u64,
    window_len: u64,
    k: u32,
    dur: u64,
    release_early: bool,
}

fn arb_req() -> impl Strategy<Value = Req> {
    (0u64..200, 1u64..150, 1u32..8, 1u64..80, prop::bool::ANY).prop_map(
        |(start, window_len, k, dur, release_early)| Req {
            start,
            window_len,
            k,
            dur,
            release_early,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plan_never_overcommits(
        capacity in 2u32..12,
        reqs in proptest::collection::vec(arb_req(), 1..25),
    ) {
        let mut rs = ReservationSystem::new(capacity);
        let mut accepted = Vec::new();
        for r in &reqs {
            let w = Window::new(r.start, r.start + r.window_len, Atom::gang(r.k, r.dur));
            if let Some(res) = rs.request(&w, 0) {
                // The reservation respects its window.
                prop_assert!(res.start >= r.start);
                prop_assert!(res.end <= r.start + r.window_len);
                prop_assert_eq!(res.end - res.start, r.dur);
                prop_assert_eq!(res.k, r.k);
                accepted.push(res);
            }
        }
        // The committed level never exceeds capacity at any breakpoint.
        for t in 0..400 {
            prop_assert!(
                rs.committed_at(t) <= capacity,
                "overcommit at t={}: {} > {}", t, rs.committed_at(t), capacity
            );
        }
        // Level at each accepted window's midpoint is at least k.
        for res in &accepted {
            let mid = (res.start + res.end) / 2;
            prop_assert!(rs.committed_at(mid) >= res.k);
        }
    }

    #[test]
    fn releases_restore_capacity(
        capacity in 2u32..10,
        reqs in proptest::collection::vec(arb_req(), 1..20),
    ) {
        let mut rs = ReservationSystem::new(capacity);
        let mut live = Vec::new();
        for r in &reqs {
            let w = Window::new(r.start, r.start + r.window_len, Atom::gang(r.k, r.dur));
            if let Some(res) = rs.request(&w, 0) {
                if r.release_early {
                    prop_assert!(rs.release_from(res.id, res.start));
                } else {
                    live.push(res);
                }
            }
        }
        for res in &live {
            prop_assert!(rs.cancel(res.id));
        }
        // Everything released or cancelled: the plan must be flat zero.
        prop_assert!(rs.plan().is_empty(), "plan not empty after full release");
        prop_assert_eq!(rs.live_count(), 0);
    }

    #[test]
    fn admission_is_earliest_feasible(
        capacity in 2u32..8,
        k in 1u32..4,
        dur in 5u64..30,
    ) {
        // With an empty plan, the earliest feasible start is the window
        // start (or `now` when later); oversized gangs are rejected.
        let mut rs = ReservationSystem::new(capacity);
        let w = Window::new(10, 200, Atom::gang(k, dur));
        match rs.request(&w, 25) {
            Some(res) => {
                prop_assert!(k <= capacity);
                prop_assert_eq!(res.start, 25);
            }
            None => prop_assert!(k > capacity),
        }
    }
}
