//! Open-loop arrival processes for service-mode experiments.
//!
//! The closed-loop builders calibrate arrivals so offered load tracks the
//! cluster's capacity. A long-lived scheduling *service* instead faces an
//! open-loop stream whose rate is set by the outside world — including
//! sustained overload. The driver wraps the existing gridmix/swim
//! generators: a `rate_multiplier` of 2.0 doubles the calibrated Poisson
//! arrival rate (2× saturation), and the burst process retimes the stream
//! into alternating burst/lull phases while preserving every job's
//! deadline slack. All output is deterministic under the seed of the
//! wrapped [`GridmixConfig`].

use tetrisched_sim::JobSpec;

use crate::compositions::Workload;
use crate::gridmix::{GridmixConfig, WorkloadBuilder};

/// The shape of the arrival stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at the multiplied rate.
    Poisson,
    /// Alternating burst/lull phases: inter-arrival gaps shrink by
    /// `factor` for `period` consecutive jobs, then stretch by `factor`
    /// for the next `period`, and so on. The long-run mean rate stays at
    /// the multiplied Poisson rate's order while the instantaneous rate
    /// swings by `factor²`.
    Burst {
        /// Gap compression during a burst (>= 1).
        factor: f64,
        /// Jobs per phase.
        period: u64,
    },
}

/// Open-loop driver configuration.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// The wrapped closed-loop generator configuration (seed, job count,
    /// cluster size, estimate error, ...).
    pub base: GridmixConfig,
    /// Arrival-rate multiplier over the calibrated rate: 1.0 reproduces
    /// the closed-loop calibration, 2.0 offers twice the cluster's
    /// capacity (2× saturation).
    pub rate_multiplier: f64,
    /// Arrival process shape.
    pub process: ArrivalProcess,
}

impl OpenLoopConfig {
    /// Poisson arrivals at `rate_multiplier` times the calibrated rate.
    pub fn saturating(base: GridmixConfig, rate_multiplier: f64) -> Self {
        OpenLoopConfig {
            base,
            rate_multiplier,
            process: ArrivalProcess::Poisson,
        }
    }
}

/// Generates open-loop job streams by wrapping the gridmix builder.
#[derive(Debug, Clone)]
pub struct OpenLoopDriver {
    config: OpenLoopConfig,
}

impl OpenLoopDriver {
    /// Creates a driver.
    pub fn new(config: OpenLoopConfig) -> Self {
        OpenLoopDriver { config }
    }

    /// Generates the arrival stream for a workload.
    ///
    /// The calibrated gridmix arrival rate is linear in
    /// `target_utilization` (`lambda = target × capacity / E[work]`), so
    /// multiplying the target multiplies the Poisson rate exactly; job
    /// bodies (sizes, runtimes, deadline slacks) keep their closed-loop
    /// distributions.
    pub fn generate(&self, workload: Workload) -> Vec<JobSpec> {
        let scaled = GridmixConfig {
            target_utilization: self.config.base.target_utilization * self.config.rate_multiplier,
            ..self.config.base.clone()
        };
        let mut jobs = WorkloadBuilder::new(scaled).generate(workload);
        if let ArrivalProcess::Burst { factor, period } = self.config.process {
            let factor = factor.max(1.0);
            let period = period.max(1);
            let mut t = 0.0f64;
            let mut prev_submit = 0u64;
            for (i, job) in jobs.iter_mut().enumerate() {
                let gap = job.submit.saturating_sub(prev_submit) as f64;
                prev_submit = job.submit;
                let in_burst = (i as u64 / period).is_multiple_of(2);
                t += if in_burst { gap / factor } else { gap * factor };
                let slack = job.deadline.map(|d| d - job.submit);
                job.submit = t.round() as u64;
                job.deadline = slack.map(|s| job.submit + s);
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(seed: u64) -> GridmixConfig {
        GridmixConfig {
            seed,
            num_jobs: 300,
            cluster_size: 80,
            ..GridmixConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = OpenLoopConfig::saturating(base(11), 2.0);
        let a = OpenLoopDriver::new(cfg.clone()).generate(Workload::GsMix);
        let b = OpenLoopDriver::new(cfg).generate(Workload::GsMix);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit, y.submit);
            assert_eq!(x.k, y.k);
            assert_eq!(x.base_runtime, y.base_runtime);
            assert_eq!(x.deadline, y.deadline);
        }
    }

    #[test]
    fn rate_multiplier_compresses_the_arrival_span() {
        let one =
            OpenLoopDriver::new(OpenLoopConfig::saturating(base(5), 1.0)).generate(Workload::GsMix);
        let two =
            OpenLoopDriver::new(OpenLoopConfig::saturating(base(5), 2.0)).generate(Workload::GsMix);
        let span = |jobs: &[JobSpec]| jobs.iter().map(|j| j.submit).max().unwrap() as f64;
        let ratio = span(&one) / span(&two);
        // Doubling the rate should roughly halve the span of the same
        // number of arrivals.
        assert!((1.5..=2.7).contains(&ratio), "span ratio {ratio}");
    }

    #[test]
    fn multiplier_one_reproduces_the_closed_loop_stream() {
        let closed = WorkloadBuilder::new(base(7)).generate(Workload::GsHet);
        let open =
            OpenLoopDriver::new(OpenLoopConfig::saturating(base(7), 1.0)).generate(Workload::GsHet);
        assert_eq!(closed.len(), open.len());
        for (c, o) in closed.iter().zip(&open) {
            assert_eq!(c.submit, o.submit);
            assert_eq!(c.deadline, o.deadline);
        }
    }

    #[test]
    fn burst_preserves_deadline_slack_and_ordering() {
        let cfg = OpenLoopConfig {
            base: base(9),
            rate_multiplier: 2.0,
            process: ArrivalProcess::Burst {
                factor: 3.0,
                period: 25,
            },
        };
        let poisson =
            OpenLoopDriver::new(OpenLoopConfig::saturating(base(9), 2.0)).generate(Workload::GsMix);
        let burst = OpenLoopDriver::new(cfg).generate(Workload::GsMix);
        assert_eq!(poisson.len(), burst.len());
        let mut prev = 0;
        for (p, b) in poisson.iter().zip(&burst) {
            // Same job bodies, same relative deadline slack.
            assert_eq!(p.k, b.k);
            assert_eq!(p.base_runtime, b.base_runtime);
            assert_eq!(
                p.deadline.map(|d| d - p.submit),
                b.deadline.map(|d| d - b.submit)
            );
            // Arrivals stay monotone.
            assert!(b.submit >= prev);
            prev = b.submit;
        }
    }

    #[test]
    fn burst_phases_swing_the_local_rate() {
        let period = 50u64;
        let cfg = OpenLoopConfig {
            base: base(13),
            rate_multiplier: 1.0,
            process: ArrivalProcess::Burst {
                factor: 4.0,
                period,
            },
        };
        let jobs = OpenLoopDriver::new(cfg).generate(Workload::GsMix);
        let phase_span = |lo: usize, hi: usize| (jobs[hi].submit - jobs[lo].submit) as f64;
        let burst_span = phase_span(0, period as usize - 1);
        let lull_span = phase_span(period as usize, 2 * period as usize - 1);
        assert!(
            lull_span > 2.0 * burst_span,
            "lull {lull_span} vs burst {burst_span}"
        );
    }
}
