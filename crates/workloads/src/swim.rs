//! SWIM-derived job class parameters.
//!
//! The paper selects two SWIM job classes "with sizes that fit on our RC256
//! cluster" (Sec. 6.4): `fb2009_2` — a Facebook-2009-derived production
//! class used for SLO jobs — and `yahoo_1` — a Yahoo-derived class used for
//! best-effort jobs. The published SWIM characterizations shape these
//! parameters: production jobs are larger and longer with heavy-tailed
//! sizes; ad hoc jobs are small and short.

use crate::distributions::{Empirical, LogNormal};

/// Parameter distributions for one job class.
#[derive(Debug, Clone)]
pub struct JobClassParams {
    /// Class name, for reports.
    pub name: &'static str,
    /// Gang-width distribution (values are node counts).
    pub k_dist: Empirical,
    /// True base-runtime distribution, seconds.
    pub runtime_dist: LogNormal,
    /// Deadline slack range: the deadline is
    /// `submit + runtime * uniform(slack_min, slack_max)` (SLO classes).
    pub slack_min: f64,
    /// Upper end of the deadline-slack range.
    pub slack_max: f64,
}

impl JobClassParams {
    /// The Facebook-2009-derived production class (SLO jobs). Sizes are
    /// scaled so the largest gangs fit comfortably within `cluster_size`.
    pub fn fb2009_2(cluster_size: usize) -> JobClassParams {
        JobClassParams {
            name: "fb2009_2",
            k_dist: scaled_k(
                &[
                    (0.35, 4.0),
                    (0.30, 8.0),
                    (0.20, 12.0),
                    (0.10, 20.0),
                    (0.05, 32.0),
                ],
                cluster_size,
            ),
            runtime_dist: LogNormal::with_median(150.0, 0.55, 40.0, 600.0),
            slack_min: 2.0,
            slack_max: 5.0,
        }
    }

    /// The Yahoo-derived ad hoc class (best-effort jobs): small and short.
    pub fn yahoo_1(cluster_size: usize) -> JobClassParams {
        JobClassParams {
            name: "yahoo_1",
            k_dist: scaled_k(&[(0.50, 2.0), (0.30, 4.0), (0.20, 8.0)], cluster_size),
            runtime_dist: LogNormal::with_median(60.0, 0.50, 20.0, 300.0),
            slack_min: 2.0,
            slack_max: 5.0,
        }
    }

    /// The synthetic class used by the GS workloads on RC80 (Sec. 6.4):
    /// moderate gangs and runtimes, exercising a wider parameter range.
    pub fn synthetic(cluster_size: usize) -> JobClassParams {
        JobClassParams {
            name: "synthetic",
            k_dist: scaled_k(
                &[(0.25, 4.0), (0.30, 8.0), (0.25, 12.0), (0.20, 16.0)],
                cluster_size,
            ),
            runtime_dist: LogNormal::with_median(100.0, 0.45, 30.0, 360.0),
            // Tighter slack than the production classes: a job forced onto
            // a slowed placement (or queued behind one) has little margin,
            // which is what makes heterogeneity awareness matter in the
            // GS HET experiments (Sec. 7.2).
            slack_min: 1.6,
            slack_max: 3.0,
        }
    }
}

/// Scales a gang-width table so no entry exceeds a quarter of the cluster.
fn scaled_k(points: &[(f64, f64)], cluster_size: usize) -> Empirical {
    let cap = (cluster_size as f64 / 4.0).max(1.0);
    Empirical::new(
        points
            .iter()
            .map(|&(w, k)| (w, k.min(cap).max(1.0)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::Sample;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn production_class_is_bigger_than_adhoc() {
        let fb = JobClassParams::fb2009_2(256);
        let yh = JobClassParams::yahoo_1(256);
        assert!(fb.k_dist.mean() > yh.k_dist.mean());
        let mut r = StdRng::seed_from_u64(1);
        let fb_rt = fb.runtime_dist.empirical_mean(&mut r, 5000);
        let yh_rt = yh.runtime_dist.empirical_mean(&mut r, 5000);
        assert!(fb_rt > yh_rt);
    }

    #[test]
    fn small_cluster_caps_gang_width() {
        let fb = JobClassParams::fb2009_2(16);
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let k = fb.k_dist.sample(&mut r);
            assert!(k <= 4.0, "k {k} exceeds quarter of a 16-node cluster");
            assert!(k >= 1.0);
        }
    }

    #[test]
    fn slack_range_is_sane() {
        for params in [
            JobClassParams::fb2009_2(80),
            JobClassParams::yahoo_1(80),
            JobClassParams::synthetic(80),
        ] {
            assert!(params.slack_min >= 1.0);
            assert!(params.slack_max > params.slack_min);
        }
    }
}
