//! Probability distributions implemented in-repo.
//!
//! Only `rand` is in the approved dependency set (not `rand_distr`), so the
//! few distributions the generator needs are implemented here: exponential
//! inter-arrivals, log-normal runtimes (Box–Muller), bounded Pareto tails,
//! and weighted empirical tables.

use rand::{Rng, RngExt};

/// A samplable distribution over `f64`.
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut impl Rng) -> f64;

    /// Empirical mean over `n` draws with a dedicated RNG (used for load
    /// calibration).
    fn empirical_mean(&self, rng: &mut impl Rng, n: usize) -> f64 {
        (0..n.max(1)).map(|_| self.sample(rng)).sum::<f64>() / n.max(1) as f64
    }
}

/// Exponential distribution with the given rate (mean `1 / rate`).
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    /// Rate parameter (events per unit time).
    pub rate: f64,
}

impl Sample for Exp {
    fn sample(&self, rng: &mut impl Rng) -> f64 {
        // Inverse CDF; 1 - U avoids ln(0).
        let u: f64 = rng.random();
        -(1.0 - u).ln() / self.rate
    }
}

/// Log-normal distribution parameterized by the underlying normal's mean
/// and standard deviation, with optional clamping.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Mean of `ln(X)`; `exp(mu)` is the median.
    pub mu: f64,
    /// Standard deviation of `ln(X)`.
    pub sigma: f64,
    /// Lower clamp applied after sampling.
    pub min: f64,
    /// Upper clamp applied after sampling.
    pub max: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given median and shape, clamped.
    pub fn with_median(median: f64, sigma: f64, min: f64, max: f64) -> Self {
        LogNormal {
            mu: median.ln(),
            sigma,
            min,
            max,
        }
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut impl Rng) -> f64 {
        // Box–Muller transform.
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp().clamp(self.min, self.max)
    }
}

/// Bounded Pareto distribution (heavy tail truncated to `[min, max]`).
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    /// Tail index (smaller is heavier).
    pub alpha: f64,
    /// Lower bound.
    pub min: f64,
    /// Upper bound.
    pub max: f64,
}

impl Sample for BoundedPareto {
    fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
        let (l, h, a) = (self.min, self.max, self.alpha);
        let num = u * h.powf(a) - u * l.powf(a) - h.powf(a);
        (-(num / (h.powf(a) * l.powf(a)))).powf(-1.0 / a)
    }
}

/// A weighted discrete distribution over values.
#[derive(Debug, Clone)]
pub struct Empirical {
    /// `(weight, value)` pairs; weights need not be normalized.
    pub points: Vec<(f64, f64)>,
}

impl Empirical {
    /// Creates an empirical table.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "empirical table must not be empty");
        assert!(
            points.iter().all(|&(w, _)| w >= 0.0),
            "weights must be nonnegative"
        );
        Empirical { points }
    }

    /// Exact mean of the table.
    pub fn mean(&self) -> f64 {
        let total: f64 = self.points.iter().map(|&(w, _)| w).sum();
        self.points.iter().map(|&(w, v)| w * v).sum::<f64>() / total
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut impl Rng) -> f64 {
        let total: f64 = self.points.iter().map(|&(w, _)| w).sum();
        let mut x: f64 = rng.random::<f64>() * total;
        for &(w, v) in &self.points {
            if x < w {
                return v;
            }
            x -= w;
        }
        self.points.last().expect("non-empty").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn exp_mean_matches_rate() {
        let d = Exp { rate: 0.5 };
        let mean = d.empirical_mean(&mut rng(), 20_000);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exp_is_nonnegative() {
        let d = Exp { rate: 3.0 };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn lognormal_median_and_clamp() {
        let d = LogNormal::with_median(100.0, 0.5, 10.0, 1000.0);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 100.0).abs() < 5.0, "median {median}");
        assert!(samples.iter().all(|&x| (10.0..=1000.0).contains(&x)));
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto {
            alpha: 1.2,
            min: 2.0,
            max: 64.0,
        };
        let mut r = rng();
        for _ in 0..5000 {
            let x = d.sample(&mut r);
            assert!((2.0..=64.0 + 1e-9).contains(&x), "sample {x}");
        }
        // Heavy tail: mean well above the minimum.
        assert!(d.empirical_mean(&mut rng(), 20_000) > 4.0);
    }

    #[test]
    fn empirical_respects_weights() {
        let d = Empirical::new(vec![(0.8, 1.0), (0.2, 10.0)]);
        let mut r = rng();
        let n = 20_000;
        let ones = (0..n).filter(|_| d.sample(&mut r) == 1.0).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "fraction {frac}");
        assert!((d.mean() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let d = LogNormal::with_median(50.0, 0.7, 1.0, 1e6);
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..10).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_empirical_rejected() {
        Empirical::new(vec![]);
    }
}
