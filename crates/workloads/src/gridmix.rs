//! The Gridmix-style workload builder.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use tetrisched_sim::{JobId, JobSpec, JobType};

use crate::compositions::Workload;
use crate::distributions::Sample;
use crate::swim::JobClassParams;

/// Workload-generation parameters.
#[derive(Debug, Clone)]
pub struct GridmixConfig {
    /// RNG seed; runs are bit-reproducible under the same seed.
    pub seed: u64,
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Cluster size the load is calibrated against.
    pub cluster_size: usize,
    /// Target offered load as a fraction of cluster capacity (the paper
    /// runs near 1.0).
    pub target_utilization: f64,
    /// Runtime estimate error applied to every job (the Fig. 6–10 x-axis).
    pub estimate_error: f64,
    /// Per-job estimate-error jitter: each job's error is additionally
    /// perturbed by a uniform draw from `[-jitter, +jitter]`, modelling
    /// heterogeneous prediction quality across jobs (an extension knob;
    /// the paper sweeps a uniform error, i.e. jitter 0).
    pub error_jitter: f64,
    /// Slowdown multiplier for GPU/MPI jobs on non-preferred placements
    /// (Fig. 1 uses 3/2 = 1.5).
    pub slowdown: f64,
}

impl Default for GridmixConfig {
    fn default() -> Self {
        GridmixConfig {
            seed: 1,
            num_jobs: 100,
            cluster_size: 80,
            target_utilization: 1.0,
            estimate_error: 0.0,
            error_jitter: 0.0,
            slowdown: 1.5,
        }
    }
}

/// Generates job streams for the Table 1 workloads.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    config: GridmixConfig,
}

impl WorkloadBuilder {
    /// Creates a builder.
    pub fn new(config: GridmixConfig) -> Self {
        WorkloadBuilder { config }
    }

    /// Generates the job stream for a Table 1 workload.
    pub fn generate(&self, workload: Workload) -> Vec<JobSpec> {
        let cfg = &self.config;
        let comp = workload.composition();
        let (slo_params, be_params) = if workload.is_production_derived() {
            (
                JobClassParams::fb2009_2(cfg.cluster_size),
                JobClassParams::yahoo_1(cfg.cluster_size),
            )
        } else {
            (
                JobClassParams::synthetic(cfg.cluster_size),
                JobClassParams::synthetic(cfg.cluster_size),
            )
        };

        // Calibrate the arrival rate so offered load ~= target utilization:
        // lambda = target * capacity / E[k * runtime] over the mixture.
        let mut calib = StdRng::seed_from_u64(cfg.seed ^ 0xC0FFEE);
        let mean_work = {
            let n = 4000;
            let mut total = 0.0;
            for _ in 0..n {
                let slo = calib.random::<f64>() < comp.slo;
                let p = if slo { &slo_params } else { &be_params };
                total += p.k_dist.sample(&mut calib) * p.runtime_dist.sample(&mut calib);
            }
            total / n as f64
        };
        let lambda = cfg.target_utilization * cfg.cluster_size as f64 / mean_work.max(1.0);

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut jobs = Vec::with_capacity(cfg.num_jobs);
        let mut t = 0.0f64;
        for i in 0..cfg.num_jobs {
            // Exponential inter-arrivals (Poisson arrivals).
            let u: f64 = rng.random();
            t += -(1.0 - u).ln() / lambda;
            let submit = t.round() as u64;

            let is_slo = rng.random::<f64>() < comp.slo;
            let params = if is_slo { &slo_params } else { &be_params };
            let k = params.k_dist.sample(&mut rng).round().max(1.0) as u32;
            let base_runtime = params.runtime_dist.sample(&mut rng).round().max(1.0) as u64;

            let job_type = if is_slo {
                let x: f64 = rng.random();
                if x < comp.unconstrained {
                    JobType::Unconstrained
                } else if x < comp.unconstrained + comp.gpu {
                    JobType::Gpu
                } else if x < comp.unconstrained + comp.gpu + comp.mpi {
                    JobType::Mpi
                } else {
                    JobType::Availability
                }
            } else {
                JobType::Unconstrained
            };

            let deadline = if is_slo {
                let slack =
                    params.slack_min + rng.random::<f64>() * (params.slack_max - params.slack_min);
                Some(submit + (base_runtime as f64 * slack).round() as u64)
            } else {
                None
            };

            let slowdown = match job_type {
                JobType::Unconstrained => 1.0,
                _ => cfg.slowdown,
            };

            let jitter = if cfg.error_jitter > 0.0 {
                (rng.random::<f64>() * 2.0 - 1.0) * cfg.error_jitter
            } else {
                0.0
            };
            jobs.push(JobSpec {
                id: JobId(i as u64),
                submit,
                job_type,
                k,
                base_runtime,
                slowdown,
                deadline,
                estimate_error: (cfg.estimate_error + jitter).max(-0.95),
            });
        }
        jobs
    }

    /// The same workload re-issued with a different estimate error — the
    /// sweep axis of Figs. 6–10 (jobs and arrivals are identical; only the
    /// estimates move).
    pub fn with_estimate_error(&self, workload: Workload, error: f64) -> Vec<JobSpec> {
        let mut jobs = WorkloadBuilder::new(GridmixConfig {
            estimate_error: 0.0,
            ..self.config.clone()
        })
        .generate(workload);
        for j in &mut jobs {
            j.estimate_error = error;
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder(seed: u64) -> WorkloadBuilder {
        WorkloadBuilder::new(GridmixConfig {
            seed,
            num_jobs: 400,
            cluster_size: 80,
            ..GridmixConfig::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = builder(9).generate(Workload::GsHet);
        let b = builder(9).generate(Workload::GsHet);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit, y.submit);
            assert_eq!(x.k, y.k);
            assert_eq!(x.base_runtime, y.base_runtime);
            assert_eq!(x.deadline, y.deadline);
        }
    }

    #[test]
    fn composition_fractions_hold() {
        let jobs = builder(3).generate(Workload::GrMix);
        let slo = jobs.iter().filter(|j| j.deadline.is_some()).count();
        let frac = slo as f64 / jobs.len() as f64;
        assert!((frac - 0.52).abs() < 0.08, "SLO fraction {frac}");
        assert!(jobs.iter().all(|j| j.job_type == JobType::Unconstrained));
    }

    #[test]
    fn het_workload_types_partition_slo_jobs() {
        let jobs = builder(4).generate(Workload::GsHet);
        let slo: Vec<_> = jobs.iter().filter(|j| j.deadline.is_some()).collect();
        let gpu = slo.iter().filter(|j| j.job_type == JobType::Gpu).count();
        let mpi = slo.iter().filter(|j| j.job_type == JobType::Mpi).count();
        assert_eq!(gpu + mpi, slo.len(), "all SLO jobs typed");
        let frac = gpu as f64 / slo.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "gpu fraction {frac}");
        // Best-effort jobs stay unconstrained with no slowdown.
        for j in jobs.iter().filter(|j| j.deadline.is_none()) {
            assert_eq!(j.job_type, JobType::Unconstrained);
            assert_eq!(j.slowdown, 1.0);
        }
    }

    #[test]
    fn offered_load_tracks_target() {
        let jobs = builder(5).generate(Workload::GsMix);
        let span = jobs.iter().map(|j| j.submit).max().unwrap() as f64;
        let work: f64 = jobs
            .iter()
            .map(|j| j.k as f64 * j.base_runtime as f64)
            .sum();
        let offered = work / (span * 80.0);
        assert!(
            (0.7..=1.4).contains(&offered),
            "offered load {offered} far from 1.0"
        );
    }

    #[test]
    fn deadlines_allow_the_base_runtime() {
        let jobs = builder(6).generate(Workload::GrSlo);
        for j in &jobs {
            let d = j.deadline.expect("GR SLO is all-SLO");
            assert!(d >= j.submit + 2 * j.base_runtime, "slack >= 2x");
        }
    }

    #[test]
    fn error_jitter_perturbs_per_job() {
        let jobs = WorkloadBuilder::new(GridmixConfig {
            seed: 8,
            num_jobs: 100,
            cluster_size: 80,
            estimate_error: 0.2,
            error_jitter: 0.1,
            ..GridmixConfig::default()
        })
        .generate(Workload::GsMix);
        let errors: Vec<f64> = jobs.iter().map(|j| j.estimate_error).collect();
        assert!(errors.iter().all(|e| (0.1..=0.3).contains(e)));
        // Not all identical.
        assert!(errors.iter().any(|e| (e - errors[0]).abs() > 1e-6));
    }

    #[test]
    fn jitter_never_drops_below_floor() {
        let jobs = WorkloadBuilder::new(GridmixConfig {
            seed: 8,
            num_jobs: 50,
            cluster_size: 80,
            estimate_error: -0.9,
            error_jitter: 0.2,
            ..GridmixConfig::default()
        })
        .generate(Workload::GsMix);
        assert!(jobs.iter().all(|j| j.estimate_error >= -0.95));
        assert!(jobs.iter().all(|j| j.estimated_runtime() >= 1));
    }

    #[test]
    fn estimate_error_sweep_only_moves_estimates() {
        let b = builder(7);
        let base = b.with_estimate_error(Workload::GsMix, 0.0);
        let over = b.with_estimate_error(Workload::GsMix, 0.5);
        for (x, y) in base.iter().zip(&over) {
            assert_eq!(x.base_runtime, y.base_runtime);
            assert_eq!(x.submit, y.submit);
            assert_eq!(y.estimate_error, 0.5);
            assert_eq!(y.estimated_runtime(), (x.base_runtime * 3).div_ceil(2));
        }
    }
}
