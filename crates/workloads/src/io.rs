//! Workload trace import/export.
//!
//! Generated job streams can be saved to a simple CSV format and reloaded,
//! so an experiment's exact workload can be shared and replayed without the
//! generator (the paper's gridmix inputs served the same role). The format
//! is one header line followed by one line per job:
//!
//! ```text
//! id,submit,type,k,base_runtime,slowdown,deadline,estimate_error
//! 0,12,gpu,4,120,1.5,600,0.2
//! 1,15,unconstrained,2,60,1.0,,0.2
//! ```
//!
//! An empty `deadline` field means best-effort. The parser is strict:
//! malformed lines are reported with their line number.

use std::fmt::Write as _;

use tetrisched_sim::{JobId, JobSpec, JobType};

/// A parse failure with line information.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError {
    /// 1-based line number (line 1 is the header).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

const HEADER: &str = "id,submit,type,k,base_runtime,slowdown,deadline,estimate_error";

fn type_name(t: JobType) -> &'static str {
    match t {
        JobType::Unconstrained => "unconstrained",
        JobType::Gpu => "gpu",
        JobType::Mpi => "mpi",
        JobType::Availability => "availability",
    }
}

fn parse_type(s: &str) -> Option<JobType> {
    match s {
        "unconstrained" => Some(JobType::Unconstrained),
        "gpu" => Some(JobType::Gpu),
        "mpi" => Some(JobType::Mpi),
        "availability" => Some(JobType::Availability),
        _ => None,
    }
}

/// Serializes a job stream to the CSV trace format.
pub fn to_csv(jobs: &[JobSpec]) -> String {
    let mut out = String::with_capacity(64 * (jobs.len() + 1));
    out.push_str(HEADER);
    out.push('\n');
    for j in jobs {
        let deadline = j.deadline.map(|d| d.to_string()).unwrap_or_default();
        writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            j.id.0,
            j.submit,
            type_name(j.job_type),
            j.k,
            j.base_runtime,
            j.slowdown,
            deadline,
            j.estimate_error
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Parses a CSV trace back into a job stream.
pub fn from_csv(text: &str) -> Result<Vec<JobSpec>, TraceError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        Some((_, h)) => {
            return Err(TraceError {
                line: 1,
                message: format!("bad header `{h}`"),
            })
        }
        None => {
            return Err(TraceError {
                line: 1,
                message: "empty trace".into(),
            })
        }
    }
    let mut jobs = Vec::new();
    for (ix, line) in lines {
        let lineno = ix + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(TraceError {
                line: lineno,
                message: format!("expected 8 fields, got {}", fields.len()),
            });
        }
        let err = |what: &str| TraceError {
            line: lineno,
            message: format!("bad {what}"),
        };
        let job_type = parse_type(fields[2]).ok_or_else(|| err("job type"))?;
        let deadline = if fields[6].is_empty() {
            None
        } else {
            Some(fields[6].parse().map_err(|_| err("deadline"))?)
        };
        jobs.push(JobSpec {
            id: JobId(fields[0].parse().map_err(|_| err("id"))?),
            submit: fields[1].parse().map_err(|_| err("submit"))?,
            job_type,
            k: fields[3].parse().map_err(|_| err("k"))?,
            base_runtime: fields[4].parse().map_err(|_| err("base_runtime"))?,
            slowdown: fields[5].parse().map_err(|_| err("slowdown"))?,
            deadline,
            estimate_error: fields[7].parse().map_err(|_| err("estimate_error"))?,
        });
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridmixConfig, Workload, WorkloadBuilder};

    #[test]
    fn roundtrip_generated_workload() {
        let jobs = WorkloadBuilder::new(GridmixConfig {
            seed: 5,
            num_jobs: 60,
            cluster_size: 40,
            ..GridmixConfig::default()
        })
        .generate(Workload::GsHet);
        let csv = to_csv(&jobs);
        let back = from_csv(&csv).expect("roundtrip parse");
        assert_eq!(jobs.len(), back.len());
        for (a, b) in jobs.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.job_type, b.job_type);
            assert_eq!(a.k, b.k);
            assert_eq!(a.base_runtime, b.base_runtime);
            assert_eq!(a.slowdown, b.slowdown);
            assert_eq!(a.deadline, b.deadline);
            assert_eq!(a.estimate_error, b.estimate_error);
        }
    }

    #[test]
    fn best_effort_deadline_is_empty_field() {
        let jobs = vec![JobSpec {
            id: JobId(3),
            submit: 7,
            job_type: JobType::Availability,
            k: 2,
            base_runtime: 50,
            slowdown: 1.5,
            deadline: None,
            estimate_error: -0.25,
        }];
        let csv = to_csv(&jobs);
        assert!(csv.contains("3,7,availability,2,50,1.5,,-0.25"));
        assert_eq!(from_csv(&csv).unwrap()[0].deadline, None);
    }

    #[test]
    fn rejects_bad_header() {
        let e = from_csv("nope\n1,2,gpu,1,1,1.0,,0").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("bad header"));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let text = format!("{HEADER}\n1,2,gpu,1,1\n");
        let e = from_csv(&text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("8 fields"));
    }

    #[test]
    fn rejects_unknown_type() {
        let text = format!("{HEADER}\n1,2,quantum,1,1,1.0,,0\n");
        let e = from_csv(&text).unwrap_err();
        assert!(e.message.contains("job type"));
    }

    #[test]
    fn skips_blank_lines() {
        let text = format!("{HEADER}\n\n1,2,gpu,1,10,1.5,99,0.1\n\n");
        let jobs = from_csv(&text).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].deadline, Some(99));
    }

    #[test]
    fn empty_trace_rejected() {
        assert!(from_csv("").is_err());
    }
}
