//! Workload generation for the TetriSched evaluation.
//!
//! The paper drives its experiments with a Gridmix-3-based synthetic
//! generator "that respects the runtime parameter distributions for arrival
//! time, job count, size, deadline, and task runtime" (Sec. 6.4), derived
//! from the SWIM project's published characterizations of Cloudera,
//! Facebook, and Yahoo production clusters. The original trace files are not
//! redistributable, so this crate encodes the published *shapes* — many
//! small jobs, heavy-tailed sizes and runtimes, near-100% offered load — and
//! reproduces the four Table 1 compositions:
//!
//! | Workload | SLO | BE  | Unconstrained | GPU | MPI |
//! |----------|-----|-----|---------------|-----|-----|
//! | GR SLO   | 100%| 0%  | 100%          | 0%  | 0%  |
//! | GR MIX   | 52% | 48% | 100%          | 0%  | 0%  |
//! | GS MIX   | 70% | 30% | 100%          | 0%  | 0%  |
//! | GS HET   | 75% | 25% | 0%            | 50% | 50% |
//!
//! (type fractions apply to SLO jobs; best-effort jobs are unconstrained,
//! matching Sec. 6.4's description of GS HET).
//!
//! All sampling is deterministic under a caller-provided seed, and the
//! offered load is scaled to a target cluster utilization as in the paper
//! ("we adjust the load to utilize near 100% of the available cluster
//! capacity").

pub mod compositions;
pub mod distributions;
pub mod gridmix;
pub mod io;
pub mod openloop;
pub mod swim;

pub use compositions::{Composition, Workload};
pub use distributions::{BoundedPareto, Empirical, Exp, LogNormal, Sample};
pub use gridmix::{GridmixConfig, WorkloadBuilder};
pub use io::{from_csv, to_csv, TraceError};
pub use openloop::{ArrivalProcess, OpenLoopConfig, OpenLoopDriver};
pub use swim::JobClassParams;
