//! The Table 1 workload compositions.

/// Fractions describing a workload mixture (Table 1). `slo` + `be` = 1;
/// the type fractions partition the SLO jobs (best-effort jobs are
/// unconstrained, Sec. 6.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Composition {
    /// Fraction of SLO (deadline-bearing) jobs.
    pub slo: f64,
    /// Fraction of best-effort jobs.
    pub be: f64,
    /// Fraction of SLO jobs with no placement preference.
    pub unconstrained: f64,
    /// Fraction of SLO jobs preferring GPU nodes.
    pub gpu: f64,
    /// Fraction of SLO jobs preferring rack locality (MPI).
    pub mpi: f64,
    /// Fraction of SLO jobs preferring anti-affine spread (availability
    /// services; an extension beyond Table 1, zero in the paper's rows).
    pub avail: f64,
}

impl Composition {
    /// Validates that the fractions form two distributions.
    pub fn validate(&self) -> bool {
        (self.slo + self.be - 1.0).abs() < 1e-9
            && (self.unconstrained + self.gpu + self.mpi + self.avail - 1.0).abs() < 1e-9
            && [
                self.slo,
                self.be,
                self.unconstrained,
                self.gpu,
                self.mpi,
                self.avail,
            ]
            .iter()
            .all(|&f| (0.0..=1.0).contains(&f))
    }
}

/// The four workloads of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Production-derived, SLO jobs only (fb2009_2), RC256.
    GrSlo,
    /// Production-derived SLO + BE mixture (fb2009_2 + yahoo_1), RC256.
    GrMix,
    /// Synthetic homogeneous SLO + BE mixture, RC80.
    GsMix,
    /// Synthetic heterogeneous SLO (GPU + MPI) + unconstrained BE, RC80.
    GsHet,
    /// Extension: heterogeneous SLO mix including anti-affine availability
    /// services (not in the paper's Table 1).
    GsAvail,
}

impl Workload {
    /// The Table 1 row for this workload.
    pub fn composition(self) -> Composition {
        match self {
            Workload::GrSlo => Composition {
                slo: 1.0,
                be: 0.0,
                unconstrained: 1.0,
                gpu: 0.0,
                mpi: 0.0,
                avail: 0.0,
            },
            Workload::GrMix => Composition {
                slo: 0.52,
                be: 0.48,
                unconstrained: 1.0,
                gpu: 0.0,
                mpi: 0.0,
                avail: 0.0,
            },
            Workload::GsMix => Composition {
                slo: 0.70,
                be: 0.30,
                unconstrained: 1.0,
                gpu: 0.0,
                mpi: 0.0,
                avail: 0.0,
            },
            Workload::GsHet => Composition {
                slo: 0.75,
                be: 0.25,
                unconstrained: 0.0,
                gpu: 0.5,
                mpi: 0.5,
                avail: 0.0,
            },
            Workload::GsAvail => Composition {
                slo: 0.75,
                be: 0.25,
                unconstrained: 0.2,
                gpu: 0.3,
                mpi: 0.3,
                avail: 0.2,
            },
        }
    }

    /// Workload name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Workload::GrSlo => "GR SLO",
            Workload::GrMix => "GR MIX",
            Workload::GsMix => "GS MIX",
            Workload::GsHet => "GS HET",
            Workload::GsAvail => "GS AVAIL (ext)",
        }
    }

    /// Whether this workload uses the production-derived (SWIM) classes.
    pub fn is_production_derived(self) -> bool {
        matches!(self, Workload::GrSlo | Workload::GrMix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_validate() {
        for w in [
            Workload::GrSlo,
            Workload::GrMix,
            Workload::GsMix,
            Workload::GsHet,
            Workload::GsAvail,
        ] {
            assert!(w.composition().validate(), "{} invalid", w.name());
        }
    }

    #[test]
    fn table1_values() {
        let c = Workload::GrMix.composition();
        assert_eq!(c.slo, 0.52);
        assert_eq!(c.be, 0.48);
        let h = Workload::GsHet.composition();
        assert_eq!(h.gpu, 0.5);
        assert_eq!(h.mpi, 0.5);
        assert_eq!(h.unconstrained, 0.0);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Workload::GrSlo.name(), "GR SLO");
        assert_eq!(Workload::GsHet.name(), "GS HET");
    }
}
