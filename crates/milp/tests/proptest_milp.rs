//! Property-based tests: the branch-and-bound solver must agree with
//! exhaustive enumeration on randomly generated small MILPs, and every
//! returned assignment must be feasible.

use proptest::prelude::*;
use tetrisched_milp::{Model, Sense, SolveStatus, SolverConfig, VarKind};

/// A randomly generated small MILP over binary variables with `<=`
/// constraints and nonnegative right-hand sides (hence always feasible at
/// the origin).
#[derive(Debug, Clone)]
struct RandomMilp {
    n: usize,
    obj: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn random_milp() -> impl Strategy<Value = RandomMilp> {
    (2usize..7).prop_flat_map(|n| {
        let obj = proptest::collection::vec(-5.0..10.0f64, n);
        let rows = proptest::collection::vec(
            (proptest::collection::vec(-3.0..5.0f64, n), 0.0..8.0f64),
            1..5,
        );
        (Just(n), obj, rows).prop_map(|(n, obj, rows)| RandomMilp { n, obj, rows })
    })
}

fn build(m: &RandomMilp) -> Model {
    let mut model = Model::maximize();
    let vars: Vec<_> = (0..m.n)
        .map(|j| model.add_binary(format!("x{j}"), m.obj[j]))
        .collect();
    for (i, (coeffs, rhs)) in m.rows.iter().enumerate() {
        model.add_constraint(
            format!("c{i}"),
            vars.iter().cloned().zip(coeffs.iter().cloned()),
            Sense::Le,
            *rhs,
        );
    }
    model
}

/// Exhaustive optimum over all 2^n binary assignments.
fn brute_force(m: &RandomMilp) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for mask in 0u32..(1 << m.n) {
        let x: Vec<f64> = (0..m.n)
            .map(|j| if mask & (1 << j) != 0 { 1.0 } else { 0.0 })
            .collect();
        let feasible = m.rows.iter().all(|(coeffs, rhs)| {
            let lhs: f64 = coeffs.iter().zip(&x).map(|(c, v)| c * v).sum();
            lhs <= rhs + 1e-9
        });
        if feasible {
            let obj: f64 = m.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
            best = best.max(obj);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_matches_brute_force(m in random_milp()) {
        let model = build(&m);
        let sol = model.solve(&SolverConfig::exact()).unwrap();
        let best = brute_force(&m);
        // The origin is always feasible, so a solution must exist.
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!(model.is_feasible(&sol.values, 1e-6),
            "returned assignment infeasible: {:?}", sol.values);
        prop_assert!((sol.objective - best).abs() < 1e-6,
            "solver {} != brute force {}", sol.objective, best);
    }

    #[test]
    fn gap_solutions_are_within_gap(m in random_milp()) {
        let model = build(&m);
        let sol = model.solve(&SolverConfig::exact().with_rel_gap(0.25)).unwrap();
        let best = brute_force(&m);
        prop_assert!(sol.status.has_solution());
        prop_assert!(model.is_feasible(&sol.values, 1e-6));
        // Incumbent must be within 25% of the true optimum.
        prop_assert!(sol.objective >= best - 0.25 * best.abs().max(1.0) - 1e-6,
            "gap solution {} too far from optimum {}", sol.objective, best);
    }

    #[test]
    fn warm_start_never_hurts(m in random_milp()) {
        let model = build(&m);
        let zero = vec![0.0; m.n];
        let sol = model.solve_warm(&SolverConfig::exact(), &zero).unwrap();
        let best = brute_force(&m);
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!((sol.objective - best).abs() < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mixed-integer instances: binaries plus one continuous variable that
    /// soaks up leftover capacity; LP-feasibility of the result is the
    /// invariant under test.
    #[test]
    fn mixed_instances_return_feasible(
        m in random_milp(),
        cap in 1.0..6.0f64,
    ) {
        let mut model = build(&m);
        let z = model.add_var("z", VarKind::Continuous, 0.0, cap, 0.5);
        model.add_constraint("zcap", [(z, 1.0)], Sense::Le, cap);
        let sol = model.solve(&SolverConfig::exact()).unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        prop_assert!(model.is_feasible(&sol.values, 1e-6));
        // z has positive objective weight and its own slack capacity, so it
        // must sit at its upper bound.
        prop_assert!((sol.value(z) - cap).abs() < 1e-6);
    }

    /// Equality-constrained instances in the shape STRL compilation emits:
    /// P = k*I demand rows plus supply caps.
    #[test]
    fn gang_demand_shape(k in 1i64..4, cap in 0i64..6, value in 0.5..10.0f64) {
        let mut model = Model::maximize();
        let i = model.add_binary("I", value);
        let p = model.add_var("P", VarKind::Integer, 0.0, 16.0, 0.0);
        model.add_constraint("demand", [(p, 1.0), (i, -(k as f64))], Sense::Eq, 0.0);
        model.add_constraint("supply", [(p, 1.0)], Sense::Le, cap as f64);
        let sol = model.solve(&SolverConfig::exact()).unwrap();
        prop_assert_eq!(sol.status, SolveStatus::Optimal);
        if cap >= k {
            prop_assert!(sol.is_set(i));
            prop_assert_eq!(sol.int_value(p), k);
        } else {
            prop_assert!(!sol.is_set(i));
            prop_assert_eq!(sol.int_value(p), 0);
        }
    }
}
