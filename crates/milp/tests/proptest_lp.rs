//! LP-level property tests: the simplex optimum must dominate every
//! randomly sampled feasible point, and returned solutions must satisfy
//! all constraints.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tetrisched_milp::{LpOutcome, Model, Sense, Simplex, VarKind};

#[derive(Debug, Clone)]
struct RandomLp {
    n: usize,
    obj: Vec<f64>,
    ub: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    seed: u64,
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..8).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(-4.0..8.0f64, n),
            proptest::collection::vec(0.5..6.0f64, n),
            proptest::collection::vec(
                (proptest::collection::vec(0.0..4.0f64, n), 1.0..20.0f64),
                1..6,
            ),
            0u64..1000,
        )
            .prop_map(|(n, obj, ub, rows, seed)| RandomLp {
                n,
                obj,
                ub,
                rows,
                seed,
            })
    })
}

fn build(lp: &RandomLp) -> Model {
    let mut m = Model::maximize();
    let vars: Vec<_> = (0..lp.n)
        .map(|j| {
            m.add_var(
                format!("x{j}"),
                VarKind::Continuous,
                0.0,
                lp.ub[j],
                lp.obj[j],
            )
        })
        .collect();
    for (i, (coeffs, rhs)) in lp.rows.iter().enumerate() {
        m.add_constraint(
            format!("c{i}"),
            vars.iter().cloned().zip(coeffs.iter().cloned()),
            Sense::Le,
            *rhs,
        );
    }
    m
}

/// Samples a feasible point by drawing inside the box and scaling down
/// until all rows hold (coefficients are nonnegative, so scaling toward
/// the origin preserves feasibility).
fn sample_feasible(lp: &RandomLp, rng: &mut StdRng) -> Vec<f64> {
    let mut x: Vec<f64> = (0..lp.n).map(|j| rng.random::<f64>() * lp.ub[j]).collect();
    for (coeffs, rhs) in &lp.rows {
        let lhs: f64 = coeffs.iter().zip(&x).map(|(c, v)| c * v).sum();
        if lhs > *rhs {
            let scale = rhs / lhs;
            for v in x.iter_mut() {
                *v *= scale;
            }
        }
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn lp_optimum_dominates_random_feasible_points(lp in random_lp()) {
        let model = build(&lp);
        let out = Simplex::default().solve(&model).unwrap();
        // Nonnegative coefficients + finite upper bounds: always feasible
        // (origin) and bounded.
        let LpOutcome::Optimal { objective, values, .. } = out else {
            return Err(TestCaseError::fail("expected optimal"));
        };
        prop_assert!(model.is_feasible(&values, 1e-6),
            "optimum not feasible: {:?}", values);
        let mut rng = StdRng::seed_from_u64(lp.seed);
        for _ in 0..50 {
            let x = sample_feasible(&lp, &mut rng);
            let obj: f64 = lp.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
            prop_assert!(obj <= objective + 1e-6,
                "sampled point {obj} beats 'optimum' {objective}");
        }
    }

    #[test]
    fn lp_objective_consistent_with_values(lp in random_lp()) {
        let model = build(&lp);
        if let LpOutcome::Optimal { objective, values, .. } =
            Simplex::default().solve(&model).unwrap()
        {
            let recomputed = model.objective_value(&values);
            prop_assert!((objective - recomputed).abs() < 1e-6,
                "reported {objective} vs recomputed {recomputed}");
        }
    }

    #[test]
    fn tightening_bounds_never_improves(lp in random_lp()) {
        let model = build(&lp);
        let base = match Simplex::default().solve(&model).unwrap() {
            LpOutcome::Optimal { objective, .. } => objective,
            _ => return Err(TestCaseError::fail("expected optimal")),
        };
        // Halve every upper bound: the optimum cannot increase.
        let lb: Vec<f64> = vec![0.0; lp.n];
        let ub: Vec<f64> = lp.ub.iter().map(|u| u / 2.0).collect();
        if let LpOutcome::Optimal { objective, .. } =
            Simplex::default().solve_with_bounds(&model, &lb, &ub).unwrap()
        {
            prop_assert!(objective <= base + 1e-6,
                "tightened {objective} > base {base}");
        }
    }
}
