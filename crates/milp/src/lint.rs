//! Structural diagnostics over MILP models — the model half of the
//! `tetrisched-lint` static-analysis layer.
//!
//! The STRL → MILP compiler is trusted to emit well-formed models every
//! cycle, but unlike CPLEX our in-repo simplex/branch-and-bound has no
//! decades of presolve hardening to silently absorb a malformed model.
//! This module provides a pass pipeline that inspects a [`Model`] *before*
//! it reaches the solver:
//!
//! - structural smells (dangling variables, vacuous or duplicate rows,
//!   big-M-style coefficient conditioning) become Warning diagnostics,
//! - trivial infeasibility (crossed bounds, empty integer domains, rows
//!   violated by every point inside the variable bounds) becomes an Error
//!   diagnostic carrying a machine-checkable [`Certificate`],
//! - the same interval bound propagation that powers the certificates is
//!   exported ([`propagate_bounds`]) and reused by [`crate::presolve`], so
//!   certified-infeasible models never enter simplex.
//!
//! The shared [`Diagnostic`] type is re-exported by the workspace `lint`
//! crate, which adds the STRL-expression and source-tree analyses on top.

use std::collections::BTreeMap;
use std::fmt;

use crate::model::{Model, Sense, VarId, VarKind};

/// Numeric slack shared with presolve's infeasibility checks.
const FEAS_TOL: f64 = 1e-7;
/// Tolerance for bound-tightening arithmetic.
const TIGHTEN_TOL: f64 = 1e-9;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; no action needed.
    Info,
    /// Suspicious structure; the model still solves correctly.
    Warning,
    /// The model is malformed or provably infeasible.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding of an analysis pass.
///
/// `code` is a stable machine identifier (`M...` for model passes, `S...`
/// for STRL passes, `L...` for source lints — see DESIGN.md for the full
/// table); `context` locates the finding (a row/variable name, an
/// expression rendering, or a `path:line`).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable diagnostic code, e.g. `M007`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Where the finding is anchored (row name, variable, `path:line`, …).
    pub context: String,
    /// Machine-checkable refutation, for infeasibility findings.
    pub certificate: Option<Certificate>,
}

impl Diagnostic {
    /// Builds a diagnostic without a certificate.
    pub fn new(
        code: &'static str,
        severity: Severity,
        message: impl Into<String>,
        context: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            context: context.into(),
            certificate: None,
        }
    }

    /// Attaches a certificate.
    pub fn with_certificate(mut self, certificate: Certificate) -> Self {
        self.certificate = Some(certificate);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} ({})",
            self.severity, self.code, self.message, self.context
        )
    }
}

/// One `(variable, coefficient, bounds-used)` entry of a row certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct CertTerm {
    /// Column index of the variable.
    pub var: usize,
    /// Coefficient of the variable in the refuted row.
    pub coeff: f64,
    /// Lower bound used when computing the activity interval.
    pub lb: f64,
    /// Upper bound used when computing the activity interval.
    pub ub: f64,
}

/// A machine-checkable refutation of a model's feasibility.
///
/// [`Certificate::verify`] re-derives the refutation from the model alone:
/// it replays the (deterministic) interval bound propagation, checks the
/// certificate's stated bounds are implied by it, and recomputes the
/// violated arithmetic from scratch. A certificate that verifies proves the
/// model has no feasible point, so the solver can report
/// `SolveStatus::Infeasible` without running simplex.
#[derive(Debug, Clone, PartialEq)]
pub enum Certificate {
    /// A variable whose (possibly propagated) bounds crossed: `lb > ub`.
    CrossedBounds {
        /// Column index of the variable.
        var: usize,
        /// Propagated lower bound.
        lb: f64,
        /// Propagated upper bound.
        ub: f64,
    },
    /// An integer variable whose propagated bounds admit no integer point.
    EmptyIntegerDomain {
        /// Column index of the variable.
        var: usize,
        /// Propagated (inward-rounded) lower bound.
        lb: f64,
        /// Propagated (inward-rounded) upper bound.
        ub: f64,
    },
    /// A row whose best achievable activity under the stated variable
    /// bounds still violates it.
    Row {
        /// Row index of the refuted constraint.
        row: usize,
        /// The row's terms with the bounds used for the activity interval.
        terms: Vec<CertTerm>,
        /// The row's sense.
        sense: Sense,
        /// The row's right-hand side.
        rhs: f64,
        /// Achievable `[min, max]` activity under the stated bounds.
        activity: (f64, f64),
    },
}

impl Certificate {
    /// Checks the certificate against `model`.
    ///
    /// Returns `Err` with a description when the certificate does not
    /// actually refute the model (wrong model, stale bounds, or arithmetic
    /// that does not reproduce).
    pub fn verify(&self, model: &Model) -> Result<(), String> {
        let prop = propagate_bounds(model, PROPAGATION_PASSES);
        match self {
            Certificate::CrossedBounds { var, lb, ub }
            | Certificate::EmptyIntegerDomain { var, lb, ub } => {
                let Some(&(plb, pub_)) = prop.bounds.get(*var) else {
                    return Err(format!("variable index {var} out of range"));
                };
                if lb <= ub {
                    return Err(format!("stated bounds [{lb}, {ub}] are not crossed"));
                }
                // The refutation is re-derived, not trusted: propagation on
                // the model itself must reproduce the crossed domain.
                if plb > pub_ + FEAS_TOL {
                    Ok(())
                } else {
                    Err(format!("propagated bounds [{plb}, {pub_}] are not crossed"))
                }
            }
            Certificate::Row {
                row,
                terms,
                sense,
                rhs,
                activity,
            } => {
                let Some(c) = model.constraints().get(*row) else {
                    return Err(format!("row index {row} out of range"));
                };
                if c.sense != *sense || (c.rhs - rhs).abs() > 1e-9 {
                    return Err("row sense/rhs do not match the model".into());
                }
                // Every stated bound must be implied by propagation: the
                // stated interval must contain the propagated one, so it
                // contains every feasible point.
                for t in terms {
                    let Some(&(plb, pub_)) = prop.bounds.get(t.var) else {
                        return Err(format!("variable index {} out of range", t.var));
                    };
                    if t.lb > plb + 1e-6 || t.ub < pub_ - 1e-6 {
                        return Err(format!(
                            "stated bounds [{}, {}] for column {} are tighter than \
                             the propagated [{plb}, {pub_}]",
                            t.lb, t.ub, t.var
                        ));
                    }
                }
                // Recompute the activity interval from the stated terms.
                let (mut lo, mut hi) = (0.0f64, 0.0f64);
                for t in terms {
                    let (a, b) = if t.coeff >= 0.0 {
                        (t.coeff * t.lb, t.coeff * t.ub)
                    } else {
                        (t.coeff * t.ub, t.coeff * t.lb)
                    };
                    lo += a;
                    hi += b;
                }
                if (lo - activity.0).abs() > 1e-6 || (hi - activity.1).abs() > 1e-6 {
                    return Err(format!(
                        "stated activity {activity:?} does not reproduce ({lo}, {hi})"
                    ));
                }
                let violated = match sense {
                    Sense::Le => lo > rhs + FEAS_TOL,
                    Sense::Ge => hi < rhs - FEAS_TOL,
                    Sense::Eq => lo > rhs + FEAS_TOL || hi < rhs - FEAS_TOL,
                };
                if violated {
                    Ok(())
                } else {
                    Err(format!(
                        "activity interval ({lo}, {hi}) does not violate rhs {rhs}"
                    ))
                }
            }
        }
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Certificate::CrossedBounds { var, lb, ub } => {
                write!(f, "column {var}: propagated bounds crossed ({lb} > {ub})")
            }
            Certificate::EmptyIntegerDomain { var, lb, ub } => {
                write!(f, "column {var}: no integer point in [{lb}, {ub}]")
            }
            Certificate::Row {
                row,
                sense,
                rhs,
                activity,
                ..
            } => {
                let op = match sense {
                    Sense::Le => "<=",
                    Sense::Ge => ">=",
                    Sense::Eq => "==",
                };
                write!(
                    f,
                    "row {row}: achievable activity [{}, {}] cannot satisfy {op} {rhs}",
                    activity.0, activity.1
                )
            }
        }
    }
}

/// Number of tightening sweeps used everywhere certificates are produced or
/// verified (two is enough for STRL-shaped models; the count must match
/// between prover and verifier so the replay is exact).
pub const PROPAGATION_PASSES: usize = 2;

/// Result of interval bound propagation over a model.
#[derive(Debug, Clone)]
pub struct Propagation {
    /// Final `(lb, ub)` per column. Integer bounds are rounded inward.
    pub bounds: Vec<(f64, f64)>,
    /// Infeasibility certificates found (empty when none was proven).
    pub certificates: Vec<Certificate>,
}

/// Interval bound propagation: `passes` Gauss-Seidel sweeps of row-activity
/// tightening (each row caps every variable's contribution by the row's
/// right-hand side minus the extreme contribution of the other terms),
/// with integer bounds rounded inward.
///
/// Always returns the final bounds; any trivial infeasibility found —
/// crossed bounds, an empty integer domain, a row violated by every point
/// inside the final bounds — is reported as a [`Certificate`].
// srclint: checked-indexing: lb/ub are collected from model.vars() and
// every index is a VarId of the same model or an enumeration bounded by
// num_vars.
pub fn propagate_bounds(model: &Model, passes: usize) -> Propagation {
    let mut lb: Vec<f64> = model.vars().iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars().iter().map(|v| v.ub).collect();

    // Inward-round integer bounds up front (sound: no integer point lives
    // in the shaved fraction).
    for (j, v) in model.vars().iter().enumerate() {
        if v.kind != VarKind::Continuous {
            if lb[j].is_finite() {
                lb[j] = (lb[j] - TIGHTEN_TOL).ceil();
            }
            if ub[j].is_finite() {
                ub[j] = (ub[j] + TIGHTEN_TOL).floor();
            }
        }
    }

    type CompactRow = (Vec<(VarId, f64)>, Sense, f64);
    let compacted: Vec<CompactRow> = model
        .constraints()
        .iter()
        .map(|c| {
            let terms = crate::model::LinExpr {
                terms: c.terms.clone(),
                constant: 0.0,
            }
            .compact()
            .terms;
            (terms, c.sense, c.rhs)
        })
        .collect();

    let activity = |terms: &[(VarId, f64)], lb: &[f64], ub: &[f64]| -> (f64, f64) {
        let (mut lo, mut hi) = (0.0f64, 0.0f64);
        for &(v, c) in terms {
            let j = v.index();
            let (a, b) = if c >= 0.0 {
                (c * lb[j], c * ub[j])
            } else {
                (c * ub[j], c * lb[j])
            };
            lo += a;
            hi += b;
        }
        (lo, hi)
    };

    for _ in 0..passes.max(1) {
        for (terms, sense, rhs) in &compacted {
            if terms.is_empty() {
                continue;
            }
            let (act_lo, act_hi) = activity(terms, &lb, &ub);
            let tighten_le = matches!(sense, Sense::Le | Sense::Eq);
            let tighten_ge = matches!(sense, Sense::Ge | Sense::Eq);
            for &(v, coeff) in terms {
                if coeff.abs() < TIGHTEN_TOL {
                    continue;
                }
                let j = v.index();
                let integral = model.var(v).kind != VarKind::Continuous;
                let (self_lo, self_hi) = if coeff >= 0.0 {
                    (coeff * lb[j], coeff * ub[j])
                } else {
                    (coeff * ub[j], coeff * lb[j])
                };
                if tighten_le {
                    let rest_lo = act_lo - self_lo;
                    if rest_lo.is_finite() {
                        // coeff * x <= rhs - rest_lo.
                        let cap = rhs - rest_lo;
                        if coeff > 0.0 {
                            let mut new_ub = cap / coeff;
                            if integral {
                                new_ub = (new_ub + TIGHTEN_TOL).floor();
                            }
                            if new_ub < ub[j] - TIGHTEN_TOL {
                                ub[j] = new_ub;
                            }
                        } else {
                            let mut new_lb = cap / coeff;
                            if integral {
                                new_lb = (new_lb - TIGHTEN_TOL).ceil();
                            }
                            if new_lb > lb[j] + TIGHTEN_TOL {
                                lb[j] = new_lb;
                            }
                        }
                    }
                }
                if tighten_ge {
                    let rest_hi = act_hi - self_hi;
                    if rest_hi.is_finite() {
                        // coeff * x >= rhs - rest_hi.
                        let floor_val = rhs - rest_hi;
                        if coeff > 0.0 {
                            let mut new_lb = floor_val / coeff;
                            if integral {
                                new_lb = (new_lb - TIGHTEN_TOL).ceil();
                            }
                            if new_lb > lb[j] + TIGHTEN_TOL {
                                lb[j] = new_lb;
                            }
                        } else {
                            let mut new_ub = floor_val / coeff;
                            if integral {
                                new_ub = (new_ub + TIGHTEN_TOL).floor();
                            }
                            if new_ub < ub[j] - TIGHTEN_TOL {
                                ub[j] = new_ub;
                            }
                        }
                    }
                }
            }
        }
    }

    let mut certificates = Vec::new();
    for (j, v) in model.vars().iter().enumerate() {
        if lb[j] > ub[j] + FEAS_TOL {
            certificates.push(if v.kind != VarKind::Continuous {
                Certificate::EmptyIntegerDomain {
                    var: j,
                    lb: lb[j],
                    ub: ub[j],
                }
            } else {
                Certificate::CrossedBounds {
                    var: j,
                    lb: lb[j],
                    ub: ub[j],
                }
            });
        }
    }
    for (row, (terms, sense, rhs)) in compacted.iter().enumerate() {
        let (act_lo, act_hi) = activity(terms, &lb, &ub);
        let violated = match sense {
            Sense::Le => act_lo > rhs + FEAS_TOL,
            Sense::Ge => act_hi < rhs - FEAS_TOL,
            Sense::Eq => act_lo > rhs + FEAS_TOL || act_hi < rhs - FEAS_TOL,
        };
        if violated {
            certificates.push(Certificate::Row {
                row,
                terms: terms
                    .iter()
                    .map(|&(v, c)| CertTerm {
                        var: v.index(),
                        coeff: c,
                        lb: lb[v.index()],
                        ub: ub[v.index()],
                    })
                    .collect(),
                sense: *sense,
                rhs: *rhs,
                activity: (act_lo, act_hi),
            });
        }
    }

    Propagation {
        bounds: lb.into_iter().zip(ub).collect(),
        certificates,
    }
}

/// Per-row coefficient ratio above which a big-M-style conditioning
/// warning is emitted.
const COEFF_RATIO_WARN: f64 = 1e6;

/// Runs every model analysis pass over `model` and returns the findings.
///
/// Codes emitted here (severity in parentheses):
///
/// - `M001` (Warning) — dangling variable: appears in no constraint and
///   carries a zero objective coefficient,
/// - `M002` (Warning) — vacuous row: no terms after compaction (a violated
///   empty row surfaces as `M007` instead),
/// - `M003` (Warning) — duplicate parallel rows: identical compacted terms
///   and sense; the tighter right-hand side dominates,
/// - `M004` (Error + certificate) — crossed bounds on a continuous
///   variable, directly or via bound propagation,
/// - `M005` (Error + certificate) — integer variable whose tight bounds
///   admit no integer point; (Warning) merely fractional integer bounds,
/// - `M006` (Warning) — big-M-style coefficient conditioning: a row whose
///   magnitude ratio exceeds 1e6,
/// - `M007` (Error + certificate) — a row violated by every point inside
///   the propagated variable bounds.
// srclint: checked-indexing: `referenced` is allocated to num_vars and
// VarId accesses are explicitly range-guarded; certificate var/row indices
// come from propagate_bounds over the same model.
pub fn lint_model(model: &Model) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // M001: dangling variables.
    let mut referenced = vec![false; model.num_vars()];
    for c in model.constraints() {
        for &(v, coeff) in &c.terms {
            if crate::kernels::is_nonzero(coeff) && v.index() < referenced.len() {
                referenced[v.index()] = true;
            }
        }
    }
    for (j, v) in model.vars().iter().enumerate() {
        if !referenced[j] && crate::kernels::is_zero(v.obj) {
            diags.push(Diagnostic::new(
                "M001",
                Severity::Warning,
                "variable appears in no constraint and has zero objective",
                format!("variable `{}` (column {j})", v.name),
            ));
        }
    }

    // M002 vacuous rows / M003 duplicate rows share the compacted terms.
    let mut seen: BTreeMap<(Vec<(usize, u64)>, u8), usize> = BTreeMap::new();
    for (i, c) in model.constraints().iter().enumerate() {
        let terms = crate::model::LinExpr {
            terms: c.terms.clone(),
            constant: 0.0,
        }
        .compact()
        .terms;
        if terms.is_empty() {
            let satisfied = match c.sense {
                Sense::Le => 0.0 <= c.rhs + TIGHTEN_TOL,
                Sense::Ge => 0.0 >= c.rhs - TIGHTEN_TOL,
                Sense::Eq => c.rhs.abs() <= TIGHTEN_TOL,
            };
            if satisfied {
                diags.push(Diagnostic::new(
                    "M002",
                    Severity::Warning,
                    "row has no terms after compaction",
                    format!("row `{}` (index {i})", c.name),
                ));
            }
            continue;
        }
        let key: (Vec<(usize, u64)>, u8) = (
            terms
                .iter()
                .map(|&(v, coeff)| (v.index(), coeff.to_bits()))
                .collect(),
            match c.sense {
                Sense::Le => 0,
                Sense::Ge => 1,
                Sense::Eq => 2,
            },
        );
        if let Some(&first) = seen.get(&key) {
            diags.push(Diagnostic::new(
                "M003",
                Severity::Warning,
                format!(
                    "row duplicates row `{}`; the tighter right-hand side dominates",
                    model.constraints()[first].name
                ),
                format!("row `{}` (index {i})", c.name),
            ));
        } else {
            seen.insert(key, i);
        }

        // M006: per-row coefficient conditioning.
        let mags: Vec<f64> = terms
            .iter()
            .map(|&(_, coeff)| coeff.abs())
            .filter(|m| *m > 0.0)
            .collect();
        if let (Some(&min), Some(&max)) = (
            mags.iter()
                .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)),
            mags.iter()
                .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)),
        ) {
            if max / min > COEFF_RATIO_WARN {
                diags.push(Diagnostic::new(
                    "M006",
                    Severity::Warning,
                    format!(
                        "big-M-style conditioning: coefficient magnitudes span \
                         {min:e} to {max:e}"
                    ),
                    format!("row `{}` (index {i})", c.name),
                ));
            }
        }
    }

    // M005 (Warning): fractional but non-empty integer bounds.
    for (j, v) in model.vars().iter().enumerate() {
        if v.kind == VarKind::Continuous {
            continue;
        }
        let frac = |x: f64| x.is_finite() && (x - x.round()).abs() > 1e-9;
        if (frac(v.lb) || frac(v.ub)) && (v.lb - TIGHTEN_TOL).ceil() <= (v.ub + TIGHTEN_TOL).floor()
        {
            diags.push(Diagnostic::new(
                "M005",
                Severity::Warning,
                format!(
                    "integer variable has fractional bounds [{}, {}]; the solver \
                     rounds them inward",
                    v.lb, v.ub
                ),
                format!("variable `{}` (column {j})", v.name),
            ));
        }
    }

    // M004 / M005 (Error) / M007: propagation-backed certificates.
    for cert in propagate_bounds(model, PROPAGATION_PASSES).certificates {
        let diag = match &cert {
            Certificate::CrossedBounds { var, lb, ub } => Diagnostic::new(
                "M004",
                Severity::Error,
                format!("bounds crossed after propagation: {lb} > {ub}"),
                format!("variable `{}` (column {var})", model.vars()[*var].name),
            ),
            Certificate::EmptyIntegerDomain { var, lb, ub } => Diagnostic::new(
                "M005",
                Severity::Error,
                format!("no integer point in propagated bounds [{lb}, {ub}]"),
                format!("variable `{}` (column {var})", model.vars()[*var].name),
            ),
            Certificate::Row { row, activity, .. } => Diagnostic::new(
                "M007",
                Severity::Error,
                format!(
                    "row is violated by every point inside the propagated bounds \
                     (achievable activity [{}, {}])",
                    activity.0, activity.1
                ),
                format!("row `{}` (index {row})", model.constraints()[*row].name),
            ),
        };
        diags.push(diag.with_certificate(cert));
    }

    diags
}

/// Whether any diagnostic is Error-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Debug-mode pre-check run by the solver entry points: every certificate
/// the linter emits for this model must re-verify against it. Compiled away
/// in release builds; panics (in debug) when the lint layer contradicts
/// itself, because a bogus certificate would let presolve reject a feasible
/// model.
pub fn debug_precheck(model: &Model) {
    if cfg!(debug_assertions) {
        for d in lint_model(model) {
            if let Some(cert) = &d.certificate {
                let verdict = cert.verify(model);
                debug_assert!(
                    verdict.is_ok(),
                    "lint certificate failed verification for {} ({}): {verdict:?}",
                    d.code,
                    d.message
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarKind};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_model_is_clean() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 2.0);
        m.add_constraint("cap", [(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        assert!(lint_model(&m).is_empty());
    }

    #[test]
    fn dangling_variable_warned() {
        let mut m = Model::maximize();
        m.add_var("orphan", VarKind::Continuous, 0.0, 1.0, 0.0);
        let x = m.add_binary("x", 1.0);
        m.add_constraint("c", [(x, 1.0)], Sense::Le, 1.0);
        let diags = lint_model(&m);
        assert_eq!(codes(&diags), vec!["M001"]);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn vacuous_row_warned() {
        let mut m = Model::maximize();
        m.add_binary("x", 1.0);
        m.add_constraint("empty", [], Sense::Le, 5.0);
        let diags = lint_model(&m);
        assert_eq!(codes(&diags), vec!["M002"]);
    }

    #[test]
    fn violated_empty_row_is_certified_infeasible() {
        let mut m = Model::maximize();
        m.add_binary("x", 1.0);
        m.add_constraint("broken", [], Sense::Ge, 5.0);
        let diags = lint_model(&m);
        assert_eq!(codes(&diags), vec!["M007"]);
        assert_eq!(diags[0].severity, Severity::Error);
        diags[0]
            .certificate
            .as_ref()
            .expect("M007 carries a certificate")
            .verify(&m)
            .expect("certificate verifies");
    }

    #[test]
    fn duplicate_rows_warned() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("a", [(x, 1.0), (y, 2.0)], Sense::Le, 3.0);
        m.add_constraint("b", [(y, 2.0), (x, 1.0)], Sense::Le, 2.0);
        let diags = lint_model(&m);
        assert_eq!(codes(&diags), vec!["M003"]);
        assert!(diags[0].message.contains('a'));
    }

    #[test]
    fn crossed_bounds_certified() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 2.0, 1.0, 1.0);
        let diags = lint_model(&m);
        assert_eq!(codes(&diags), vec!["M004"]);
        diags[0]
            .certificate
            .as_ref()
            .expect("certificate")
            .verify(&m)
            .expect("verifies");
    }

    #[test]
    fn empty_integer_domain_certified() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Integer, 0.4, 0.6, 1.0);
        let diags = lint_model(&m);
        assert_eq!(codes(&diags), vec!["M005"]);
        assert_eq!(diags[0].severity, Severity::Error);
        diags[0]
            .certificate
            .as_ref()
            .expect("certificate")
            .verify(&m)
            .expect("verifies");
    }

    #[test]
    fn fractional_integer_bounds_warned() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Integer, 0.5, 4.5, 1.0);
        m.add_constraint("c", [(x, 1.0)], Sense::Le, 4.0);
        let diags = lint_model(&m);
        assert_eq!(codes(&diags), vec!["M005"]);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn coefficient_range_warned() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("bigm", [(x, 1.0), (y, 1e9)], Sense::Le, 1e9);
        let diags = lint_model(&m);
        assert_eq!(codes(&diags), vec!["M006"]);
    }

    #[test]
    fn directly_infeasible_row_certified() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint("impossible", [(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        let diags = lint_model(&m);
        assert!(codes(&diags).contains(&"M007"));
        let d = diags.iter().find(|d| d.code == "M007").expect("M007");
        d.certificate
            .as_ref()
            .expect("certificate")
            .verify(&m)
            .expect("verifies");
    }

    #[test]
    fn propagation_derived_infeasibility_certified() {
        // 2x <= 5 tightens integer x to <= 2; x >= 3 is then refutable even
        // though it is satisfiable under the raw bounds.
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        m.add_constraint("cap", [(x, 2.0)], Sense::Le, 5.0);
        m.add_constraint("need", [(x, 1.0)], Sense::Ge, 3.0);
        let prop = propagate_bounds(&m, 2);
        assert_eq!(prop.bounds[0], (3.0, 2.0));
        let diags = lint_model(&m);
        assert!(codes(&diags).contains(&"M005") || codes(&diags).contains(&"M007"));
        for d in &diags {
            if let Some(cert) = &d.certificate {
                cert.verify(&m).expect("every certificate verifies");
            }
        }
    }

    #[test]
    fn certificate_rejects_wrong_model() {
        let mut bad = Model::maximize();
        let x = bad.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        bad.add_constraint("impossible", [(x, 1.0)], Sense::Ge, 3.0);
        let cert = lint_model(&bad)
            .into_iter()
            .find_map(|d| d.certificate)
            .expect("certificate");

        // A relaxed model that IS feasible: the certificate must not verify.
        let mut ok = Model::maximize();
        let x = ok.add_var("x", VarKind::Continuous, 0.0, 5.0, 1.0);
        ok.add_constraint("impossible", [(x, 1.0)], Sense::Ge, 3.0);
        assert!(cert.verify(&ok).is_err());
    }

    #[test]
    fn propagation_tightens_like_presolve() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 100.0, 1.0);
        m.add_constraint("cap", [(x, 2.0)], Sense::Le, 10.0);
        let prop = propagate_bounds(&m, 2);
        assert_eq!(prop.bounds[x.index()], (0.0, 5.0));
        assert!(prop.certificates.is_empty());
    }

    #[test]
    fn debug_precheck_accepts_infeasible_models() {
        // The pre-check validates certificates; it must NOT reject models
        // that are legitimately infeasible (solvers report that status).
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        m.add_constraint("no", [(x, 1.0)], Sense::Ge, 2.0);
        debug_precheck(&m);
    }
}
