//! Pluggable MILP backends.
//!
//! The paper notes that "the internal MILP model can be translated to any
//! MILP backend" (Sec. 3.2.2) and closes with the observation that "even
//! greater scale and complexity may require exploring solver heuristics to
//! address the quality-scale tradeoff" (Sec. 7.3). This module provides
//! both: a backend abstraction over the model, and a pure-heuristic backend
//! that skips branch-and-bound entirely — one LP relaxation plus a rounding
//! dive — trading bounded optimality loss for near-constant solve time.

use crate::branch_bound::BranchBound;
use crate::certify::{
    mint_infeasibility_proof, AuditNode, IncumbentSource, LpCertificate, NodeStatus, SolveAudit,
    SolveProof,
};
use crate::config::SolverConfig;
use crate::error::Result;
use crate::heuristics;
use crate::model::Model;
use crate::simplex::{LpOutcome, Simplex};
use crate::status::{Solution, SolveStatus, SolverStats};

/// A MILP solving strategy.
pub trait MilpBackend {
    /// Solves `model`, optionally seeded with a warm start.
    fn solve(&self, model: &Model, warm: Option<&[f64]>) -> Result<Solution>;

    /// Backend name for reports.
    fn name(&self) -> &'static str;
}

/// The exact backend: presolve + branch-and-bound (the default).
#[derive(Debug, Clone)]
pub struct ExactBackend {
    config: SolverConfig,
}

impl ExactBackend {
    /// Creates the exact backend.
    pub fn new(config: SolverConfig) -> Self {
        ExactBackend { config }
    }
}

impl MilpBackend for ExactBackend {
    fn solve(&self, model: &Model, warm: Option<&[f64]>) -> Result<Solution> {
        BranchBound::new(self.config.clone()).solve(model, warm)
    }

    fn name(&self) -> &'static str {
        "branch-and-bound"
    }
}

/// The heuristic backend: root LP relaxation + diving, no tree search.
///
/// Quality: whatever the dive lands on (often optimal on loosely coupled
/// scheduling batches, never proven). Speed: a handful of LP solves,
/// independent of how hard the integer program is. A feasible warm start
/// that beats the dive is kept instead.
#[derive(Debug, Clone)]
pub struct HeuristicBackend {
    config: SolverConfig,
}

impl HeuristicBackend {
    /// Creates the heuristic backend.
    pub fn new(config: SolverConfig) -> Self {
        HeuristicBackend { config }
    }
}

impl HeuristicBackend {
    /// Assembles a heuristic-path audit over the unreduced model.
    fn audit(
        &self,
        model: &Model,
        nodes: Vec<AuditNode>,
        incumbent_source: IncumbentSource,
        proof: SolveProof,
    ) -> Box<SolveAudit> {
        Box::new(SolveAudit {
            solved_model: model.clone(),
            rel_gap: self.config.rel_gap,
            limit_hit: false,
            nodes,
            incumbent_source,
            proof,
        })
    }

    fn solve_inner(&self, model: &Model, warm: Option<&[f64]>) -> Result<Solution> {
        let simplex = Simplex::new(self.config.max_lp_iterations);
        let mut sol = self.solve_with_simplex(model, warm, &simplex)?;
        // LP work counters accumulate on the Simplex across root solve and
        // dive; surface them once here.
        sol.stats.lp_iterations = simplex.iterations();
        sol.stats.refactorizations = simplex.refactorizations();
        Ok(sol)
    }

    // srclint: checked-indexing: the warm-start vector's length is checked
    // against num_vars before the per-variable snap loop indexes it.
    fn solve_with_simplex(
        &self,
        model: &Model,
        warm: Option<&[f64]>,
        simplex: &Simplex,
    ) -> Result<Solution> {
        model.validate()?;
        // Same certificate cross-check as the exact path (debug builds only).
        crate::lint::debug_precheck(model);
        let start = std::time::Instant::now();
        let mut stats = SolverStats::default();

        // Warm-start incumbent, as in the exact path.
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        let mut inc_source = IncumbentSource::None;
        if let Some(w) = warm {
            if w.len() == model.num_vars() {
                let mut snapped = w.to_vec();
                for (j, v) in model.vars().iter().enumerate() {
                    if v.kind != crate::model::VarKind::Continuous {
                        snapped[j] = snapped[j].round();
                    }
                }
                if model.is_feasible(&snapped, 1e-6) {
                    incumbent = Some((model.objective_value(&snapped), snapped));
                    stats.warm_start_used = true;
                    inc_source = IncumbentSource::WarmStart;
                }
            }
        }

        let lb: Vec<f64> = model.vars().iter().map(|v| v.lb).collect();
        let ub: Vec<f64> = model.vars().iter().map(|v| v.ub).collect();
        stats.lp_solves += 1;
        let root = simplex.solve_with_bounds(model, &lb, &ub)?;
        let (root_obj, root_values, root_duals) = match root {
            LpOutcome::Optimal {
                objective,
                values,
                duals,
            } => (objective, values, duals),
            LpOutcome::Infeasible { farkas } => {
                stats.wall_secs = start.elapsed().as_secs_f64();
                let audit = self.config.audit.then(|| {
                    let proof = mint_infeasibility_proof(model, &lb, &ub, farkas);
                    self.audit(
                        model,
                        Vec::new(),
                        IncumbentSource::None,
                        SolveProof::RootInfeasible { proof },
                    )
                });
                return Ok(Solution {
                    status: SolveStatus::Infeasible,
                    objective: f64::NEG_INFINITY,
                    values: Vec::new(),
                    stats,
                    audit,
                });
            }
            LpOutcome::Unbounded { ray } => {
                stats.wall_secs = start.elapsed().as_secs_f64();
                let audit = self.config.audit.then(|| {
                    self.audit(
                        model,
                        Vec::new(),
                        IncumbentSource::None,
                        SolveProof::UnboundedRay {
                            patches: Vec::new(),
                            ray,
                        },
                    )
                });
                return Ok(Solution {
                    status: SolveStatus::Unbounded,
                    objective: f64::INFINITY,
                    values: Vec::new(),
                    stats,
                    audit,
                });
            }
        };
        stats.best_bound = root_obj + model.objective_offset;

        if let Some((obj, values)) = heuristics::dive_public(
            model,
            simplex,
            &lb,
            &ub,
            &root_values,
            &self.config,
            &mut stats,
        ) {
            if incumbent.as_ref().map(|(o, _)| obj > *o).unwrap_or(true) {
                incumbent = Some((obj, values));
                inc_source = IncumbentSource::Dive;
            }
        }

        stats.wall_secs = start.elapsed().as_secs_f64();
        let audit = |source: IncumbentSource| {
            self.config.audit.then(|| {
                let root_node = AuditNode {
                    parent: None,
                    patches: Vec::new(),
                    bound: stats.best_bound,
                    status: NodeStatus::Open,
                    lp: Some(LpCertificate {
                        objective: stats.best_bound,
                        duals: root_duals.clone(),
                    }),
                };
                self.audit(model, vec![root_node], source, SolveProof::HeuristicBound)
            })
        };
        match incumbent {
            Some((obj, values)) => {
                stats.final_gap = ((stats.best_bound - obj) / obj.abs().max(1.0)).max(0.0);
                let audit = audit(inc_source);
                Ok(Solution {
                    // Never proven optimal: always reported as feasible.
                    status: SolveStatus::Feasible,
                    objective: obj,
                    values,
                    stats,
                    audit,
                })
            }
            None => {
                let audit = audit(IncumbentSource::None);
                Ok(Solution {
                    status: SolveStatus::NoSolutionFound,
                    objective: f64::NEG_INFINITY,
                    values: Vec::new(),
                    stats,
                    audit,
                })
            }
        }
    }
}

impl MilpBackend for HeuristicBackend {
    fn solve(&self, model: &Model, warm: Option<&[f64]>) -> Result<Solution> {
        let mut sol = self.solve_inner(model, warm)?;
        // Debug builds re-verify the returned assignment; compiled out in
        // release builds.
        crate::certify::debug_postcheck(model, &sol);
        if self.config.audit {
            let report = crate::certify::certify_solution(model, &sol);
            sol.stats.certificates_verified = report.verified;
            sol.stats.certificate_failures = report.diagnostics.len();
        }
        Ok(sol)
    }

    fn name(&self) -> &'static str {
        "lp-dive-heuristic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Sense, VarKind};

    fn knapsack(n: usize) -> Model {
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i % 5) as f64))
            .collect();
        m.add_constraint(
            "w",
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 3) as f64)),
            Sense::Le,
            n as f64,
        );
        m
    }

    #[test]
    fn heuristic_returns_feasible_close_to_exact() {
        let m = knapsack(14);
        let exact = ExactBackend::new(SolverConfig::exact())
            .solve(&m, None)
            .unwrap();
        let heur = HeuristicBackend::new(SolverConfig::exact())
            .solve(&m, None)
            .unwrap();
        assert_eq!(exact.status, SolveStatus::Optimal);
        assert_eq!(heur.status, SolveStatus::Feasible);
        assert!(m.is_feasible(&heur.values, 1e-6));
        // The dive must reach at least 70% of optimal on this easy family.
        assert!(
            heur.objective >= 0.7 * exact.objective,
            "heuristic {} vs exact {}",
            heur.objective,
            exact.objective
        );
        // And never beat it.
        assert!(heur.objective <= exact.objective + 1e-9);
    }

    #[test]
    fn heuristic_detects_infeasible() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        m.add_constraint("no", [(x, 1.0)], Sense::Ge, 2.0);
        let sol = HeuristicBackend::new(SolverConfig::exact())
            .solve(&m, None)
            .unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
    }

    #[test]
    fn heuristic_detects_unbounded() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        let sol = HeuristicBackend::new(SolverConfig::exact())
            .solve(&m, None)
            .unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn warm_start_kept_when_dive_is_worse() {
        // Construct a model where the dive can fail: an equality-coupled
        // pair. The warm start supplies the good answer.
        let mut m = Model::maximize();
        let a = m.add_binary("a", 3.0);
        let b = m.add_binary("b", 2.0);
        m.add_constraint("pick", [(a, 1.0), (b, 1.0)], Sense::Le, 1.0);
        let warm = vec![1.0, 0.0];
        let sol = HeuristicBackend::new(SolverConfig::exact())
            .solve(&m, Some(&warm))
            .unwrap();
        assert!(sol.objective >= 3.0 - 1e-9);
    }

    #[test]
    fn backend_names() {
        assert_eq!(
            ExactBackend::new(SolverConfig::exact()).name(),
            "branch-and-bound"
        );
        assert_eq!(
            HeuristicBackend::new(SolverConfig::exact()).name(),
            "lp-dive-heuristic"
        );
    }
}
