//! Best-first branch-and-bound over the simplex relaxation.
//!
//! Nodes carry bound *patches* (per-variable bound tightenings accumulated
//! from the root), the frontier is a max-heap ordered by the parent
//! relaxation bound, and branching is on the most fractional
//! integer-constrained variable. Termination follows the paper's CPLEX
//! configuration: a relative optimality gap, a wall-clock budget, and a node
//! limit — the best incumbent found so far is returned when a limit fires.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use crate::certify::{
    mint_infeasibility_proof, AuditNode, IncumbentSource, LpCertificate, NodeStatus, SolveAudit,
    SolveProof,
};
use crate::config::SolverConfig;
use crate::error::{MilpError, Result};
use crate::heuristics::dive;
use crate::model::{Model, VarKind};
use crate::simplex::{LpOutcome, Simplex};
use crate::status::{Solution, SolveStatus, SolverStats};

/// A branch-and-bound search node.
#[derive(Debug, Clone)]
struct Node {
    /// Optimistic objective bound inherited from the parent relaxation.
    bound: f64,
    /// Bound tightenings `(var index, lb, ub)` accumulated from the root.
    patches: Vec<(usize, f64, f64)>,
    /// Tie-break sequence number (later nodes explored first on ties, which
    /// approximates depth-first descent among equals).
    seq: u64,
    /// Index of this node's entry in the audit log (meaningful only when
    /// [`SolverConfig::audit`] is set).
    aid: usize,
}

/// Assembles the audit attached to a finished solve, draining the recorded
/// node log.
fn make_audit(
    model: &Model,
    cfg: &SolverConfig,
    limit_hit: bool,
    nodes: &mut Vec<AuditNode>,
    incumbent_source: IncumbentSource,
    proof: SolveProof,
) -> Box<SolveAudit> {
    Box::new(SolveAudit {
        solved_model: model.clone(),
        rel_gap: cfg.rel_gap,
        limit_hit,
        nodes: std::mem::take(nodes),
        incumbent_source,
        proof,
    })
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        // Defined via the total order below so the frontier's equality and
        // ordering always agree (and no raw float `==` is involved).
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Branch-and-bound MILP solver.
#[derive(Debug, Clone)]
pub struct BranchBound {
    config: SolverConfig,
}

impl BranchBound {
    /// Creates a solver with the given configuration.
    pub fn new(config: SolverConfig) -> Self {
        Self { config }
    }

    /// Solves `model`, optionally seeded with a warm-start assignment.
    ///
    /// The warm start is validated against the model (integer variables are
    /// snapped to the nearest integer first); an infeasible warm start is
    /// silently ignored, matching MILP-solver convention.
    ///
    /// With [`SolverConfig::audit`] set, the returned solution carries a
    /// [`SolveAudit`] that [`crate::certify::certify_solution`] can replay,
    /// and `stats.certificates_verified` / `stats.certificate_failures`
    /// report the result of the solver's own replay.
    pub fn solve(&self, model: &Model, warm: Option<&[f64]>) -> Result<Solution> {
        let mut sol = self.solve_inner(model, warm)?;
        // Debug builds re-verify the returned assignment against the
        // original model; compiled out in release builds.
        crate::certify::debug_postcheck(model, &sol);
        if self.config.audit {
            let report = crate::certify::certify_solution(model, &sol);
            sol.stats.certificates_verified = report.verified;
            sol.stats.certificate_failures = report.diagnostics.len();
        }
        Ok(sol)
    }

    fn solve_inner(&self, model: &Model, warm: Option<&[f64]>) -> Result<Solution> {
        let simplex = Simplex::new(self.config.max_lp_iterations);
        let mut sol = self.solve_with_simplex(model, warm, &simplex)?;
        // LP work counters accumulate on the Simplex instance across the
        // root solve, dives, and node relaxations; surface them once here.
        sol.stats.lp_iterations = simplex.iterations();
        sol.stats.refactorizations = simplex.refactorizations();
        Ok(sol)
    }

    // srclint: checked-indexing: all per-variable vectors (bounds, warm
    // starts, incumbents) are built from model.vars() and indexed by
    // branch columns from most_fractional over the same model; warm-start
    // length is validated before use.
    // srclint: expect-boundary: gap termination is only reached inside
    // `if let Some(..) = &incumbent`, so the incumbent provably exists;
    // its absence would be control-flow corruption, not bad input.
    fn solve_with_simplex(
        &self,
        model: &Model,
        warm: Option<&[f64]>,
        simplex: &Simplex,
    ) -> Result<Solution> {
        model.validate()?;
        // Debug builds cross-check every lint infeasibility certificate
        // against the model; compiled out in release builds.
        crate::lint::debug_precheck(model);
        let start = Instant::now();
        let cfg = &self.config;
        let auditing = cfg.audit;
        let n = model.num_vars();
        let mut stats = SolverStats::default();

        // Presolve keeps variable indexing intact, so its reductions are
        // transparent to the caller; implied-bound tightening preserves the
        // feasible set, so warm starts stay valid too.
        let original = model;
        let presolved;
        let model: &Model = if cfg.enable_presolve {
            match crate::presolve::presolve(model, 2) {
                crate::presolve::PresolveOutcome::Infeasible { certificate } => {
                    stats.presolve_certified = certificate.is_some();
                    stats.wall_secs = start.elapsed().as_secs_f64();
                    let audit = auditing.then(|| {
                        Box::new(SolveAudit {
                            solved_model: original.clone(),
                            rel_gap: cfg.rel_gap,
                            limit_hit: false,
                            nodes: Vec::new(),
                            incumbent_source: IncumbentSource::None,
                            proof: SolveProof::PresolveInfeasible { certificate },
                        })
                    });
                    return Ok(Solution {
                        status: SolveStatus::Infeasible,
                        objective: f64::NEG_INFINITY,
                        values: Vec::new(),
                        stats,
                        audit,
                    });
                }
                crate::presolve::PresolveOutcome::Reduced {
                    model: m,
                    rows_dropped,
                    bounds_tightened,
                } => {
                    stats.presolve_rows_dropped = rows_dropped;
                    stats.presolve_bounds_tightened = bounds_tightened;
                    presolved = m;
                    &presolved
                }
            }
        } else {
            model
        };

        // Base bounds, with integer bounds pre-tightened to integral values.
        let mut base_lb = vec![0.0; n];
        let mut base_ub = vec![0.0; n];
        for (j, v) in model.vars().iter().enumerate() {
            let (mut lo, mut hi) = (v.lb, v.ub);
            if v.kind != VarKind::Continuous {
                if lo.is_finite() {
                    lo = lo.ceil();
                }
                if hi.is_finite() {
                    hi = hi.floor();
                }
            }
            base_lb[j] = lo;
            base_ub[j] = hi;
        }

        // Audit node log and incumbent provenance (recorded only when
        // auditing).
        let mut audit_nodes: Vec<AuditNode> = Vec::new();
        let mut inc_source = IncumbentSource::None;

        // Incumbent from the warm start, if it checks out.
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        if let Some(w) = warm {
            if w.len() != n {
                return Err(MilpError::WarmStartLength {
                    expected: n,
                    got: w.len(),
                });
            }
            let mut snapped = w.to_vec();
            for (j, v) in model.vars().iter().enumerate() {
                if v.kind != VarKind::Continuous {
                    snapped[j] = snapped[j].round();
                }
            }
            if model.is_feasible(&snapped, 1e-6) {
                let obj = model.objective_value(&snapped);
                incumbent = Some((obj, snapped));
                stats.warm_start_used = true;
                inc_source = IncumbentSource::WarmStart;
            }
        }

        // Root relaxation.
        stats.lp_solves += 1;
        let root = simplex.solve_with_bounds(model, &base_lb, &base_ub)?;
        let (root_obj, root_values) = match root {
            LpOutcome::Optimal {
                objective, values, ..
            } => (objective, values),
            LpOutcome::Infeasible { farkas } => {
                // A feasible warm start contradicting an infeasible
                // relaxation cannot happen; report infeasible.
                stats.wall_secs = start.elapsed().as_secs_f64();
                let audit = auditing.then(|| {
                    let proof = mint_infeasibility_proof(model, &base_lb, &base_ub, farkas);
                    make_audit(
                        model,
                        cfg,
                        false,
                        &mut audit_nodes,
                        IncumbentSource::None,
                        SolveProof::RootInfeasible { proof },
                    )
                });
                return Ok(Solution {
                    status: SolveStatus::Infeasible,
                    objective: f64::NEG_INFINITY,
                    values: Vec::new(),
                    stats,
                    audit,
                });
            }
            LpOutcome::Unbounded { ray } => {
                stats.wall_secs = start.elapsed().as_secs_f64();
                let audit = auditing.then(|| {
                    make_audit(
                        model,
                        cfg,
                        false,
                        &mut audit_nodes,
                        IncumbentSource::None,
                        SolveProof::UnboundedRay {
                            patches: Vec::new(),
                            ray,
                        },
                    )
                });
                return Ok(Solution {
                    status: SolveStatus::Unbounded,
                    objective: f64::INFINITY,
                    values: Vec::new(),
                    stats,
                    audit,
                });
            }
        };
        let root_obj = root_obj + model.objective_offset;
        stats.best_bound = root_obj;

        // Root diving heuristic for an early incumbent.
        if cfg.enable_diving {
            if let Some((obj, values)) = dive(
                model,
                simplex,
                &base_lb,
                &base_ub,
                &root_values,
                cfg,
                &mut stats,
            ) {
                if incumbent.as_ref().map(|(o, _)| obj > *o).unwrap_or(true) {
                    incumbent = Some((obj, values));
                    inc_source = IncumbentSource::Dive;
                }
            }
        }

        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        let mut seq = 0u64;
        if auditing {
            audit_nodes.push(AuditNode {
                parent: None,
                patches: Vec::new(),
                bound: root_obj,
                status: NodeStatus::Open,
                lp: None,
            });
        }
        heap.push(Node {
            bound: root_obj,
            patches: Vec::new(),
            seq,
            aid: 0,
        });

        let mut limit_hit = false;
        let mut lb_buf = vec![0.0; n];
        let mut ub_buf = vec![0.0; n];

        while let Some(node) = heap.pop() {
            stats.best_bound = node.bound;
            // Optimality-gap termination: the best open bound cannot improve
            // on the incumbent by more than the configured gap.
            if let Some((inc_obj, _)) = &incumbent {
                let gap = (node.bound - inc_obj) / inc_obj.abs().max(1.0);
                if gap <= cfg.rel_gap {
                    stats.final_gap = gap.max(0.0);
                    // The incumbent is itself a valid primal bound, so the
                    // proven bound never sits below it (the frontier can
                    // fall under the incumbent when the gap is negative).
                    stats.best_bound = stats.best_bound.max(*inc_obj);
                    stats.wall_secs = start.elapsed().as_secs_f64();
                    let (obj, values) = incumbent.expect("gap termination requires an incumbent");
                    let audit = auditing.then(|| {
                        make_audit(
                            model,
                            cfg,
                            false,
                            &mut audit_nodes,
                            inc_source,
                            SolveProof::Tree,
                        )
                    });
                    return Ok(Solution {
                        status: SolveStatus::Optimal,
                        objective: obj,
                        values,
                        stats,
                        audit,
                    });
                }
            }
            if start.elapsed() >= cfg.time_limit || stats.nodes >= cfg.node_limit {
                limit_hit = true;
                break;
            }
            stats.nodes += 1;

            // Materialize this node's bounds.
            lb_buf.copy_from_slice(&base_lb);
            ub_buf.copy_from_slice(&base_ub);
            for &(j, lo, hi) in &node.patches {
                lb_buf[j] = lo;
                ub_buf[j] = hi;
            }

            stats.lp_solves += 1;
            let out = simplex.solve_with_bounds(model, &lb_buf, &ub_buf)?;
            let (obj, values) = match out {
                LpOutcome::Optimal {
                    objective,
                    values,
                    duals,
                } => {
                    let obj = objective + model.objective_offset;
                    if auditing {
                        audit_nodes[node.aid].lp = Some(LpCertificate {
                            objective: obj,
                            duals,
                        });
                    }
                    (obj, values)
                }
                LpOutcome::Infeasible { farkas } => {
                    stats.nodes_pruned += 1;
                    if auditing {
                        let proof = mint_infeasibility_proof(model, &lb_buf, &ub_buf, farkas);
                        audit_nodes[node.aid].status = NodeStatus::PrunedInfeasible { proof };
                    }
                    continue;
                }
                LpOutcome::Unbounded { ray } => {
                    stats.wall_secs = start.elapsed().as_secs_f64();
                    let audit = auditing.then(|| {
                        make_audit(
                            model,
                            cfg,
                            false,
                            &mut audit_nodes,
                            IncumbentSource::None,
                            SolveProof::UnboundedRay {
                                patches: node.patches.clone(),
                                ray,
                            },
                        )
                    });
                    return Ok(Solution {
                        status: SolveStatus::Unbounded,
                        objective: f64::INFINITY,
                        values: Vec::new(),
                        stats,
                        audit,
                    });
                }
            };

            // Prune against the incumbent (with gap slack: a subtree that
            // cannot beat the incumbent by more than the gap is not worth
            // exploring).
            if let Some((inc_obj, _)) = &incumbent {
                if obj <= inc_obj + cfg.rel_gap * inc_obj.abs().max(1.0) {
                    stats.nodes_pruned += 1;
                    if auditing {
                        audit_nodes[node.aid].status = NodeStatus::PrunedByBound {
                            incumbent: *inc_obj,
                        };
                    }
                    continue;
                }
            }

            match most_fractional(model, &values, cfg.int_tol) {
                None => {
                    // Integer feasible: snap and record.
                    let mut snapped = values;
                    for (j, v) in model.vars().iter().enumerate() {
                        if v.kind != VarKind::Continuous {
                            snapped[j] = snapped[j].round();
                        }
                    }
                    let obj = model.objective_value(&snapped);
                    if auditing {
                        audit_nodes[node.aid].status =
                            NodeStatus::IntegerFeasible { objective: obj };
                    }
                    if incumbent.as_ref().map(|(o, _)| obj > *o).unwrap_or(true) {
                        incumbent = Some((obj, snapped));
                        inc_source = IncumbentSource::Node(node.aid);
                    }
                }
                Some((j, x)) => {
                    let floor = x.floor();
                    if auditing {
                        audit_nodes[node.aid].status = NodeStatus::Branched { var: j, floor };
                    }
                    // Down child: x_j <= floor.
                    let mut down = node.patches.clone();
                    down.push((j, lb_buf[j], floor.min(ub_buf[j])));
                    seq += 1;
                    let down_aid = if auditing {
                        audit_nodes.push(AuditNode {
                            parent: Some(node.aid),
                            patches: down.clone(),
                            bound: obj,
                            status: NodeStatus::Open,
                            lp: None,
                        });
                        audit_nodes.len() - 1
                    } else {
                        0
                    };
                    heap.push(Node {
                        bound: obj,
                        patches: down,
                        seq,
                        aid: down_aid,
                    });
                    // Up child: x_j >= floor + 1.
                    let mut up = node.patches;
                    up.push((j, (floor + 1.0).max(lb_buf[j]), ub_buf[j]));
                    seq += 1;
                    let up_aid = if auditing {
                        audit_nodes.push(AuditNode {
                            parent: Some(node.aid),
                            patches: up.clone(),
                            bound: obj,
                            status: NodeStatus::Open,
                            lp: None,
                        });
                        audit_nodes.len() - 1
                    } else {
                        0
                    };
                    heap.push(Node {
                        bound: obj,
                        patches: up,
                        seq,
                        aid: up_aid,
                    });
                }
            }
        }

        stats.wall_secs = start.elapsed().as_secs_f64();
        match incumbent {
            Some((obj, values)) => {
                let bound = if limit_hit {
                    stats.best_bound
                } else {
                    // The frontier is exhausted: the incumbent is optimal.
                    obj
                };
                stats.best_bound = bound.max(obj);
                stats.final_gap = ((stats.best_bound - obj) / obj.abs().max(1.0)).max(0.0);
                let status = if limit_hit && stats.final_gap > cfg.rel_gap {
                    SolveStatus::Feasible
                } else {
                    SolveStatus::Optimal
                };
                let audit = auditing.then(|| {
                    make_audit(
                        model,
                        cfg,
                        limit_hit,
                        &mut audit_nodes,
                        inc_source,
                        SolveProof::Tree,
                    )
                });
                Ok(Solution {
                    status,
                    objective: obj,
                    values,
                    stats,
                    audit,
                })
            }
            None => {
                let status = if limit_hit {
                    SolveStatus::NoSolutionFound
                } else {
                    SolveStatus::Infeasible
                };
                let audit = auditing.then(|| {
                    make_audit(
                        model,
                        cfg,
                        limit_hit,
                        &mut audit_nodes,
                        IncumbentSource::None,
                        SolveProof::Tree,
                    )
                });
                Ok(Solution {
                    status,
                    objective: f64::NEG_INFINITY,
                    values: Vec::new(),
                    stats,
                    audit,
                })
            }
        }
    }
}

/// Finds the integer-constrained variable whose relaxation value is farthest
/// from integral (closest to `0.5` fractionality). Returns `None` when the
/// assignment is integral within `tol`.
// srclint: checked-indexing: values is a per-variable vector zipped with
// model.vars() of the same length.
pub(crate) fn most_fractional(model: &Model, values: &[f64], tol: f64) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None; // (index, value, score)
    for (j, v) in model.vars().iter().enumerate() {
        if v.kind == VarKind::Continuous {
            continue;
        }
        let x = values[j];
        let frac = (x - x.round()).abs();
        if frac <= tol {
            continue;
        }
        let score = 0.5 - (x - x.floor() - 0.5).abs();
        match best {
            Some((_, _, s)) if s >= score => {}
            _ => best = Some((j, x, score)),
        }
    }
    best.map(|(j, x, _)| (j, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarKind};
    use std::time::Duration;

    fn exact() -> SolverConfig {
        SolverConfig::exact()
    }

    #[test]
    fn integer_knapsack() {
        // max 8a + 11b + 6c + 4d, weights 5,7,4,3 <= 14, binary.
        // Optimum: b + c + d = 21 (weight 14).
        let mut m = Model::maximize();
        let a = m.add_binary("a", 8.0);
        let b = m.add_binary("b", 11.0);
        let c = m.add_binary("c", 6.0);
        let d = m.add_binary("d", 4.0);
        m.add_constraint(
            "w",
            [(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)],
            Sense::Le,
            14.0,
        );
        let sol = m.solve(&exact()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 21.0).abs() < 1e-6);
        assert!(!sol.is_set(a) && sol.is_set(b) && sol.is_set(c) && sol.is_set(d));
    }

    #[test]
    fn integer_rounding_is_not_lp_rounding() {
        // max y s.t. -x + y <= 0.5, x + y <= 3.5, integer.
        // LP optimum y = 2.0 at x=1.5; best integer y = 1 (x in {1,2}).
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, 0.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0, 1.0);
        m.add_constraint("c1", [(x, -1.0), (y, 1.0)], Sense::Le, 0.5);
        m.add_constraint("c2", [(x, 1.0), (y, 1.0)], Sense::Le, 3.5);
        let sol = m.solve(&exact()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.int_value(y), 1);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("lo", [(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        let sol = m.solve(&exact()).unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
        // Presolve's bound propagation certifies this without simplex.
        assert!(sol.stats.presolve_certified);
    }

    #[test]
    fn unbounded_milp() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
        let sol = m.solve(&exact()).unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
    }

    #[test]
    fn warm_start_accepted_as_incumbent() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 5.0);
        let y = m.add_binary("y", 4.0);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        // Warm start with the suboptimal y=1; solver should still find x=1.
        let sol = m.solve_warm(&exact(), &[0.0, 1.0]).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(sol.stats.warm_start_used);
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_warm_start_ignored() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 5.0);
        m.add_constraint("c", [(x, 1.0)], Sense::Le, 1.0);
        let sol = m.solve_warm(&exact(), &[7.0]).unwrap();
        assert!(!sol.stats.warm_start_used);
        assert_eq!(sol.status, SolveStatus::Optimal);
    }

    #[test]
    fn warm_start_length_checked() {
        let mut m = Model::maximize();
        m.add_binary("x", 5.0);
        let err = m.solve_warm(&exact(), &[1.0, 0.0]).unwrap_err();
        assert!(matches!(err, MilpError::WarmStartLength { .. }));
    }

    #[test]
    fn gap_termination_returns_feasible_quality() {
        // With a huge gap tolerance, any incumbent within 50% is "optimal".
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(format!("x{i}"), 1.0))
            .collect();
        m.add_constraint(
            "c",
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            Sense::Le,
            6.0,
        );
        let sol = m.solve(&SolverConfig::exact().with_rel_gap(0.5)).unwrap();
        assert!(sol.status.has_solution());
        assert!(sol.objective >= 4.0); // within 50% of 6
    }

    #[test]
    fn node_limit_returns_best_so_far() {
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..20)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i % 3) as f64))
            .collect();
        m.add_constraint(
            "c",
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            Sense::Le,
            10.0,
        );
        let sol = m.solve(&SolverConfig::exact().with_node_limit(1)).unwrap();
        // The diving heuristic should still deliver an incumbent.
        assert!(sol.status.has_solution());
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn anytime_budget_expiry_returns_certified_incumbent_with_bound() {
        // The degradation ladder's anytime rung: a one-node budget stops
        // the search almost immediately, yet the solve must still return
        // a feasible incumbent together with its dual bound and — under
        // audit — a verified proof-carrying certificate.
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..20)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i % 3) as f64))
            .collect();
        m.add_constraint(
            "c",
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            Sense::Le,
            10.0,
        );
        let cfg = SolverConfig::anytime(Duration::from_millis(50), 1).with_audit(true);
        let sol = m.solve(&cfg).unwrap();
        assert!(sol.status.has_solution());
        assert!(m.is_feasible(&sol.values, 1e-6));
        assert!(
            sol.stats.best_bound >= sol.objective - 1e-6,
            "incumbent {} must carry a dominating bound {}",
            sol.objective,
            sol.stats.best_bound
        );
        assert!(sol.stats.certificates_verified > 0);
        assert_eq!(sol.stats.certificate_failures, 0);
    }

    #[test]
    fn time_limit_zero_with_dive_incumbent() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        m.add_constraint("c", [(x, 1.0)], Sense::Le, 1.0);
        let sol = m
            .solve(&SolverConfig::exact().with_time_limit(Duration::ZERO))
            .unwrap();
        // Root LP + dive still run; search loop then stops immediately.
        assert!(sol.status.has_solution());
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + 3y, x integer in [0,4], y continuous in [0, 2.5],
        // x + 2y <= 6 -> x=4, y=1 -> 11.
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Integer, 0.0, 4.0, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 2.5, 3.0);
        m.add_constraint("c", [(x, 1.0), (y, 2.0)], Sense::Le, 6.0);
        let sol = m.solve(&exact()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.int_value(x), 4);
        assert!((sol.value(y) - 1.0).abs() < 1e-6);
        assert!((sol.objective - 11.0).abs() < 1e-6);
    }

    #[test]
    fn equality_gang_structure() {
        // Mimics a STRL demand constraint: P = 2*I with supply P <= 1.
        // I must be 0.
        let mut m = Model::maximize();
        let i = m.add_binary("I", 10.0);
        let p = m.add_var("P", VarKind::Integer, 0.0, 2.0, 0.0);
        m.add_constraint("demand", [(p, 1.0), (i, -2.0)], Sense::Eq, 0.0);
        m.add_constraint("supply", [(p, 1.0)], Sense::Le, 1.0);
        let sol = m.solve(&exact()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(!sol.is_set(i));
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn fractional_objective_coeffs() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 0.3);
        let y = m.add_binary("y", 0.7);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        let sol = m.solve(&exact()).unwrap();
        assert!(sol.is_set(y));
        assert!((sol.objective - 0.7).abs() < 1e-9);
    }

    #[test]
    fn most_fractional_picks_middle() {
        let mut m = Model::maximize();
        m.add_var("a", VarKind::Integer, 0.0, 5.0, 0.0);
        m.add_var("b", VarKind::Integer, 0.0, 5.0, 0.0);
        m.add_var("c", VarKind::Continuous, 0.0, 5.0, 0.0);
        let pick = most_fractional(&m, &[1.1, 2.5, 3.3], 1e-6).unwrap();
        assert_eq!(pick.0, 1);
        assert!(most_fractional(&m, &[1.0, 2.0, 3.3], 1e-6).is_none());
    }
}
