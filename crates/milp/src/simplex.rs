//! Two-phase primal simplex with bounded variables.
//!
//! The LP relaxations produced by STRL compilation contain thousands of
//! binary indicator variables. Handling variable bounds natively (instead of
//! encoding `x <= 1` as constraint rows) keeps the basis small: nonbasic
//! variables rest at either their lower or upper bound, the ratio test
//! includes "bound flips", and phase 1 introduces artificial variables only
//! for rows whose slack cannot absorb the initial residual.
//!
//! The implementation is a dense-tableau simplex: at the problem sizes the
//! TetriSched scheduler generates per cycle (10^3–10^4 columns), dense row
//! operations are fast and numerically well behaved. Dantzig pricing is used
//! until a stall is detected, after which Bland's rule guarantees
//! termination.

use crate::error::{MilpError, Result};
use crate::kernels::{fixed_dot, fixed_sum, is_nonzero};
use crate::model::{Model, Sense};
use std::cell::Cell;

/// Tolerance for reduced-cost optimality checks.
const COST_TOL: f64 = 1e-7;
/// Minimum magnitude an element may have to serve as a pivot.
const PIVOT_TOL: f64 = 1e-9;
/// Feasibility tolerance on bounds and constraint residuals.
const FEAS_TOL: f64 = 1e-7;
/// Iterations without objective improvement before switching to Bland's rule.
const STALL_LIMIT: usize = 256;
/// Pivots between full recomputations of basic values and reduced costs.
const REFRESH_PERIOD: usize = 128;

/// Result of an LP solve.
///
/// Every variant carries the raw material for an independently checkable
/// certificate (see [`crate::certify`]): row duals at an optimum, a Farkas
/// dual candidate for infeasibility, and an improving ray for unboundedness.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal {
        /// Objective value at the optimum.
        objective: f64,
        /// Values of the *structural* variables, in model column order.
        values: Vec<f64>,
        /// Row dual values (simplex multipliers) at the optimum, one per
        /// constraint. Together with the reduced costs they derive, these
        /// certify the objective value via LP duality.
        duals: Vec<f64>,
    },
    /// No assignment satisfies the constraints and bounds.
    Infeasible {
        /// Farkas dual candidate extracted from the phase-1 optimum, one
        /// entry per constraint row. `None` when infeasibility was decided
        /// before simplex ran (crossed bound overrides). Callers must
        /// verify the candidate before trusting it.
        farkas: Option<Vec<f64>>,
    },
    /// The objective is unbounded above.
    Unbounded {
        /// Improving feasible ray over the structural variables: following
        /// it from any feasible point stays feasible and increases the
        /// objective without bound. `None` only on degenerate paths.
        ray: Option<Vec<f64>>,
    },
}

/// Where a nonbasic variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColState {
    Basic,
    AtLower,
    AtUpper,
    /// Free variable (both bounds infinite) resting at zero.
    FreeZero,
}

/// Reusable LP solver.
///
/// A `Simplex` owns no problem state between calls; it exists to carry the
/// iteration limit, to namespace the solve entry points, and to accumulate
/// work counters across the solves it performs (read back by
/// branch-and-bound for telemetry via [`Simplex::iterations`] /
/// [`Simplex::refactorizations`]).
#[derive(Debug, Clone)]
pub struct Simplex {
    /// Maximum pivots per phase before reporting numerical trouble.
    pub max_iterations: usize,
    /// Cumulative pivots across all solves by this instance. `Cell`
    /// because the solve entry points take `&self`.
    iterations: Cell<usize>,
    /// Cumulative basis refreshes (dense refactorizations) across all
    /// solves by this instance.
    refactorizations: Cell<usize>,
}

impl Default for Simplex {
    fn default() -> Self {
        Self::new(200_000)
    }
}

impl Simplex {
    /// Creates a solver with the given per-phase iteration limit.
    pub fn new(max_iterations: usize) -> Self {
        Self {
            max_iterations,
            iterations: Cell::new(0),
            refactorizations: Cell::new(0),
        }
    }

    /// Cumulative simplex pivots across all solves by this instance.
    pub fn iterations(&self) -> usize {
        self.iterations.get()
    }

    /// Cumulative basis refactorizations across all solves by this
    /// instance (periodic refreshes plus phase-boundary refreshes).
    pub fn refactorizations(&self) -> usize {
        self.refactorizations.get()
    }

    /// Solves the LP relaxation of `model` using the model's own bounds.
    pub fn solve(&self, model: &Model) -> Result<LpOutcome> {
        let lb: Vec<f64> = model.vars().iter().map(|v| v.lb).collect();
        let ub: Vec<f64> = model.vars().iter().map(|v| v.ub).collect();
        self.solve_with_bounds(model, &lb, &ub)
    }

    /// Solves the LP relaxation of `model` with overridden variable bounds
    /// (used by branch-and-bound, which tightens bounds per node).
    // srclint: checked-indexing: lb/ub are caller-supplied per-variable
    // vectors indexed by 0..lb.len(); branch-and-bound builds both from
    // model.vars() so the lengths agree by construction.
    pub fn solve_with_bounds(&self, model: &Model, lb: &[f64], ub: &[f64]) -> Result<LpOutcome> {
        // Reject immediately if any bound pair is crossed: branch-and-bound
        // legitimately produces such nodes.
        for j in 0..lb.len() {
            if lb[j] > ub[j] + FEAS_TOL {
                return Ok(LpOutcome::Infeasible { farkas: None });
            }
        }
        let mut t = Tableau::build(model, lb, ub);
        t.max_iterations = self.max_iterations;
        let out = t.solve();
        self.iterations.set(self.iterations.get() + t.iterations);
        self.refactorizations
            .set(self.refactorizations.get() + t.refactorizations);
        out
    }
}

/// Dense simplex tableau in canonical form: the columns of basic variables
/// are unit vectors, `rows` holds the transformed constraint matrix, and
/// `rhs` the transformed right-hand side, so basic values satisfy
/// `x_B[i] = rhs[i] - sum_over_nonbasic(rows[i][j] * value(j))`.
struct Tableau {
    /// Number of constraint rows.
    m: usize,
    /// Number of structural columns.
    n_struct: usize,
    /// Total columns (structural + slack + artificial).
    n_cols: usize,
    /// Row-major dense matrix, `m` rows of `n_cols`.
    rows: Vec<Vec<f64>>,
    /// Transformed right-hand side.
    rhs: Vec<f64>,
    /// Lower bound per column.
    lb: Vec<f64>,
    /// Upper bound per column.
    ub: Vec<f64>,
    /// Phase-2 objective coefficient per column.
    cost: Vec<f64>,
    /// Reduced costs for the current phase.
    dj: Vec<f64>,
    /// State per column.
    state: Vec<ColState>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Current value of the basic variable in each row.
    x_basic: Vec<f64>,
    /// First artificial column index (== `n_cols` when none).
    art_start: usize,
    /// Iteration limit per phase.
    max_iterations: usize,
    /// Pivots performed across both phases (telemetry).
    iterations: usize,
    /// Basis refreshes performed (telemetry).
    refactorizations: usize,
}

impl Tableau {
    /// Builds the initial tableau: slack columns per row, structural
    /// variables nonbasic at a finite bound, and artificial columns for rows
    /// whose slack cannot absorb the residual.
    // srclint: checked-indexing: every index is derived from the tableau's
    // own dimensions (m rows, n_struct + m + artificials columns), and all
    // vectors are allocated to exactly those dimensions in this function.
    fn build(model: &Model, s_lb: &[f64], s_ub: &[f64]) -> Tableau {
        let m = model.num_constraints();
        let n_struct = model.num_vars();
        let n_slack = m;
        let base_cols = n_struct + n_slack;

        let mut lb = Vec::with_capacity(base_cols + m);
        let mut ub = Vec::with_capacity(base_cols + m);
        let mut cost = vec![0.0; base_cols];
        for j in 0..n_struct {
            lb.push(s_lb[j]);
            ub.push(s_ub[j]);
            cost[j] = model.var(crate::model::VarId(j)).obj;
        }
        for c in model.constraints() {
            let (slo, shi) = match c.sense {
                Sense::Le => (0.0, f64::INFINITY),
                Sense::Ge => (f64::NEG_INFINITY, 0.0),
                Sense::Eq => (0.0, 0.0),
            };
            lb.push(slo);
            ub.push(shi);
        }

        // Nonbasic rest position for structural columns.
        let mut state = vec![ColState::AtLower; base_cols];
        for (j, st) in state.iter_mut().enumerate().take(n_struct) {
            *st = initial_state(lb[j], ub[j]);
        }

        // Raw rows: structural coefficients plus the unit slack column.
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut rhs: Vec<f64> = Vec::with_capacity(m);
        for (i, c) in model.constraints().iter().enumerate() {
            let mut row = vec![0.0; base_cols];
            for &(v, coeff) in &c.terms {
                row[v.index()] += coeff;
            }
            row[n_struct + i] = 1.0;
            rows.push(row);
            rhs.push(c.rhs);
        }

        // Decide the initial basis per row: the slack if it can hold the
        // residual, otherwise an artificial.
        let mut basis = vec![0usize; m];
        let mut x_basic = vec![0.0; m];
        let mut art_cols: Vec<usize> = Vec::new();
        // Residual of each row given structural variables at rest.
        let nval = |j: usize, state: &[ColState], lb: &[f64], ub: &[f64]| -> f64 {
            match state[j] {
                ColState::AtLower => lb[j],
                ColState::AtUpper => ub[j],
                _ => 0.0,
            }
        };
        for i in 0..m {
            let mut res = rhs[i];
            for (j, &a) in rows[i].iter().take(n_struct).enumerate() {
                if is_nonzero(a) {
                    res -= a * nval(j, &state, &lb, &ub);
                }
            }
            let s = n_struct + i;
            if res >= lb[s] - FEAS_TOL && res <= ub[s] + FEAS_TOL {
                // The slack absorbs the residual: it is basic and feasible.
                basis[i] = s;
                state[s] = ColState::Basic;
                x_basic[i] = res;
            } else {
                // Rest the slack at its nearest bound and cover the remainder
                // with an artificial variable.
                let (beta, rest) = if res < lb[s] {
                    (lb[s], ColState::AtLower)
                } else {
                    (ub[s], ColState::AtUpper)
                };
                state[s] = rest;
                let mut residual = res - beta;
                if residual < 0.0 {
                    // Scale the row so the artificial enters with +1 and a
                    // nonnegative value.
                    for a in rows[i].iter_mut() {
                        *a = -*a;
                    }
                    rhs[i] = -rhs[i];
                    residual = -residual;
                }
                art_cols.push(i);
                x_basic[i] = residual;
            }
        }

        let art_start = base_cols;
        let n_cols = base_cols + art_cols.len();
        for row in rows.iter_mut() {
            row.resize(n_cols, 0.0);
        }
        cost.resize(n_cols, 0.0);
        lb.resize(n_cols, 0.0);
        ub.resize(n_cols, f64::INFINITY);
        state.resize(n_cols, ColState::AtLower);
        for (k, &i) in art_cols.iter().enumerate() {
            let col = art_start + k;
            rows[i][col] = 1.0;
            basis[i] = col;
            state[col] = ColState::Basic;
        }

        Tableau {
            m,
            n_struct,
            n_cols,
            rows,
            rhs,
            lb,
            ub,
            cost,
            dj: vec![0.0; n_cols],
            state,
            basis,
            x_basic,
            art_start,
            max_iterations: 200_000,
            iterations: 0,
            refactorizations: 0,
        }
    }

    /// Rest value of a nonbasic column. Callers only ask for columns whose
    /// state is nonbasic; a basic column answers `0.0` (its value lives in
    /// `x_basic`, and `0.0` is the contribution a basic column makes to the
    /// residual sums this feeds).
    // srclint: checked-indexing: j < n_cols is the column-iteration
    // invariant of every caller; state/lb/ub are allocated to n_cols.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.state[j] {
            ColState::AtLower => self.lb[j],
            ColState::AtUpper => self.ub[j],
            ColState::FreeZero => 0.0,
            ColState::Basic => {
                debug_assert!(false, "basic column has no rest value");
                0.0
            }
        }
    }

    /// Recomputes all basic values from the tableau (numerical refresh).
    // srclint: checked-indexing: rows/rhs/x_basic are allocated to m rows;
    // every row has n_cols entries matching state.
    fn refresh_basics(&mut self) {
        self.refactorizations += 1;
        for i in 0..self.m {
            let mut v = self.rhs[i];
            let row = &self.rows[i];
            for (j, &a) in row.iter().enumerate() {
                if is_nonzero(a) && self.state[j] != ColState::Basic {
                    v -= a * self.nonbasic_value(j);
                }
            }
            self.x_basic[i] = v;
        }
    }

    /// Recomputes reduced costs for the given phase cost vector.
    // srclint: checked-indexing: dj/cost/rows are allocated to
    // n_cols/n_cols/m; basis entries are valid column indices by the pivot
    // invariant.
    fn refresh_reduced_costs(&mut self, phase1: bool) {
        let c = |j: usize| -> f64 {
            if phase1 {
                if j >= self.art_start {
                    -1.0
                } else {
                    0.0
                }
            } else {
                self.cost[j]
            }
        };
        for j in 0..self.n_cols {
            self.dj[j] = c(j);
        }
        for i in 0..self.m {
            let cb = c(self.basis[i]);
            if is_nonzero(cb) {
                let row = &self.rows[i];
                for (d, &a) in self.dj.iter_mut().zip(row.iter()) {
                    if is_nonzero(a) {
                        *d -= cb * a;
                    }
                }
            }
        }
        // Basic columns have zero reduced cost by construction; enforce it to
        // cancel accumulated round-off.
        for &b in &self.basis {
            self.dj[b] = 0.0;
        }
    }

    /// Extracts the row dual values implied by the current reduced costs.
    ///
    /// For row `i` with slack column `s = n_struct + i`, the slack's reduced
    /// cost is `d_s = c_s - y_i * T_i` where `T_i` is the build-time row
    /// negation and the slack's column is `T_i * e_i`; slack costs are zero
    /// in both phases and the negation cancels against the transformed row,
    /// so `y_i = -dj[s]` holds for the *original* row orientation.
    // srclint: checked-indexing: slack columns n_struct..n_struct+m exist
    // for every row by construction.
    fn extract_duals(&self) -> Vec<f64> {
        (0..self.m).map(|i| -self.dj[self.n_struct + i]).collect()
    }

    /// Builds the improving feasible ray for an unbounded phase-2 pivot:
    /// entering column `j_in` moves in direction `dir` with no blocking
    /// basic variable, so the structural components move at rate `dir` (for
    /// `j_in` itself) and `-rows[i][j_in] * dir` (for structural basics).
    // srclint: checked-indexing: j_in is a pricing-loop column < n_cols;
    // the ray is allocated to n_struct and only indexed below it.
    fn extract_ray(&self, j_in: usize, dir: f64) -> Vec<f64> {
        let mut ray = vec![0.0; self.n_struct];
        if j_in < self.n_struct {
            ray[j_in] = dir;
        }
        for i in 0..self.m {
            let b = self.basis[i];
            if b < self.n_struct {
                ray[b] = -self.rows[i][j_in] * dir;
            }
        }
        ray
    }

    /// Runs phase 1 (if artificials exist) and phase 2.
    // srclint: checked-indexing: all loops run over the tableau's own
    // dimensions (m rows, n_cols columns, n_struct structural values).
    // srclint: expect-boundary: a column in ColState::Basic appears in
    // `basis` by the pivot invariant (pivot() records every entering
    // column); its absence would mean tableau corruption, not bad input.
    fn solve(&mut self) -> Result<LpOutcome> {
        if self.art_start < self.n_cols {
            self.refresh_reduced_costs(true);
            match self.optimize(true)? {
                PhaseEnd::Optimal => {}
                PhaseEnd::Unbounded { .. } => {
                    // Phase 1 objective is bounded above by zero; reaching
                    // here means numerical trouble.
                    return Err(MilpError::IterationLimit { iterations: 0 });
                }
            }
            let infeasibility = fixed_sum(
                (0..self.m)
                    .filter(|&i| self.basis[i] >= self.art_start)
                    .map(|i| self.x_basic[i].abs())
                    .chain(
                        (self.art_start..self.n_cols)
                            .filter(|&j| self.state[j] != ColState::Basic)
                            .map(|j| self.nonbasic_value(j).abs()),
                    ),
            );
            if infeasibility > 1e-6 {
                // The phase-1 optimum's duals are a Farkas infeasibility
                // candidate; refresh first so the extraction is not stale.
                self.refresh_basics();
                self.refresh_reduced_costs(true);
                return Ok(LpOutcome::Infeasible {
                    farkas: Some(self.extract_duals()),
                });
            }
            // Freeze artificials at zero for phase 2.
            for j in self.art_start..self.n_cols {
                self.lb[j] = 0.0;
                self.ub[j] = 0.0;
                if self.state[j] == ColState::AtUpper {
                    self.state[j] = ColState::AtLower;
                }
            }
        }
        self.refresh_basics();
        self.refresh_reduced_costs(false);
        match self.optimize(false)? {
            PhaseEnd::Optimal => {}
            PhaseEnd::Unbounded { ray } => return Ok(LpOutcome::Unbounded { ray: Some(ray) }),
        }
        // Refresh once more so the extracted values and duals reflect the
        // exact final basis rather than incrementally maintained state.
        self.refresh_basics();
        self.refresh_reduced_costs(false);
        // Extract structural values.
        let mut values = vec![0.0; self.n_struct];
        for (j, value) in values.iter_mut().enumerate() {
            *value = match self.state[j] {
                ColState::Basic => {
                    let i = self
                        .basis
                        .iter()
                        .position(|&b| b == j)
                        .expect("basic column must appear in the basis");
                    self.x_basic[i]
                }
                _ => self.nonbasic_value(j),
            };
        }
        // Snap to bounds to remove round-off.
        for (j, v) in values.iter_mut().enumerate() {
            if self.lb[j].is_finite() && (*v - self.lb[j]).abs() < FEAS_TOL {
                *v = self.lb[j];
            }
            if self.ub[j].is_finite() && (*v - self.ub[j]).abs() < FEAS_TOL {
                *v = self.ub[j];
            }
        }
        let objective = fixed_dot(self.cost.iter().zip(values.iter()).map(|(&c, &x)| (c, x)));
        let duals = self.extract_duals();
        Ok(LpOutcome::Optimal {
            objective,
            values,
            duals,
        })
    }

    /// Pivots until optimality or unboundedness for the current phase.
    // srclint: checked-indexing: pricing and ratio-test loops index by
    // column j < n_cols and row i < m; basis entries are valid columns by
    // the pivot invariant.
    fn optimize(&mut self, phase1: bool) -> Result<PhaseEnd> {
        let mut bland = false;
        let mut stall = 0usize;
        let mut iterations = 0usize;
        let mut since_refresh = 0usize;
        loop {
            iterations += 1;
            self.iterations += 1;
            if iterations > self.max_iterations {
                return Err(MilpError::IterationLimit { iterations });
            }
            since_refresh += 1;
            if since_refresh >= REFRESH_PERIOD {
                self.refresh_basics();
                self.refresh_reduced_costs(phase1);
                since_refresh = 0;
            }

            // Pricing: pick an entering column and its direction.
            let mut entering: Option<(usize, f64, f64)> = None; // (col, dir, score)
            for j in 0..self.n_cols {
                if self.state[j] == ColState::Basic {
                    continue;
                }
                // Fixed columns (lb == ub) can never make progress.
                if self.lb[j] == self.ub[j] {
                    continue;
                }
                let d = self.dj[j];
                let dir = match self.state[j] {
                    ColState::AtLower if d > COST_TOL => 1.0,
                    ColState::AtUpper if d < -COST_TOL => -1.0,
                    ColState::FreeZero if d > COST_TOL => 1.0,
                    ColState::FreeZero if d < -COST_TOL => -1.0,
                    _ => continue,
                };
                let score = d.abs();
                if bland {
                    entering = Some((j, dir, score));
                    break;
                }
                match entering {
                    Some((_, _, best)) if best >= score => {}
                    _ => entering = Some((j, dir, score)),
                }
            }
            let Some((j_in, dir, _)) = entering else {
                return Ok(PhaseEnd::Optimal);
            };

            // Ratio test.
            let enter_span = if self.lb[j_in].is_finite() && self.ub[j_in].is_finite() {
                self.ub[j_in] - self.lb[j_in]
            } else {
                f64::INFINITY
            };
            let mut t_best = enter_span;
            let mut leave: Option<(usize, bool, f64)> = None; // (row, hits_upper, |alpha|)
            for i in 0..self.m {
                let alpha = self.rows[i][j_in];
                if alpha.abs() < PIVOT_TOL {
                    continue;
                }
                let delta = -alpha * dir; // rate of change of x_basic[i]
                let b = self.basis[i];
                let (limit, hits_upper) = if delta > 0.0 {
                    if self.ub[b].is_finite() {
                        ((self.ub[b] - self.x_basic[i]) / delta, true)
                    } else {
                        continue;
                    }
                } else if self.lb[b].is_finite() {
                    ((self.lb[b] - self.x_basic[i]) / delta, false)
                } else {
                    continue;
                };
                let limit = limit.max(0.0);
                let better = match leave {
                    None => limit < t_best - 1e-12,
                    Some((best_row, _, best_alpha)) => {
                        limit < t_best - 1e-12
                            || (limit < t_best + 1e-12 && {
                                if bland {
                                    // Bland: smallest basis index wins ties.
                                    b < self.basis[best_row]
                                } else {
                                    alpha.abs() > best_alpha
                                }
                            })
                    }
                };
                if better || (leave.is_none() && limit <= t_best) {
                    t_best = t_best.min(limit);
                    leave = Some((i, hits_upper, alpha.abs()));
                }
            }

            if t_best.is_infinite() {
                return Ok(PhaseEnd::Unbounded {
                    ray: self.extract_ray(j_in, dir),
                });
            }

            let improvement = self.dj[j_in].abs() * t_best;
            if improvement <= 1e-12 {
                stall += 1;
                if stall > STALL_LIMIT {
                    bland = true;
                }
            } else {
                stall = 0;
            }

            match leave {
                // The entering variable reaches its opposite bound first:
                // bound flip, no basis change.
                None => {
                    debug_assert!(enter_span.is_finite());
                    for i in 0..self.m {
                        let alpha = self.rows[i][j_in];
                        if is_nonzero(alpha) {
                            self.x_basic[i] += -alpha * dir * t_best;
                        }
                    }
                    self.state[j_in] = match self.state[j_in] {
                        ColState::AtLower => ColState::AtUpper,
                        ColState::AtUpper => ColState::AtLower,
                        other => other,
                    };
                }
                Some((r, hits_upper, _))
                    if t_best >= enter_span - 1e-12 && enter_span.is_finite() =>
                {
                    // Tie between bound flip and basis change: prefer the
                    // flip (cheaper, no pivot).
                    let _ = (r, hits_upper);
                    for i in 0..self.m {
                        let alpha = self.rows[i][j_in];
                        if is_nonzero(alpha) {
                            self.x_basic[i] += -alpha * dir * enter_span;
                        }
                    }
                    self.state[j_in] = match self.state[j_in] {
                        ColState::AtLower => ColState::AtUpper,
                        ColState::AtUpper => ColState::AtLower,
                        other => other,
                    };
                }
                Some((r, hits_upper, _)) => {
                    // Standard pivot: j_in enters the basis in row r.
                    let entering_value = match self.state[j_in] {
                        ColState::FreeZero => dir * t_best,
                        _ => self.nonbasic_value(j_in) + dir * t_best,
                    };
                    for i in 0..self.m {
                        if i == r {
                            continue;
                        }
                        let alpha = self.rows[i][j_in];
                        if is_nonzero(alpha) {
                            self.x_basic[i] += -alpha * dir * t_best;
                        }
                    }
                    let leaving = self.basis[r];
                    self.state[leaving] = if hits_upper {
                        ColState::AtUpper
                    } else {
                        ColState::AtLower
                    };
                    self.basis[r] = j_in;
                    self.state[j_in] = ColState::Basic;
                    self.x_basic[r] = entering_value;
                    self.pivot(r, j_in);
                }
            }
        }
    }

    /// Gaussian elimination step making column `j` a unit vector at row `r`.
    // srclint: checked-indexing: r < m and j < n_cols come straight from
    // the caller's ratio test; rows/rhs/dj are allocated to match.
    fn pivot(&mut self, r: usize, j: usize) {
        let p = self.rows[r][j];
        debug_assert!(p.abs() >= PIVOT_TOL, "pivot too small: {p}");
        let inv = 1.0 / p;
        for a in self.rows[r].iter_mut() {
            *a *= inv;
        }
        self.rhs[r] *= inv;
        // Take the pivot row out to satisfy the borrow checker cheaply.
        let pivot_row = std::mem::take(&mut self.rows[r]);
        let pivot_rhs = self.rhs[r];
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let factor = self.rows[i][j];
            if is_nonzero(factor) {
                let row = &mut self.rows[i];
                for (a, &pa) in row.iter_mut().zip(pivot_row.iter()) {
                    *a -= factor * pa;
                }
                self.rhs[i] -= factor * pivot_rhs;
            }
        }
        let dfac = self.dj[j];
        if is_nonzero(dfac) {
            for (d, &pa) in self.dj.iter_mut().zip(pivot_row.iter()) {
                *d -= dfac * pa;
            }
        }
        self.dj[j] = 0.0;
        self.rows[r] = pivot_row;
    }
}

/// How a phase of the simplex ended.
enum PhaseEnd {
    Optimal,
    Unbounded {
        /// Improving structural ray witnessing the unbounded pivot.
        ray: Vec<f64>,
    },
}

/// Chooses the rest position for a nonbasic column given its bounds.
fn initial_state(lb: f64, ub: f64) -> ColState {
    if lb.is_finite() {
        ColState::AtLower
    } else if ub.is_finite() {
        ColState::AtUpper
    } else {
        ColState::FreeZero
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarKind};

    fn lp(model: &Model) -> LpOutcome {
        Simplex::default().solve(model).expect("lp solve")
    }

    fn assert_optimal(out: &LpOutcome, expect_obj: f64) -> Vec<f64> {
        match out {
            LpOutcome::Optimal {
                objective, values, ..
            } => {
                assert!(
                    (objective - expect_obj).abs() < 1e-6,
                    "objective {objective} != {expect_obj}"
                );
                values.clone()
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_2d_lp() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; x,y >= 0.
        // Classic Dantzig example, optimum 36 at (2, 6).
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 5.0);
        m.add_constraint("c1", [(x, 1.0)], Sense::Le, 4.0);
        m.add_constraint("c2", [(y, 2.0)], Sense::Le, 12.0);
        m.add_constraint("c3", [(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let v = assert_optimal(&lp(&m), 36.0);
        assert!((v[0] - 2.0).abs() < 1e-6);
        assert!((v[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn upper_bounds_without_rows() {
        // max x + y with x,y in [0, 2] and x + y <= 3 -> 3.
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 2.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 2.0, 1.0);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Sense::Le, 3.0);
        assert_optimal(&lp(&m), 3.0);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // max x + 2y  s.t. x + y = 5, x - y >= 1, x,y >= 0. Optimum at
        // (3, 2): 7.
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 2.0);
        m.add_constraint("sum", [(x, 1.0), (y, 1.0)], Sense::Eq, 5.0);
        m.add_constraint("diff", [(x, 1.0), (y, -1.0)], Sense::Ge, 1.0);
        let v = assert_optimal(&lp(&m), 7.0);
        assert!((v[0] - 3.0).abs() < 1e-6);
        assert!((v[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint("hi", [(x, 1.0)], Sense::Ge, 2.0);
        assert!(matches!(lp(&m), LpOutcome::Infeasible { .. }));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 0.0);
        m.add_constraint("c", [(x, 1.0), (y, -1.0)], Sense::Le, 1.0);
        assert!(matches!(lp(&m), LpOutcome::Unbounded { .. }));
    }

    #[test]
    fn no_constraints_bound_flip() {
        // max 2x - y with x in [0,3], y in [1, 5]: x=3, y=1 -> 5.
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 0.0, 3.0, 2.0);
        m.add_var("y", VarKind::Continuous, 1.0, 5.0, -1.0);
        let v = assert_optimal(&lp(&m), 5.0);
        assert_eq!(v, vec![3.0, 1.0]);
    }

    #[test]
    fn no_constraints_unbounded() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        assert!(matches!(lp(&m), LpOutcome::Unbounded { .. }));
    }

    #[test]
    fn negative_lower_bounds() {
        // max -x with x in [-4, 10], x >= -2 via constraint -> x = -2, obj 2.
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, -4.0, 10.0, -1.0);
        m.add_constraint("c", [(x, 1.0)], Sense::Ge, -2.0);
        let v = assert_optimal(&lp(&m), 2.0);
        assert!((v[0] + 2.0).abs() < 1e-6);
    }

    #[test]
    fn free_variable() {
        // max x s.t. x + y <= 4, y >= 1, x free -> with y at 1, x = 3.
        let mut m = Model::maximize();
        let x = m.add_var(
            "x",
            VarKind::Continuous,
            f64::NEG_INFINITY,
            f64::INFINITY,
            1.0,
        );
        let y = m.add_var("y", VarKind::Continuous, 1.0, f64::INFINITY, 0.0);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
        let v = assert_optimal(&lp(&m), 3.0);
        assert!((v[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classically degenerate LP (multiple constraints active at the
        // optimum). Terminates and finds obj = 1.
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 0.0);
        m.add_constraint("a", [(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        m.add_constraint("b", [(x, 1.0), (y, 2.0)], Sense::Le, 1.0);
        m.add_constraint("c", [(x, 1.0)], Sense::Le, 1.0);
        assert_optimal(&lp(&m), 1.0);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        // max x with (0.5x + 0.5x) <= 2 -> 2.
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        m.add_constraint("dup", [(x, 0.5), (x, 0.5)], Sense::Le, 2.0);
        assert_optimal(&lp(&m), 2.0);
    }

    #[test]
    fn crossed_override_bounds_infeasible() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        let out = Simplex::default()
            .solve_with_bounds(&m, &[2.0], &[1.0])
            .unwrap();
        assert!(matches!(out, LpOutcome::Infeasible { .. }));
    }

    #[test]
    fn knapsack_relaxation() {
        // max 10a + 6b + 4c s.t. a+b+c <= 100, 10a+4b+5c <= 600,
        // 2a+2b+6c <= 300 -> optimum 733.33 at (33.33, 66.67, 0).
        let mut m = Model::maximize();
        let a = m.add_var("a", VarKind::Continuous, 0.0, f64::INFINITY, 10.0);
        let b = m.add_var("b", VarKind::Continuous, 0.0, f64::INFINITY, 6.0);
        let c = m.add_var("c", VarKind::Continuous, 0.0, f64::INFINITY, 4.0);
        m.add_constraint("c1", [(a, 1.0), (b, 1.0), (c, 1.0)], Sense::Le, 100.0);
        m.add_constraint("c2", [(a, 10.0), (b, 4.0), (c, 5.0)], Sense::Le, 600.0);
        m.add_constraint("c3", [(a, 2.0), (b, 2.0), (c, 6.0)], Sense::Le, 300.0);
        let v = assert_optimal(&lp(&m), 2200.0 / 3.0);
        assert!((v[0] - 100.0 / 3.0).abs() < 1e-4);
        assert!((v[1] - 200.0 / 3.0).abs() < 1e-4);
        assert!(v[2].abs() < 1e-6);
    }

    #[test]
    fn eq_row_with_zero_residual_uses_slack() {
        // x starts at lb=0 and the Eq row has rhs 0, so the slack absorbs it
        // without an artificial.
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 5.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 5.0, -1.0);
        m.add_constraint("eq", [(x, 1.0), (y, -1.0)], Sense::Eq, 0.0);
        // max x - y with x == y -> any x=y gives 0.
        assert_optimal(&lp(&m), 0.0);
    }

    #[test]
    fn larger_random_like_lp_is_consistent() {
        // A structured 20-var LP; verify the claimed optimum is feasible and
        // no feasible corner beats it on a coarse grid probe.
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..20)
            .map(|i| {
                m.add_var(
                    format!("x{i}"),
                    VarKind::Continuous,
                    0.0,
                    1.0,
                    1.0 + (i as f64) * 0.1,
                )
            })
            .collect();
        // Budget: sum <= 10, pairwise caps.
        m.add_constraint(
            "budget",
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            Sense::Le,
            10.0,
        );
        for w in vars.chunks(2) {
            m.add_constraint("pair", [(w[0], 1.0), (w[1], 1.0)], Sense::Le, 1.5);
        }
        let out = lp(&m);
        let LpOutcome::Optimal {
            objective, values, ..
        } = out
        else {
            panic!("expected optimal");
        };
        assert!(m.is_feasible(&values, 1e-6));
        // The greedy upper bound: take the most valuable half of each pair.
        assert!(objective <= 10.0 * 2.9 + 1e-6);
        assert!(objective > 15.0);
    }
}
