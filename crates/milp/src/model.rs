//! Model representation: variables, linear expressions, and constraints.

use crate::branch_bound::BranchBound;
use crate::config::SolverConfig;
use crate::error::{MilpError, Result};
use crate::kernels::{fixed_dot, is_nonzero};
use crate::status::Solution;

/// Identifier of a decision variable within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Raw index of the variable in the model's column order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a constraint within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    /// Raw index of the constraint in the model's row order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Domain of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable.
    Integer,
    /// Integer variable implicitly clamped to `[0, 1]`.
    Binary,
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `lhs <= rhs`.
    Le,
    /// `lhs >= rhs`.
    Ge,
    /// `lhs == rhs`.
    Eq,
}

/// A decision variable's static description.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Human-readable name (used in debug output only).
    pub name: String,
    /// Variable domain.
    pub kind: VarKind,
    /// Lower bound (may be `-inf`).
    pub lb: f64,
    /// Upper bound (may be `+inf`).
    pub ub: f64,
    /// Objective coefficient.
    pub obj: f64,
}

/// A linear constraint `sum(coeff * var) sense rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Human-readable name (used in debug output only).
    pub name: String,
    /// Sparse terms `(variable, coefficient)`.
    pub terms: Vec<(VarId, f64)>,
    /// Constraint direction.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A sparse linear expression, used to build objectives and constraints.
///
/// Repeated variables are allowed; they are merged when the expression is
/// installed into a model.
#[derive(Debug, Clone, Default)]
pub struct LinExpr {
    /// Sparse terms `(variable, coefficient)`.
    pub terms: Vec<(VarId, f64)>,
    /// Constant offset (meaningful for objectives; ignored by constraints,
    /// where it should be folded into the right-hand side by the caller).
    pub constant: f64,
}

impl LinExpr {
    /// Creates an empty expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an expression holding a single constant.
    pub fn constant(c: f64) -> Self {
        Self {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Creates an expression holding a single `coeff * var` term.
    pub fn term(var: VarId, coeff: f64) -> Self {
        Self {
            terms: vec![(var, coeff)],
            constant: 0.0,
        }
    }

    /// Adds `coeff * var` to the expression.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        self.terms.push((var, coeff));
        self
    }

    /// Adds another expression to this one.
    pub fn add_expr(&mut self, other: &LinExpr) -> &mut Self {
        self.terms.extend_from_slice(&other.terms);
        self.constant += other.constant;
        self
    }

    /// Returns this expression scaled by `s`.
    pub fn scaled(&self, s: f64) -> LinExpr {
        LinExpr {
            terms: self.terms.iter().map(|&(v, c)| (v, c * s)).collect(),
            constant: self.constant * s,
        }
    }

    /// Merges duplicate variables and drops zero coefficients.
    pub fn compact(&self) -> LinExpr {
        let mut sorted = self.terms.clone();
        sorted.sort_by_key(|&(v, _)| v);
        let mut terms: Vec<(VarId, f64)> = Vec::with_capacity(sorted.len());
        for (v, c) in sorted {
            match terms.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => terms.push((v, c)),
            }
        }
        terms.retain(|&(_, c)| is_nonzero(c));
        LinExpr {
            terms,
            constant: self.constant,
        }
    }

    /// Evaluates the expression against a dense assignment.
    // srclint: checked-indexing: VarIds in the terms index the assignment
    // of the model that minted them; callers pass num_vars-length slices.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + fixed_dot(self.terms.iter().map(|&(v, c)| (c, values[v.0])))
    }
}

/// A MILP model: maximize a linear objective subject to linear constraints
/// over bounded continuous/integer/binary variables.
#[derive(Debug, Clone, Default)]
pub struct Model {
    vars: Vec<Variable>,
    constraints: Vec<Constraint>,
    /// Constant added to the objective (STRL compilation never needs it, but
    /// callers composing objectives may).
    pub objective_offset: f64,
}

impl Model {
    /// Creates an empty maximization model.
    pub fn maximize() -> Self {
        Self::default()
    }

    /// Adds a variable and returns its id.
    ///
    /// Binary variables have their bounds clamped to `[0, 1]`.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lb: f64,
        ub: f64,
        obj: f64,
    ) -> VarId {
        let (lb, ub) = match kind {
            VarKind::Binary => (lb.max(0.0), ub.min(1.0)),
            _ => (lb, ub),
        };
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.into(),
            kind,
            lb,
            ub,
            obj,
        });
        id
    }

    /// Convenience: adds a binary variable with the given objective weight.
    pub fn add_binary(&mut self, name: impl Into<String>, obj: f64) -> VarId {
        self.add_var(name, VarKind::Binary, 0.0, 1.0, obj)
    }

    /// Adds to the objective coefficient of an existing variable.
    pub fn add_objective_term(&mut self, var: VarId, coeff: f64) {
        self.vars[var.0].obj += coeff;
    }

    /// Installs a whole expression into the objective.
    // srclint: checked-indexing: VarIds are only minted by this model's
    // add_var and always index `vars`.
    pub fn add_objective_expr(&mut self, expr: &LinExpr) {
        for &(v, c) in &expr.terms {
            self.vars[v.0].obj += c;
        }
        self.objective_offset += expr.constant;
    }

    /// Adds a constraint and returns its id.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        sense: Sense,
        rhs: f64,
    ) -> ConstraintId {
        let id = ConstraintId(self.constraints.len());
        self.constraints.push(Constraint {
            name: name.into(),
            terms: terms.into_iter().collect(),
            sense,
            rhs,
        });
        id
    }

    /// Adds a constraint from a [`LinExpr`]; the expression's constant is
    /// moved to the right-hand side.
    pub fn add_constraint_expr(
        &mut self,
        name: impl Into<String>,
        expr: &LinExpr,
        sense: Sense,
        rhs: f64,
    ) -> ConstraintId {
        let compact = expr.compact();
        self.add_constraint(name, compact.terms, sense, rhs - compact.constant)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of integer-constrained (integer or binary) variables.
    pub fn num_integer_vars(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.kind != VarKind::Continuous)
            .count()
    }

    /// Read access to a variable description.
    // srclint: checked-indexing: VarIds are only minted by this model's
    // add_var and always index `vars`.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.0]
    }

    /// Read access to all variables in column order.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Read access to a constraint.
    // srclint: checked-indexing: ConstraintIds are only minted by this
    // model's add_constraint and always index `constraints`.
    pub fn constraint(&self, id: ConstraintId) -> &Constraint {
        &self.constraints[id.0]
    }

    /// Read access to all constraints in row order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Mutably overrides the bounds of a variable (used by branch-and-bound).
    // srclint: checked-indexing: VarIds are only minted by this model's
    // add_var and always index `vars`.
    pub fn set_bounds(&mut self, var: VarId, lb: f64, ub: f64) {
        self.vars[var.0].lb = lb;
        self.vars[var.0].ub = ub;
    }

    /// Checks the model for structural problems: reversed bounds, non-finite
    /// coefficients, and dangling variable references.
    pub fn validate(&self) -> Result<()> {
        for v in &self.vars {
            if v.lb > v.ub {
                return Err(MilpError::InvalidBounds {
                    name: v.name.clone(),
                    lb: v.lb,
                    ub: v.ub,
                });
            }
            if v.obj.is_nan() || v.obj.is_infinite() {
                return Err(MilpError::NonFiniteCoefficient {
                    context: format!("objective of `{}`", v.name),
                });
            }
        }
        for c in &self.constraints {
            if !c.rhs.is_finite() {
                return Err(MilpError::NonFiniteCoefficient {
                    context: format!("rhs of `{}`", c.name),
                });
            }
            for &(v, coeff) in &c.terms {
                if v.0 >= self.vars.len() {
                    return Err(MilpError::UnknownVariable(v.0));
                }
                if !coeff.is_finite() {
                    return Err(MilpError::NonFiniteCoefficient {
                        context: format!("constraint `{}`", c.name),
                    });
                }
            }
        }
        Ok(())
    }

    /// Evaluates the objective for a dense assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective_offset + fixed_dot(self.vars.iter().zip(values).map(|(v, &x)| (v.obj, x)))
    }

    /// Checks whether a dense assignment satisfies every constraint, bound,
    /// and integrality requirement within tolerance `tol`.
    // srclint: checked-indexing: the assignment length is checked against
    // num_vars at entry, and every term VarId indexes this model.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, &x) in self.vars.iter().zip(values) {
            if x < v.lb - tol || x > v.ub + tol {
                return false;
            }
            if v.kind != VarKind::Continuous && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs = fixed_dot(c.terms.iter().map(|&(v, coeff)| (coeff, values[v.0])));
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Solves the model with branch-and-bound.
    ///
    /// This is the primary entry point; see [`BranchBound`] for warm-start
    /// support.
    pub fn solve(&self, config: &SolverConfig) -> Result<Solution> {
        BranchBound::new(config.clone()).solve(self, None)
    }

    /// Solves the model, seeding branch-and-bound with a candidate solution
    /// (used for cross-cycle warm starts, paper Sec. 3.2.2).
    pub fn solve_warm(&self, config: &SolverConfig, warm: &[f64]) -> Result<Solution> {
        BranchBound::new(config.clone()).solve(self, Some(warm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linexpr_compact_merges_terms() {
        let a = VarId(0);
        let b = VarId(1);
        let mut e = LinExpr::new();
        e.add_term(a, 1.0).add_term(b, 2.0).add_term(a, 3.0);
        let c = e.compact();
        assert_eq!(c.terms, vec![(a, 4.0), (b, 2.0)]);
    }

    #[test]
    fn linexpr_compact_drops_zeros() {
        let a = VarId(0);
        let mut e = LinExpr::new();
        e.add_term(a, 1.0).add_term(a, -1.0);
        assert!(e.compact().terms.is_empty());
    }

    #[test]
    fn linexpr_eval() {
        let a = VarId(0);
        let b = VarId(1);
        let mut e = LinExpr::constant(1.5);
        e.add_term(a, 2.0).add_term(b, -1.0);
        assert_eq!(e.eval(&[3.0, 4.0]), 1.5 + 6.0 - 4.0);
    }

    #[test]
    fn linexpr_scaled() {
        let a = VarId(0);
        let e = LinExpr::term(a, 2.0).scaled(3.0);
        assert_eq!(e.terms, vec![(a, 6.0)]);
    }

    #[test]
    fn binary_bounds_clamped() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Binary, -5.0, 5.0, 1.0);
        assert_eq!(m.var(x).lb, 0.0);
        assert_eq!(m.var(x).ub, 1.0);
    }

    #[test]
    fn validate_rejects_reversed_bounds() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 1.0, 0.0, 0.0);
        assert!(matches!(m.validate(), Err(MilpError::InvalidBounds { .. })));
    }

    #[test]
    fn validate_rejects_nan_coeff() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 0.0);
        m.add_constraint("bad", [(x, f64::NAN)], Sense::Le, 1.0);
        assert!(matches!(
            m.validate(),
            Err(MilpError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn feasibility_check_covers_integrality() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        m.add_constraint("c", [(x, 1.0)], Sense::Le, 5.0);
        assert!(m.is_feasible(&[3.0], 1e-6));
        assert!(!m.is_feasible(&[3.5], 1e-6));
        assert!(!m.is_feasible(&[6.0], 1e-6));
    }

    #[test]
    fn constraint_expr_folds_constant() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0, 1.0);
        let mut e = LinExpr::constant(2.0);
        e.add_term(x, 1.0);
        // x + 2 <= 5  =>  x <= 3
        let c = m.add_constraint_expr("c", &e, Sense::Le, 5.0);
        assert_eq!(m.constraint(c).rhs, 3.0);
    }
}
