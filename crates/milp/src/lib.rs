//! Mixed Integer Linear Programming solver for TetriSched.
//!
//! This crate is the in-repo replacement for the commercial IBM CPLEX solver
//! used by the TetriSched paper (EuroSys 2016, Sec. 3.2.2). It provides the
//! subset of MILP functionality the scheduler relies on:
//!
//! - maximization of a linear objective over continuous, integer, and binary
//!   variables with per-variable bounds,
//! - `<=` / `>=` / `=` linear constraints,
//! - "good enough" termination: a relative optimality gap (the paper uses
//!   10%), a wall-clock time limit, and a node limit,
//! - warm starting from a feasible solution (the paper seeds each cycle's
//!   solve with the previous cycle's schedule),
//! - a diving primal heuristic to find incumbents early.
//!
//! The LP relaxations are solved with a two-phase primal simplex that handles
//! variable bounds natively (nonbasic variables rest at either bound and may
//! "bound flip"), so the thousands of binary variables produced by STRL
//! compilation do not add constraint rows. Integer feasibility is obtained by
//! best-first branch-and-bound with most-fractional branching.
//!
//! # Examples
//!
//! ```
//! use tetrisched_milp::{Model, SolverConfig, VarKind, Sense};
//!
//! // Maximize 3x + 2y  s.t.  x + y <= 4, x + 3y <= 6, x,y >= 0 integer.
//! let mut m = Model::maximize();
//! let x = m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 3.0);
//! let y = m.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 2.0);
//! m.add_constraint("c1", [(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
//! m.add_constraint("c2", [(x, 1.0), (y, 3.0)], Sense::Le, 6.0);
//! let sol = m.solve(&SolverConfig::default()).unwrap();
//! assert_eq!(sol.value(x).round() as i64, 4);
//! assert_eq!(sol.value(y).round() as i64, 0);
//! assert!((sol.objective - 12.0).abs() < 1e-6);
//! ```

pub mod backend;
pub mod branch_bound;
pub mod certify;
pub mod config;
pub mod error;
pub mod heuristics;
pub mod kernels;
pub mod lint;
pub mod model;
pub mod presolve;
pub mod simplex;
pub mod status;

pub use backend::{ExactBackend, HeuristicBackend, MilpBackend};
pub use branch_bound::BranchBound;
pub use certify::{
    certify_solution, check_solution, dual_bound, verify_farkas, verify_ray, CertifyReport,
    IncumbentSource, SolveAudit, SolveProof,
};
pub use config::SolverConfig;
pub use error::{MilpError, Result};
pub use lint::{
    debug_precheck, lint_model, propagate_bounds, CertTerm, Certificate, Diagnostic, Propagation,
    Severity,
};
pub use model::{ConstraintId, LinExpr, Model, Sense, VarId, VarKind};
pub use presolve::{presolve, PresolveOutcome};
pub use simplex::{LpOutcome, Simplex};
pub use status::{Solution, SolveStatus, SolverStats};
