//! Error types for the MILP solver.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MilpError>;

/// Errors produced while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpError {
    /// A variable id referenced a variable that does not exist in the model.
    UnknownVariable(usize),
    /// A variable was declared with a lower bound above its upper bound.
    InvalidBounds {
        /// Variable name.
        name: String,
        /// Declared lower bound.
        lb: f64,
        /// Declared upper bound.
        ub: f64,
    },
    /// A coefficient or right-hand side was NaN or infinite.
    NonFiniteCoefficient {
        /// Where the bad value appeared.
        context: String,
    },
    /// The simplex iteration limit was exceeded (numerical trouble).
    IterationLimit {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A warm-start vector had the wrong length.
    WarmStartLength {
        /// Expected number of variables.
        expected: usize,
        /// Provided vector length.
        got: usize,
    },
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::UnknownVariable(ix) => write!(f, "unknown variable id {ix}"),
            MilpError::InvalidBounds { name, lb, ub } => {
                write!(f, "variable `{name}` has invalid bounds [{lb}, {ub}]")
            }
            MilpError::NonFiniteCoefficient { context } => {
                write!(f, "non-finite coefficient in {context}")
            }
            MilpError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit exceeded after {iterations} iterations"
                )
            }
            MilpError::WarmStartLength { expected, got } => {
                write!(
                    f,
                    "warm start has {got} values, model has {expected} variables"
                )
            }
        }
    }
}

impl std::error::Error for MilpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MilpError::InvalidBounds {
            name: "x".into(),
            lb: 2.0,
            ub: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains('x') && s.contains('2') && s.contains('1'));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MilpError::UnknownVariable(3));
    }
}
