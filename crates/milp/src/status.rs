//! Solve outcomes: status, solution, and statistics.

use crate::model::VarId;

/// Final status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal within the configured gap tolerance.
    Optimal,
    /// A feasible incumbent was found, but a limit (time/node) stopped the
    /// proof of optimality.
    Feasible,
    /// The model has no feasible assignment.
    Infeasible,
    /// The relaxation (and hence the model) is unbounded above.
    Unbounded,
    /// A limit was hit before any feasible solution was found.
    NoSolutionFound,
}

impl SolveStatus {
    /// Whether a usable assignment is attached to the solution.
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

/// Counters describing the work a solve performed.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Branch-and-bound nodes pruned without an LP solve being useful:
    /// infeasible children plus nodes cut off by the incumbent bound.
    pub nodes_pruned: usize,
    /// Total simplex iterations across all LP solves.
    pub lp_iterations: usize,
    /// Basis refactorizations performed across all LP solves.
    pub refactorizations: usize,
    /// Number of LP relaxations solved.
    pub lp_solves: usize,
    /// Constraint rows removed by presolve before the solve proper.
    pub presolve_rows_dropped: usize,
    /// Variable bounds tightened by presolve before the solve proper.
    pub presolve_bounds_tightened: usize,
    /// Wall-clock time of the solve in seconds.
    pub wall_secs: f64,
    /// Best dual (upper) bound proven.
    pub best_bound: f64,
    /// Relative gap at termination.
    pub final_gap: f64,
    /// Whether the incumbent came from the warm start.
    pub warm_start_used: bool,
    /// Whether an `Infeasible` status was established by presolve's bound
    /// propagation with a machine-checkable certificate (no simplex run).
    pub presolve_certified: bool,
    /// Certificate checks that passed when the solve ran with
    /// [`crate::SolverConfig::audit`] (see [`crate::certify`]).
    pub certificates_verified: usize,
    /// Certificate checks that failed under audit (always 0 for a sound
    /// solver; any nonzero value is a bug surfaced to the caller).
    pub certificate_failures: usize,
}

/// Result of solving a [`crate::Model`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Termination status.
    pub status: SolveStatus,
    /// Objective value of the assignment (meaningful when
    /// `status.has_solution()`).
    pub objective: f64,
    /// Dense variable assignment in column order (empty when no solution).
    pub values: Vec<f64>,
    /// Work counters.
    pub stats: SolverStats,
    /// Proof-carrying audit log, attached when the solve ran with
    /// [`crate::SolverConfig::audit`]; replayable by
    /// [`crate::certify::certify_solution`]. Boxed: most solves do not
    /// carry one and `Solution` stays cheap to move.
    pub audit: Option<Box<crate::certify::SolveAudit>>,
}

impl Solution {
    /// Builds an empty solution carrying only a status.
    pub fn empty(status: SolveStatus) -> Self {
        Self {
            status,
            objective: f64::NEG_INFINITY,
            values: Vec::new(),
            stats: SolverStats::default(),
            audit: None,
        }
    }

    /// Value of a variable in the assignment.
    ///
    /// # Panics
    ///
    /// Panics if the solution carries no assignment.
    // srclint: checked-indexing: documented panic contract — callers gate
    // on status.has_solution(), and VarIds index the solved model's
    // num_vars-length assignment.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Value of a binary/integer variable rounded to the nearest integer.
    pub fn int_value(&self, var: VarId) -> i64 {
        self.value(var).round() as i64
    }

    /// Whether a binary indicator is set in the assignment.
    pub fn is_set(&self, var: VarId) -> bool {
        self.value(var) > 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_has_solution() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::Unbounded.has_solution());
        assert!(!SolveStatus::NoSolutionFound.has_solution());
    }

    #[test]
    fn accessors_round_and_test() {
        let sol = Solution {
            status: SolveStatus::Optimal,
            objective: 3.0,
            values: vec![0.9999999, 0.2, 2.0000001],
            stats: SolverStats::default(),
            audit: None,
        };
        assert!(sol.is_set(VarId(0)));
        assert!(!sol.is_set(VarId(1)));
        assert_eq!(sol.int_value(VarId(2)), 2);
    }
}
