//! Fixed-order float reduction kernels: the solver's only sanctioned home
//! for float accumulation and float equality.
//!
//! Same-seed byte-identity is the workspace's core quality contract, and
//! float arithmetic is where it quietly dies: `(a + b) + c != a + (b + c)`
//! in general, so any reduction whose order is not pinned — an iterator
//! chain today, a parallel shard-merge tomorrow — can change the objective
//! value, the pivot choice, and ultimately the placement. `srclint` code
//! `L009` therefore forbids `f64`/`f32` `==`/`!=` and iterator
//! `sum`/`product`/`fold` reductions throughout the solver crates
//! (`milp`, `core`, `cluster`) **except in this file**. Everything here
//! reduces left-to-right, sequentially, in the caller's iteration order;
//! callers are responsible for iterating a deterministically-ordered
//! container (which `L004` guarantees by banning hash maps in these
//! crates).
//!
//! When the decomposed parallel solver lands (ROADMAP item 1), its
//! shard-merge code must funnel every cross-shard reduction through these
//! kernels in shard-index order. Worker *completion* order may then vary
//! freely without perturbing a single output bit.

/// Left-to-right sequential sum. The reduction order is the iterator
/// order, always — never a tree, never completion order.
#[inline]
pub fn fixed_sum(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}

/// Left-to-right sequential dot product `Σ aᵢ·xᵢ`, one fused
/// multiply-accumulate per term in iterator order.
#[inline]
pub fn fixed_dot(pairs: impl IntoIterator<Item = (f64, f64)>) -> f64 {
    let mut acc = 0.0;
    for (a, x) in pairs {
        acc += a * x;
    }
    acc
}

/// Left-to-right maximum with `-∞` identity. `max` is order-insensitive
/// for totally-ordered inputs, but routing it through the kernel keeps
/// the audit surface single and makes the NaN policy explicit: NaN
/// inputs are skipped (they never poison the reduction).
#[inline]
pub fn fixed_max(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = f64::NEG_INFINITY;
    for x in xs {
        if x > acc {
            acc = x;
        }
    }
    acc
}

/// Exact-bit zero test for sparsity decisions.
///
/// This is deliberately `== 0.0`, not a tolerance: sparsity structure
/// (which coefficients exist, which eta-file entries apply) must match
/// the bits actually stored, or skipped updates would desynchronize the
/// factorization from the matrix. Tolerance belongs in *feasibility*
/// comparisons (`FEAS_TOL` in the simplex), never in structure tests.
#[inline]
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

/// Exact-bit nonzero test; see [`is_zero`] for why this is not a
/// tolerance check.
#[inline]
pub fn is_nonzero(x: f64) -> bool {
    x != 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_sum_is_left_to_right() {
        // A catastrophic-cancellation probe: left-to-right gives a
        // specific, reproducible answer (which is the point — not that
        // the answer is the mathematically best one).
        let xs = [1e16, 1.0, -1e16];
        assert_eq!(fixed_sum(xs), 0.0);
        let ys = [1e16, -1e16, 1.0];
        assert_eq!(fixed_sum(ys), 1.0);
    }

    #[test]
    fn fixed_dot_matches_manual_loop() {
        let pairs = [(2.0, 3.0), (0.5, 8.0), (-1.0, 4.0)];
        assert_eq!(fixed_dot(pairs), 2.0 * 3.0 + 0.5 * 8.0 - 4.0);
    }

    #[test]
    fn fixed_max_skips_nan_and_has_neg_inf_identity() {
        assert_eq!(fixed_max([]), f64::NEG_INFINITY);
        assert_eq!(fixed_max([f64::NAN, 2.0, 1.0]), 2.0);
        assert_eq!(fixed_max([f64::NAN]), f64::NEG_INFINITY);
    }

    #[test]
    fn zero_tests_are_exact_bit() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(is_nonzero(1e-300));
        // NaN != 0.0 is true: NaN counts as nonzero (it is certainly not
        // a structural zero to be skipped).
        assert!(is_nonzero(f64::NAN));
    }
}
