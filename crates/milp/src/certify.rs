//! Proof-carrying solves: independently checkable certificates for every
//! solver outcome.
//!
//! The solver is the least auditable component in the scheduling pipeline:
//! a wrong incumbent, a wrong "infeasible", or an inflated bound silently
//! becomes a wrong placement decision. This module closes that gap in the
//! spirit of translation validation — instead of trusting simplex and
//! branch-and-bound, every [`Solution`] can carry a [`SolveAudit`] whose
//! claims are re-verified here from the model alone:
//!
//! - [`check_solution`] re-checks primal feasibility of every row,
//!   integrality of integer variables, and the claimed objective value,
//!   independent of simplex internals (`C001` on failure),
//! - LP-optimal nodes ship their final row duals; [`certify_solution`]
//!   re-derives reduced costs, checks dual feasibility, and confirms the
//!   strong-duality bound, then replays the branch-and-bound audit tree
//!   (branch coverage, prune justifications, bound monotonicity, gap
//!   claims) and checks complementary slackness at the incumbent's node
//!   (`C002` on failure),
//! - infeasible and unbounded claims are backed by Farkas duals,
//!   bound-propagation certificates (the PR 3 machinery), or an improving
//!   ray, completing the Farkas trio (`C003` on failure).
//!
//! Verification never consults tableau state: every check is arithmetic
//! over the original [`Model`] (or the audited presolved model) and the
//! shipped certificate data.

use crate::kernels::{fixed_dot, fixed_max, is_nonzero};
use crate::lint::{propagate_bounds, Certificate, Diagnostic, Severity, PROPAGATION_PASSES};
use crate::model::{Model, Sense, VarKind};
use crate::status::{Solution, SolveStatus};

/// Tolerance for primal feasibility / objective reproduction checks.
pub const PRIMAL_TOL: f64 = 1e-6;
/// Tolerance for dual sign conditions and reduced-cost classification.
pub const DUAL_TOL: f64 = 1e-5;
/// Tolerance for complementary-slackness checks (looser: the incumbent is
/// the *snapped* LP point, so activities moved by up to the snap distance).
const CS_TOL: f64 = 1e-4;
/// Tolerance below which a ray component counts as zero.
const RAY_TOL: f64 = 1e-7;

/// Scale-aware tolerance: `tol * (1 + |reference|)`.
fn scaled(tol: f64, reference: f64) -> f64 {
    tol * (1.0 + reference.abs())
}

/// Why a (sub)problem was claimed infeasible.
#[derive(Debug, Clone)]
pub enum InfeasibilityProof {
    /// Farkas dual vector `y` (one entry per row): under the sign
    /// conditions, `min over the box of (yᵀA)x > yᵀb`, so no feasible
    /// point exists.
    Farkas {
        /// Row multipliers.
        y: Vec<f64>,
    },
    /// A PR 3 bound-propagation certificate over the bounded model.
    Propagation {
        /// Machine-checkable refutation.
        certificate: Certificate,
    },
}

/// Dual certificate for one LP-optimal relaxation.
#[derive(Debug, Clone)]
pub struct LpCertificate {
    /// Claimed LP objective, *including* the model's objective offset.
    pub objective: f64,
    /// Row dual values at the optimum.
    pub duals: Vec<f64>,
}

/// What happened to one branch-and-bound node.
#[derive(Debug, Clone)]
pub enum NodeStatus {
    /// Pushed but never processed (left on the frontier at termination).
    Open,
    /// LP solved; branched on `var` at `floor`/`floor + 1`.
    Branched {
        /// Branching variable (column index).
        var: usize,
        /// Floor of the fractional relaxation value.
        floor: f64,
    },
    /// Node relaxation was infeasible.
    PrunedInfeasible {
        /// Refutation of the node's bounded relaxation (`None` when no
        /// proof could be produced — a certification failure).
        proof: Option<InfeasibilityProof>,
    },
    /// LP bound could not beat the incumbent (within the gap slack).
    PrunedByBound {
        /// Incumbent objective the prune was justified against.
        incumbent: f64,
    },
    /// The relaxation was integral: a candidate incumbent.
    IntegerFeasible {
        /// Objective of the snapped integral point.
        objective: f64,
    },
}

/// One node of the branch-and-bound audit log.
#[derive(Debug, Clone)]
pub struct AuditNode {
    /// Index of the parent node (`None` for the root).
    pub parent: Option<usize>,
    /// Cumulative bound patches `(var, lb, ub)` from the root.
    pub patches: Vec<(usize, f64, f64)>,
    /// Optimistic bound inherited from the parent relaxation (with offset).
    pub bound: f64,
    /// Outcome of processing the node.
    pub status: NodeStatus,
    /// Dual certificate, when the node's LP solved to optimality.
    pub lp: Option<LpCertificate>,
}

/// Where the returned incumbent came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncumbentSource {
    /// No incumbent was returned.
    None,
    /// The caller-provided warm start survived as the best point.
    WarmStart,
    /// The root diving heuristic produced it.
    Dive,
    /// An integral branch-and-bound node (index into the audit log).
    Node(usize),
}

/// The top-level claim the audit backs.
#[derive(Debug, Clone)]
pub enum SolveProof {
    /// The audit tree justifies the status/bound/gap claims.
    Tree,
    /// Presolve refuted the model before any LP ran.
    PresolveInfeasible {
        /// Bound-propagation certificate against the *original* model.
        certificate: Option<Certificate>,
    },
    /// The root relaxation was infeasible.
    RootInfeasible {
        /// Refutation under the root bounds.
        proof: Option<InfeasibilityProof>,
    },
    /// A relaxation was unbounded, hence so is the model.
    UnboundedRay {
        /// Bound patches active when the ray was found (empty at the root).
        patches: Vec<(usize, f64, f64)>,
        /// Improving feasible ray over the structural variables.
        ray: Option<Vec<f64>>,
    },
    /// Heuristic backend: only the root dual bound and the primal point
    /// are claimed (no optimality).
    HeuristicBound,
}

/// Audit log emitted by a solve when [`crate::SolverConfig::audit`] is set.
///
/// `solved_model` is the model the search actually ran on (post-presolve;
/// same variable indexing as the original), so node-level duals and bound
/// patches replay against the exact rows the solver saw, while the primal
/// check always runs against the original model.
#[derive(Debug, Clone)]
pub struct SolveAudit {
    /// The (presolved) model the tree searched.
    pub solved_model: Model,
    /// Relative gap the solve was configured with.
    pub rel_gap: f64,
    /// Whether a time/node limit interrupted the search.
    pub limit_hit: bool,
    /// The branch-and-bound node log (node 0 is the root).
    pub nodes: Vec<AuditNode>,
    /// Provenance of the returned incumbent.
    pub incumbent_source: IncumbentSource,
    /// The claim the log backs.
    pub proof: SolveProof,
}

/// Outcome of certifying one solution.
#[derive(Debug, Clone, Default)]
pub struct CertifyReport {
    /// Number of certificate checks that passed.
    pub verified: usize,
    /// Failures, as renderable diagnostics (`C001`–`C003`).
    pub diagnostics: Vec<Diagnostic>,
}

impl CertifyReport {
    /// Whether every attempted check passed.
    pub fn passed(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Re-verifies the primal claims of a solution against `model`,
/// independent of solver internals: assignment length, variable bounds,
/// integrality, every constraint row, and the claimed objective value.
///
/// Statuses without an assignment have no primal claim and pass trivially.
// srclint: checked-indexing: x.len() == num_vars is checked at entry, and
// every constraint term's VarId indexes a model variable by construction.
pub fn check_solution(model: &Model, sol: &Solution) -> Result<(), String> {
    if !sol.status.has_solution() {
        return Ok(());
    }
    let x = &sol.values;
    if x.len() != model.num_vars() {
        return Err(format!(
            "assignment has {} values, model has {} variables",
            x.len(),
            model.num_vars()
        ));
    }
    for (j, (v, &xj)) in model.vars().iter().zip(x.iter()).enumerate() {
        if !xj.is_finite() {
            return Err(format!("column {j} (`{}`) is not finite: {xj}", v.name));
        }
        if xj < v.lb - PRIMAL_TOL || xj > v.ub + PRIMAL_TOL {
            return Err(format!(
                "column {j} (`{}`) = {xj} violates bounds [{}, {}]",
                v.name, v.lb, v.ub
            ));
        }
        if v.kind != VarKind::Continuous && (xj - xj.round()).abs() > PRIMAL_TOL {
            return Err(format!(
                "integer column {j} (`{}`) has fractional value {xj}",
                v.name
            ));
        }
    }
    for (i, c) in model.constraints().iter().enumerate() {
        let lhs = fixed_dot(c.terms.iter().map(|&(v, a)| (a, x[v.index()])));
        let tol = scaled(PRIMAL_TOL, c.rhs);
        let ok = match c.sense {
            Sense::Le => lhs <= c.rhs + tol,
            Sense::Ge => lhs >= c.rhs - tol,
            Sense::Eq => (lhs - c.rhs).abs() <= tol,
        };
        if !ok {
            return Err(format!(
                "row {i} (`{}`): activity {lhs} violates {:?} {}",
                c.name, c.sense, c.rhs
            ));
        }
    }
    let obj = model.objective_value(x);
    if (obj - sol.objective).abs() > scaled(PRIMAL_TOL, sol.objective) {
        return Err(format!(
            "claimed objective {} does not reproduce (recomputed {obj})",
            sol.objective
        ));
    }
    Ok(())
}

/// Checks dual feasibility of `y` for the (maximization) model under the
/// given bounds and returns the certified dual upper bound
/// `yᵀb + Σ_j max over [lb_j, ub_j] of d_j x_j` where `d = c - yᵀA`.
// srclint: checked-indexing: y.len() is checked against num_constraints at
// entry; yta/lb/ub are per-variable vectors the callers build from
// model.vars(), indexed by VarId / 0..num_vars.
pub fn dual_bound(model: &Model, lb: &[f64], ub: &[f64], y: &[f64]) -> Result<f64, String> {
    if y.len() != model.num_constraints() {
        return Err(format!(
            "dual vector has {} entries, model has {} rows",
            y.len(),
            model.num_constraints()
        ));
    }
    let mut yta = vec![0.0; model.num_vars()];
    let mut ytb = 0.0;
    for (i, c) in model.constraints().iter().enumerate() {
        let yi = y[i];
        match c.sense {
            Sense::Le if yi < -DUAL_TOL => {
                return Err(format!("row {i} (<=) has negative dual {yi}"));
            }
            Sense::Ge if yi > DUAL_TOL => {
                return Err(format!("row {i} (>=) has positive dual {yi}"));
            }
            _ => {}
        }
        if is_nonzero(yi) {
            for &(v, a) in &c.terms {
                yta[v.index()] += yi * a;
            }
            ytb += yi * c.rhs;
        }
    }
    let mut bound = ytb;
    for (j, v) in model.vars().iter().enumerate() {
        let d = v.obj - yta[j];
        if d > DUAL_TOL {
            if !ub[j].is_finite() {
                return Err(format!(
                    "column {j} has positive reduced cost {d} with infinite upper bound"
                ));
            }
            bound += d * ub[j];
        } else if d < -DUAL_TOL {
            if !lb[j].is_finite() {
                return Err(format!(
                    "column {j} has negative reduced cost {d} with infinite lower bound"
                ));
            }
            bound += d * lb[j];
        } else {
            // Numerically zero reduced cost: the exact max contribution over
            // the finite endpoints (the drift is O(|d| * bound), negligible).
            let contrib = fixed_max(
                [lb[j], ub[j]]
                    .into_iter()
                    .filter(|b| b.is_finite())
                    .map(|b| d * b),
            );
            if contrib.is_finite() {
                bound += contrib;
            }
        }
    }
    Ok(bound)
}

/// Verifies a Farkas infeasibility certificate: under the dual sign
/// conditions, the minimum of `(yᵀA)x` over the variable box must strictly
/// exceed `yᵀb`, so no point in the box satisfies all rows.
// srclint: checked-indexing: y.len() is checked against num_constraints at
// entry; w/lb/ub are per-variable vectors indexed by VarId / 0..num_vars.
pub fn verify_farkas(model: &Model, lb: &[f64], ub: &[f64], y: &[f64]) -> Result<(), String> {
    if y.len() != model.num_constraints() {
        return Err(format!(
            "Farkas vector has {} entries, model has {} rows",
            y.len(),
            model.num_constraints()
        ));
    }
    let mut w = vec![0.0; model.num_vars()];
    let mut ytb = 0.0;
    for (i, c) in model.constraints().iter().enumerate() {
        let yi = y[i];
        match c.sense {
            Sense::Le if yi < -DUAL_TOL => {
                return Err(format!("row {i} (<=) has negative multiplier {yi}"));
            }
            Sense::Ge if yi > DUAL_TOL => {
                return Err(format!("row {i} (>=) has positive multiplier {yi}"));
            }
            _ => {}
        }
        if is_nonzero(yi) {
            for &(v, a) in &c.terms {
                w[v.index()] += yi * a;
            }
            ytb += yi * c.rhs;
        }
    }
    let mut min_activity = 0.0;
    for (j, &wj) in w.iter().enumerate() {
        if wj > RAY_TOL {
            if !lb[j].is_finite() {
                return Err(format!(
                    "column {j}: positive combined coefficient {wj} with infinite lower bound"
                ));
            }
            min_activity += wj * lb[j];
        } else if wj < -RAY_TOL {
            if !ub[j].is_finite() {
                return Err(format!(
                    "column {j}: negative combined coefficient {wj} with infinite upper bound"
                ));
            }
            min_activity += wj * ub[j];
        }
    }
    if min_activity > ytb + scaled(1e-9, ytb) {
        Ok(())
    } else {
        Err(format!(
            "combination does not refute: min activity {min_activity} vs rhs {ytb}"
        ))
    }
}

/// Verifies an unboundedness ray: every component growing toward an
/// infinite bound, every row's activity moving in a feasible direction,
/// and a strictly positive objective rate.
// srclint: checked-indexing: ray.len() is checked against num_vars at
// entry; lb/ub are per-variable vectors from the same callers.
pub fn verify_ray(model: &Model, lb: &[f64], ub: &[f64], ray: &[f64]) -> Result<(), String> {
    if ray.len() != model.num_vars() {
        return Err(format!(
            "ray has {} entries, model has {} variables",
            ray.len(),
            model.num_vars()
        ));
    }
    for (j, &r) in ray.iter().enumerate() {
        if r > RAY_TOL && ub[j].is_finite() {
            return Err(format!(
                "column {j} grows (+{r}) against finite upper bound"
            ));
        }
        if r < -RAY_TOL && lb[j].is_finite() {
            return Err(format!(
                "column {j} shrinks ({r}) against finite lower bound"
            ));
        }
    }
    for (i, c) in model.constraints().iter().enumerate() {
        let mut rate = 0.0;
        let mut mag = 0.0;
        for &(v, a) in &c.terms {
            rate += a * ray[v.index()];
            mag += (a * ray[v.index()]).abs();
        }
        let tol = scaled(RAY_TOL, mag);
        let ok = match c.sense {
            Sense::Le => rate <= tol,
            Sense::Ge => rate >= -tol,
            Sense::Eq => rate.abs() <= tol,
        };
        if !ok {
            return Err(format!(
                "row {i} (`{}`): activity rate {rate} leaves the feasible side",
                c.name
            ));
        }
    }
    let growth = fixed_dot(model.vars().iter().zip(ray).map(|(v, &r)| (v.obj, r)));
    if growth > RAY_TOL {
        Ok(())
    } else {
        Err(format!("objective rate {growth} is not positive"))
    }
}

/// Clones `model` with the given bound overrides installed.
// srclint: checked-indexing: lb/ub are per-variable vectors of length
// num_vars at every call site (base_bounds / node_bounds products).
pub fn bounded_model(model: &Model, lb: &[f64], ub: &[f64]) -> Model {
    let mut m = model.clone();
    for j in 0..m.num_vars() {
        m.set_bounds(crate::model::VarId(j), lb[j], ub[j]);
    }
    m
}

/// Verifies an [`InfeasibilityProof`] against the bounded model.
pub fn verify_infeasibility_proof(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    proof: &InfeasibilityProof,
) -> Result<(), String> {
    match proof {
        InfeasibilityProof::Farkas { y } => verify_farkas(model, lb, ub, y),
        InfeasibilityProof::Propagation { certificate } => {
            certificate.verify(&bounded_model(model, lb, ub))
        }
    }
}

/// Mints an [`InfeasibilityProof`] for a bounded relaxation the LP reported
/// infeasible: the simplex Farkas candidate if it verifies, else a
/// bound-propagation certificate (PR 3 machinery), else `None`.
pub fn mint_infeasibility_proof(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    farkas: Option<Vec<f64>>,
) -> Option<InfeasibilityProof> {
    if let Some(y) = farkas {
        if verify_farkas(model, lb, ub, &y).is_ok() {
            return Some(InfeasibilityProof::Farkas { y });
        }
    }
    let bounded = bounded_model(model, lb, ub);
    propagate_bounds(&bounded, PROPAGATION_PASSES)
        .certificates
        .into_iter()
        .next()
        .map(|certificate| InfeasibilityProof::Propagation { certificate })
}

/// Base (integer-rounded) bounds of a model, as branch-and-bound sees them.
// srclint: checked-indexing: lb/ub are allocated to num_vars and indexed
// by the enumeration over model.vars() of the same length.
fn base_bounds(model: &Model) -> (Vec<f64>, Vec<f64>) {
    let n = model.num_vars();
    let mut lb = vec![0.0; n];
    let mut ub = vec![0.0; n];
    for (j, v) in model.vars().iter().enumerate() {
        let (mut lo, mut hi) = (v.lb, v.ub);
        if v.kind != VarKind::Continuous {
            if lo.is_finite() {
                lo = lo.ceil();
            }
            if hi.is_finite() {
                hi = hi.floor();
            }
        }
        lb[j] = lo;
        ub[j] = hi;
    }
    (lb, ub)
}

/// Materializes a node's bounds from the base bounds plus its patches.
// srclint: checked-indexing: patch indices are range-checked against
// lb.len() right before use; an out-of-range patch returns Err.
fn node_bounds(
    base_lb: &[f64],
    base_ub: &[f64],
    patches: &[(usize, f64, f64)],
) -> Result<(Vec<f64>, Vec<f64>), String> {
    let mut lb = base_lb.to_vec();
    let mut ub = base_ub.to_vec();
    for &(j, lo, hi) in patches {
        if j >= lb.len() {
            return Err(format!("patch variable {j} out of range"));
        }
        lb[j] = lo;
        ub[j] = hi;
    }
    Ok((lb, ub))
}

fn c002(message: String, context: String) -> Diagnostic {
    Diagnostic::new("C002", Severity::Error, message, context)
}

fn c003(message: String, context: String) -> Diagnostic {
    Diagnostic::new("C003", Severity::Error, message, context)
}

/// Complementary slackness of the incumbent against its node's duals:
/// active duals imply tight rows, decisive reduced costs imply the
/// variable rests at the matching bound.
// srclint: checked-indexing: duals has one entry per constraint and
// yta/lb/ub/x one per variable; the caller (certify_tree) validates both
// lengths before invoking this check.
fn check_complementary_slackness(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    duals: &[f64],
    x: &[f64],
) -> Result<(), String> {
    let mut yta = vec![0.0; model.num_vars()];
    for (i, c) in model.constraints().iter().enumerate() {
        let yi = duals[i];
        if is_nonzero(yi) {
            for &(v, a) in &c.terms {
                yta[v.index()] += yi * a;
            }
        }
        if matches!(c.sense, Sense::Eq) {
            continue;
        }
        if yi.abs() > CS_TOL {
            let lhs = fixed_dot(c.terms.iter().map(|&(v, a)| (a, x[v.index()])));
            if (lhs - c.rhs).abs() > scaled(CS_TOL, c.rhs) {
                return Err(format!(
                    "row {i} (`{}`) has dual {yi} but slack {}",
                    c.name,
                    c.rhs - lhs
                ));
            }
        }
    }
    for (j, v) in model.vars().iter().enumerate() {
        let d = v.obj - yta[j];
        if d > CS_TOL && ub[j].is_finite() && x[j] < ub[j] - CS_TOL {
            return Err(format!(
                "column {j} (`{}`): reduced cost {d} but value {} below upper bound {}",
                v.name, x[j], ub[j]
            ));
        }
        if d < -CS_TOL && lb[j].is_finite() && x[j] > lb[j] + CS_TOL {
            return Err(format!(
                "column {j} (`{}`): reduced cost {d} but value {} above lower bound {}",
                v.name, x[j], lb[j]
            ));
        }
    }
    Ok(())
}

/// Replays a branch-and-bound audit tree and validates every claim in it.
// srclint: checked-indexing: node/parent indices are range-checked against
// nodes.len() as the tree is walked (out-of-range indices become C002
// diagnostics, not accesses); per-variable vectors come from base_bounds.
fn certify_tree(sol: &Solution, audit: &SolveAudit, diags: &mut Vec<Diagnostic>) {
    let m = &audit.solved_model;
    let (base_lb, base_ub) = base_bounds(m);
    let nodes = &audit.nodes;
    if nodes.is_empty() {
        diags.push(c002("audit tree has no nodes".into(), "solve audit".into()));
        return;
    }
    if nodes[0].parent.is_some() || !nodes[0].patches.is_empty() {
        diags.push(c002(
            "audit root must have no parent and no patches".into(),
            "solve audit node 0".into(),
        ));
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (ix, n) in nodes.iter().enumerate() {
        if let Some(p) = n.parent {
            if p >= nodes.len() {
                diags.push(c002(
                    format!("parent index {p} out of range"),
                    format!("solve audit node {ix}"),
                ));
            } else {
                children[p].push(ix);
            }
        }
    }

    let inc_obj = sol.status.has_solution().then_some(sol.objective);
    for (ix, n) in nodes.iter().enumerate() {
        let ctx = format!("solve audit node {ix}");
        let (lb, ub) = match node_bounds(&base_lb, &base_ub, &n.patches) {
            Ok(b) => b,
            Err(e) => {
                diags.push(c002(e, ctx));
                continue;
            }
        };
        if let Some(lp) = &n.lp {
            match dual_bound(m, &lb, &ub, &lp.duals) {
                Ok(u) => {
                    let u = u + m.objective_offset;
                    if (u - lp.objective).abs() > scaled(DUAL_TOL, lp.objective) {
                        diags.push(c002(
                            format!(
                                "dual bound {u} does not certify claimed LP objective {}",
                                lp.objective
                            ),
                            ctx.clone(),
                        ));
                    }
                }
                Err(e) => diags.push(c002(format!("dual certificate rejected: {e}"), ctx.clone())),
            }
            if lp.objective > n.bound + scaled(DUAL_TOL, n.bound) {
                diags.push(c002(
                    format!(
                        "LP objective {} exceeds inherited bound {}",
                        lp.objective, n.bound
                    ),
                    ctx.clone(),
                ));
            }
        }
        match &n.status {
            NodeStatus::Open => {}
            NodeStatus::Branched { var, floor } => {
                let Some(lp) = &n.lp else {
                    diags.push(c002("branched node carries no LP certificate".into(), ctx));
                    continue;
                };
                if *var >= m.num_vars() || m.vars()[*var].kind == VarKind::Continuous {
                    diags.push(c002(
                        format!("branching variable {var} is not integer-constrained"),
                        ctx.clone(),
                    ));
                    continue;
                }
                let down = (*var, lb[*var], floor.min(ub[*var]));
                let up = (*var, (floor + 1.0).max(lb[*var]), ub[*var]);
                let mut expect = vec![down, up];
                if children[ix].len() != 2 {
                    diags.push(c002(
                        format!(
                            "branched node has {} recorded children, expected 2",
                            children[ix].len()
                        ),
                        ctx.clone(),
                    ));
                    continue;
                }
                for &cix in &children[ix] {
                    let child = &nodes[cix];
                    let Some(&last) = child.patches.last() else {
                        diags.push(c002(
                            format!("child {cix} has no branching patch"),
                            ctx.clone(),
                        ));
                        continue;
                    };
                    if child.patches[..child.patches.len() - 1] != n.patches[..] {
                        diags.push(c002(
                            format!("child {cix} does not extend this node's patches"),
                            ctx.clone(),
                        ));
                    }
                    match expect.iter().position(|&(j, lo, hi)| {
                        j == last.0 && (lo - last.1).abs() <= 1e-9 && (hi - last.2).abs() <= 1e-9
                    }) {
                        Some(k) => {
                            expect.remove(k);
                        }
                        None => diags.push(c002(
                            format!("child {cix} patch {last:?} does not match the branch"),
                            ctx.clone(),
                        )),
                    }
                    if (child.bound - lp.objective).abs() > scaled(1e-9, lp.objective) {
                        diags.push(c002(
                            format!(
                                "child {cix} bound {} is not the parent LP objective {}",
                                child.bound, lp.objective
                            ),
                            ctx.clone(),
                        ));
                    }
                }
                if !expect.is_empty() {
                    diags.push(c002(
                        format!("children do not cover the branched domain: missing {expect:?}"),
                        ctx.clone(),
                    ));
                }
            }
            NodeStatus::PrunedInfeasible { proof } => match proof {
                None => diags.push(c003(
                    "infeasible node carries no refutation".into(),
                    ctx.clone(),
                )),
                Some(p) => {
                    if let Err(e) = verify_infeasibility_proof(m, &lb, &ub, p) {
                        diags.push(c003(format!("node refutation rejected: {e}"), ctx.clone()));
                    }
                }
            },
            NodeStatus::PrunedByBound { incumbent } => {
                let Some(lp) = &n.lp else {
                    diags.push(c002("pruned node carries no LP certificate".into(), ctx));
                    continue;
                };
                let slack = audit.rel_gap * incumbent.abs().max(1.0);
                if lp.objective > incumbent + slack + scaled(DUAL_TOL, *incumbent) {
                    diags.push(c002(
                        format!(
                            "prune not justified: LP objective {} beats incumbent {incumbent} \
                             beyond the gap slack",
                            lp.objective
                        ),
                        ctx.clone(),
                    ));
                }
                if let Some(best) = inc_obj {
                    if *incumbent > best + scaled(PRIMAL_TOL, best) {
                        diags.push(c002(
                            format!(
                                "prune incumbent {incumbent} exceeds the final objective {best}"
                            ),
                            ctx.clone(),
                        ));
                    }
                }
            }
            NodeStatus::IntegerFeasible { objective } => {
                if let Some(best) = inc_obj {
                    if *objective > best + scaled(PRIMAL_TOL, best) {
                        diags.push(c002(
                            format!(
                                "integral node objective {objective} exceeds the final \
                                 objective {best}"
                            ),
                            ctx.clone(),
                        ));
                    }
                }
            }
        }
    }

    // Incumbent provenance.
    match audit.incumbent_source {
        IncumbentSource::None => {
            if sol.status.has_solution() {
                diags.push(c002(
                    "solution returned but incumbent source is None".into(),
                    "solve audit".into(),
                ));
            }
        }
        IncumbentSource::WarmStart | IncumbentSource::Dive => {}
        IncumbentSource::Node(ix) => {
            let ok = nodes.get(ix).is_some_and(|n| {
                matches!(&n.status, NodeStatus::IntegerFeasible { objective }
                    if (objective - sol.objective).abs() <= scaled(PRIMAL_TOL, sol.objective))
            });
            if !ok {
                diags.push(c002(
                    format!("incumbent node {ix} is not an integral node at the final objective"),
                    "solve audit".into(),
                ));
            } else if let Some(n) = nodes.get(ix) {
                // Complementary slackness of the incumbent at its node.
                if let (Some(lp), Ok((lb, ub))) =
                    (&n.lp, node_bounds(&base_lb, &base_ub, &n.patches))
                {
                    if sol.values.len() == m.num_vars() {
                        if let Err(e) =
                            check_complementary_slackness(m, &lb, &ub, &lp.duals, &sol.values)
                        {
                            diags.push(c002(
                                format!("complementary slackness violated: {e}"),
                                format!("solve audit node {ix}"),
                            ));
                        }
                    }
                }
            }
        }
    }

    // Status-level claims over the frontier.
    let open_bounds = nodes
        .iter()
        .filter(|n| matches!(n.status, NodeStatus::Open))
        .map(|n| n.bound);
    match sol.status {
        SolveStatus::Optimal => {
            if let Some(best) = inc_obj {
                if sol.stats.best_bound < best - scaled(PRIMAL_TOL, best) {
                    diags.push(c002(
                        format!(
                            "claimed bound {} is below the incumbent {best}",
                            sol.stats.best_bound
                        ),
                        "solve audit".into(),
                    ));
                }
                let slack = audit.rel_gap * best.abs().max(1.0);
                for (k, b) in open_bounds.enumerate() {
                    if b > best + slack + scaled(DUAL_TOL, best) {
                        diags.push(c002(
                            format!(
                                "open node bound {b} contradicts the optimality claim \
                                 (incumbent {best}, gap {})",
                                audit.rel_gap
                            ),
                            format!("solve audit open node #{k}"),
                        ));
                        break;
                    }
                }
            }
        }
        SolveStatus::Feasible => {
            let best_bound = sol.stats.best_bound;
            if let Some(best) = inc_obj {
                if best_bound < best - scaled(PRIMAL_TOL, best) {
                    diags.push(c002(
                        format!("claimed bound {best_bound} is below the incumbent {best}"),
                        "solve audit".into(),
                    ));
                }
                let gap = ((best_bound - best) / best.abs().max(1.0)).max(0.0);
                if (gap - sol.stats.final_gap).abs() > 1e-6 {
                    diags.push(c002(
                        format!(
                            "claimed final gap {} does not reproduce ({gap})",
                            sol.stats.final_gap
                        ),
                        "solve audit".into(),
                    ));
                }
            }
            for b in open_bounds {
                if b > best_bound + scaled(DUAL_TOL, best_bound) {
                    diags.push(c002(
                        format!("open node bound {b} exceeds the claimed bound {best_bound}"),
                        "solve audit".into(),
                    ));
                    break;
                }
            }
        }
        SolveStatus::Infeasible => {
            if audit.limit_hit {
                diags.push(c002(
                    "infeasibility claimed although a limit interrupted the search".into(),
                    "solve audit".into(),
                ));
            }
            for (ix, n) in nodes.iter().enumerate() {
                if matches!(
                    n.status,
                    NodeStatus::Open | NodeStatus::IntegerFeasible { .. }
                ) {
                    diags.push(c002(
                        "infeasibility claimed with unexplored or integral nodes".into(),
                        format!("solve audit node {ix}"),
                    ));
                    break;
                }
            }
        }
        SolveStatus::NoSolutionFound => {
            if !audit.limit_hit {
                diags.push(c002(
                    "no-solution claimed without a limit interrupting the search".into(),
                    "solve audit".into(),
                ));
            }
        }
        SolveStatus::Unbounded => diags.push(c002(
            "tree proof cannot back an unboundedness claim".into(),
            "solve audit".into(),
        )),
    }
}

/// Certifies a solution against `model`: the primal check always runs;
/// when the solution carries a [`SolveAudit`], the audited claim (tree
/// replay, infeasibility refutation, or unbounded ray) is verified too.
pub fn certify_solution(model: &Model, sol: &Solution) -> CertifyReport {
    let mut report = CertifyReport::default();

    // Check 1: primal claims, against the ORIGINAL model.
    match check_solution(model, sol) {
        Ok(()) => report.verified += 1,
        Err(e) => report.diagnostics.push(Diagnostic::new(
            "C001",
            Severity::Error,
            e,
            "primal assignment",
        )),
    }

    // Check 2: the audited outcome claim.
    let Some(audit) = sol.audit.as_deref() else {
        return report;
    };
    let before = report.diagnostics.len();
    let m = &audit.solved_model;
    if m.num_vars() != model.num_vars() {
        report.diagnostics.push(c002(
            format!(
                "audited model has {} variables, original has {}",
                m.num_vars(),
                model.num_vars()
            ),
            "solve audit".into(),
        ));
    } else {
        if sol.status.has_solution() && !m.is_feasible(&sol.values, CS_TOL) {
            report.diagnostics.push(c002(
                "incumbent is not feasible in the audited (presolved) model".into(),
                "solve audit".into(),
            ));
        }
        match &audit.proof {
            SolveProof::Tree => certify_tree(sol, audit, &mut report.diagnostics),
            SolveProof::PresolveInfeasible { certificate } => {
                if sol.status != SolveStatus::Infeasible {
                    report.diagnostics.push(c003(
                        format!("presolve refutation attached to status {:?}", sol.status),
                        "solve audit".into(),
                    ));
                }
                match certificate {
                    None => report.diagnostics.push(c003(
                        "presolve claimed infeasibility without a certificate".into(),
                        "solve audit".into(),
                    )),
                    Some(cert) => {
                        if let Err(e) = cert.verify(model) {
                            report.diagnostics.push(c003(
                                format!("presolve certificate rejected: {e}"),
                                "solve audit".into(),
                            ));
                        }
                    }
                }
            }
            SolveProof::RootInfeasible { proof } => {
                if sol.status != SolveStatus::Infeasible {
                    report.diagnostics.push(c003(
                        format!("root refutation attached to status {:?}", sol.status),
                        "solve audit".into(),
                    ));
                }
                let (lb, ub) = base_bounds(m);
                match proof {
                    None => report.diagnostics.push(c003(
                        "root relaxation claimed infeasible without a refutation".into(),
                        "solve audit".into(),
                    )),
                    Some(p) => {
                        if let Err(e) = verify_infeasibility_proof(m, &lb, &ub, p) {
                            report.diagnostics.push(c003(
                                format!("root refutation rejected: {e}"),
                                "solve audit".into(),
                            ));
                        }
                    }
                }
            }
            SolveProof::UnboundedRay { patches, ray } => {
                if sol.status != SolveStatus::Unbounded {
                    report.diagnostics.push(c003(
                        format!("unbounded ray attached to status {:?}", sol.status),
                        "solve audit".into(),
                    ));
                }
                let (base_lb, base_ub) = base_bounds(m);
                match (ray, node_bounds(&base_lb, &base_ub, patches)) {
                    (None, _) => report.diagnostics.push(c003(
                        "unboundedness claimed without a ray".into(),
                        "solve audit".into(),
                    )),
                    (Some(r), Ok((lb, ub))) => {
                        if let Err(e) = verify_ray(m, &lb, &ub, r) {
                            report.diagnostics.push(c003(
                                format!("unbounded ray rejected: {e}"),
                                "solve audit".into(),
                            ));
                        }
                    }
                    (_, Err(e)) => report.diagnostics.push(c003(e, "solve audit".into())),
                }
            }
            SolveProof::HeuristicBound => {
                // Heuristics claim no optimality; only the root dual bound
                // is auditable when present. The heuristic backend relaxes
                // over the raw variable bounds (no integer pre-rounding),
                // so the replay must use the same box.
                let lb: Vec<f64> = m.vars().iter().map(|v| v.lb).collect();
                let ub: Vec<f64> = m.vars().iter().map(|v| v.ub).collect();
                for (ix, n) in audit.nodes.iter().enumerate() {
                    if let Some(lp) = &n.lp {
                        match dual_bound(m, &lb, &ub, &lp.duals) {
                            Ok(u) => {
                                let u = u + m.objective_offset;
                                if (u - lp.objective).abs() > scaled(DUAL_TOL, lp.objective) {
                                    report.diagnostics.push(c002(
                                        format!(
                                            "dual bound {u} does not certify root objective {}",
                                            lp.objective
                                        ),
                                        format!("solve audit node {ix}"),
                                    ));
                                }
                            }
                            Err(e) => report.diagnostics.push(c002(
                                format!("root dual certificate rejected: {e}"),
                                format!("solve audit node {ix}"),
                            )),
                        }
                    }
                }
                if sol.status.has_solution()
                    && sol.objective > sol.stats.best_bound + scaled(DUAL_TOL, sol.objective)
                {
                    report.diagnostics.push(c002(
                        format!(
                            "heuristic objective {} exceeds the certified bound {}",
                            sol.objective, sol.stats.best_bound
                        ),
                        "solve audit".into(),
                    ));
                }
            }
        }
    }
    if report.diagnostics.len() == before {
        report.verified += 1;
    }
    report
}

/// Debug-build post-check run by the solver entry points: the returned
/// assignment must re-verify against the model it claims to solve.
/// Compiled away in release builds.
pub fn debug_postcheck(model: &Model, sol: &Solution) {
    if cfg!(debug_assertions) {
        let check = check_solution(model, sol);
        debug_assert!(
            check.is_ok(),
            "solver returned an uncertifiable solution: {check:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::model::{Sense, VarKind};
    use crate::status::SolverStats;

    fn audited() -> SolverConfig {
        SolverConfig::exact().with_audit(true)
    }

    fn knapsack() -> Model {
        let mut m = Model::maximize();
        let a = m.add_binary("a", 8.0);
        let b = m.add_binary("b", 11.0);
        let c = m.add_binary("c", 6.0);
        let d = m.add_binary("d", 4.0);
        m.add_constraint(
            "w",
            [(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)],
            Sense::Le,
            14.0,
        );
        m
    }

    #[test]
    fn optimal_solve_certifies() {
        let m = knapsack();
        let sol = m.solve(&audited()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(sol.audit.is_some(), "audit requested but not attached");
        let report = certify_solution(&m, &sol);
        assert!(report.passed(), "diagnostics: {:?}", report.diagnostics);
        assert_eq!(report.verified, 2);
        assert_eq!(sol.stats.certificates_verified, 2);
        assert_eq!(sol.stats.certificate_failures, 0);
    }

    #[test]
    fn presolve_infeasible_certifies() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("lo", [(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        let sol = m.solve(&audited()).unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
        let report = certify_solution(&m, &sol);
        assert!(report.passed(), "diagnostics: {:?}", report.diagnostics);
    }

    #[test]
    fn root_farkas_infeasible_certifies() {
        // Presolve disabled so the refutation must come from the LP itself.
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint("hi", [(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        let mut cfg = audited();
        cfg.enable_presolve = false;
        let sol = m.solve(&cfg).unwrap();
        assert_eq!(sol.status, SolveStatus::Infeasible);
        let audit = sol.audit.as_deref().expect("audit");
        assert!(matches!(
            audit.proof,
            SolveProof::RootInfeasible { proof: Some(_) }
        ));
        let report = certify_solution(&m, &sol);
        assert!(report.passed(), "diagnostics: {:?}", report.diagnostics);
    }

    #[test]
    fn unbounded_ray_certifies() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 0.0);
        let mut cfg = audited();
        cfg.enable_presolve = false;
        let sol = m.solve(&cfg).unwrap();
        assert_eq!(sol.status, SolveStatus::Unbounded);
        let report = certify_solution(&m, &sol);
        assert!(report.passed(), "diagnostics: {:?}", report.diagnostics);
    }

    #[test]
    fn corrupted_integer_flip_rejected() {
        let m = knapsack();
        let mut sol = m.solve(&audited()).unwrap();
        // Flip the most valuable selected item off: objective no longer
        // reproduces.
        sol.values[1] = 1.0 - sol.values[1];
        assert!(check_solution(&m, &sol).is_err());
        let report = certify_solution(&m, &sol);
        assert!(report.diagnostics.iter().any(|d| d.code == "C001"));
    }

    #[test]
    fn corrupted_continuous_past_binding_row_rejected() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0, 1.0);
        m.add_constraint("cap", [(x, 1.0)], Sense::Le, 4.0);
        let mut sol = m.solve(&audited()).unwrap();
        sol.values[x.index()] += 0.5;
        sol.objective += 0.5;
        assert!(check_solution(&m, &sol).is_err());
    }

    #[test]
    fn corrupted_objective_rejected() {
        let m = knapsack();
        let mut sol = m.solve(&audited()).unwrap();
        sol.objective += 1.0;
        let report = certify_solution(&m, &sol);
        assert!(report.diagnostics.iter().any(|d| d.code == "C001"));
    }

    #[test]
    fn bound_below_incumbent_rejected() {
        let m = knapsack();
        let mut sol = m.solve(&audited()).unwrap();
        sol.stats.best_bound = sol.objective - 1.0;
        let report = certify_solution(&m, &sol);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "C002" && d.message.contains("below the incumbent")));
    }

    #[test]
    fn corrupted_dual_certificate_rejected() {
        let m = knapsack();
        let mut sol = m.solve(&audited()).unwrap();
        let audit = sol.audit.as_deref_mut().expect("audit");
        let mut tampered = false;
        for n in &mut audit.nodes {
            if let Some(lp) = &mut n.lp {
                lp.objective += 5.0;
                tampered = true;
            }
        }
        assert!(tampered, "expected at least one LP-certified node");
        let report = certify_solution(&m, &sol);
        assert!(report.diagnostics.iter().any(|d| d.code == "C002"));
    }

    #[test]
    fn fake_infeasibility_claim_rejected() {
        // A feasible model with a forged infeasibility status and no
        // certificate must not certify.
        let m = knapsack();
        let mut sol = Solution::empty(SolveStatus::Infeasible);
        sol.audit = Some(Box::new(SolveAudit {
            solved_model: m.clone(),
            rel_gap: 0.0,
            limit_hit: false,
            nodes: Vec::new(),
            incumbent_source: IncumbentSource::None,
            proof: SolveProof::PresolveInfeasible { certificate: None },
        }));
        let report = certify_solution(&m, &sol);
        assert!(report.diagnostics.iter().any(|d| d.code == "C003"));
    }

    #[test]
    fn farkas_verifier_rejects_wrong_sign() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint("le", [(x, 1.0)], Sense::Le, 1.0);
        let lb = [0.0];
        let ub = [1.0];
        assert!(verify_farkas(&m, &lb, &ub, &[-1.0]).is_err());
    }

    #[test]
    fn dual_bound_certifies_textbook_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 5.0);
        m.add_constraint("c1", [(x, 1.0)], Sense::Le, 4.0);
        m.add_constraint("c2", [(y, 2.0)], Sense::Le, 12.0);
        m.add_constraint("c3", [(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        // Known dual optimum: y = (0, 3/2, 1), dual objective 36.
        let lb = [0.0, 0.0];
        let ub = [f64::INFINITY, f64::INFINITY];
        let u = dual_bound(&m, &lb, &ub, &[0.0, 1.5, 1.0]).unwrap();
        assert!((u - 36.0).abs() < 1e-9);
    }

    #[test]
    fn ray_verifier_demands_positive_growth() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 0.0);
        let lb = [0.0];
        let ub = [f64::INFINITY];
        assert!(verify_ray(&m, &lb, &ub, &[1.0]).is_err());
    }

    #[test]
    fn warm_start_incumbent_certifies() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 5.0);
        let y = m.add_binary("y", 4.0);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        let sol = m.solve_warm(&audited(), &[0.0, 1.0]).unwrap();
        let report = certify_solution(&m, &sol);
        assert!(report.passed(), "diagnostics: {:?}", report.diagnostics);
    }

    #[test]
    fn gap_terminated_solve_certifies() {
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i % 3) as f64))
            .collect();
        m.add_constraint(
            "c",
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            Sense::Le,
            6.0,
        );
        let sol = m.solve(&audited().with_rel_gap(0.5)).unwrap();
        assert!(sol.status.has_solution());
        let report = certify_solution(&m, &sol);
        assert!(report.passed(), "diagnostics: {:?}", report.diagnostics);
    }

    #[test]
    fn empty_report_without_audit_still_checks_primal() {
        let m = knapsack();
        let sol = m.solve(&SolverConfig::exact()).unwrap();
        assert!(sol.audit.is_none());
        let report = certify_solution(&m, &sol);
        assert!(report.passed());
        assert_eq!(report.verified, 1);
    }

    #[test]
    fn check_solution_rejects_wrong_length() {
        let m = knapsack();
        let sol = Solution {
            status: SolveStatus::Optimal,
            objective: 0.0,
            values: vec![0.0; 2],
            stats: SolverStats::default(),
            audit: None,
        };
        assert!(check_solution(&m, &sol).is_err());
    }
}
