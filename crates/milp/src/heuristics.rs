//! Primal heuristics: diving from the root relaxation.

use crate::branch_bound::most_fractional;
use crate::config::SolverConfig;
use crate::model::{Model, VarKind};
use crate::simplex::{LpOutcome, Simplex};
use crate::status::SolverStats;

/// Dives from an LP-relaxation solution toward an integer-feasible point by
/// repeatedly fixing the most fractional integer variable to its nearest
/// integer and re-solving the relaxation. On infeasibility the most recent
/// fixing is flipped once to the other side before giving up.
///
/// Returns the objective and assignment of an integer-feasible point, or
/// `None` when the dive dead-ends.
// srclint: checked-indexing: j comes from most_fractional, which only
// returns column indices of the same model; lb/ub/values/snapped are
// per-variable vectors of num_vars entries.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dive(
    model: &Model,
    simplex: &Simplex,
    base_lb: &[f64],
    base_ub: &[f64],
    root_values: &[f64],
    config: &SolverConfig,
    stats: &mut SolverStats,
) -> Option<(f64, Vec<f64>)> {
    let mut lb = base_lb.to_vec();
    let mut ub = base_ub.to_vec();
    let mut values = root_values.to_vec();

    for _ in 0..config.dive_depth {
        match most_fractional(model, &values, config.int_tol) {
            None => {
                // Integral within tolerance: snap and validate.
                let mut snapped = values;
                for (j, v) in model.vars().iter().enumerate() {
                    if v.kind != VarKind::Continuous {
                        snapped[j] = snapped[j].round();
                    }
                }
                if model.is_feasible(&snapped, 1e-6) {
                    return Some((model.objective_value(&snapped), snapped));
                }
                return None;
            }
            Some((j, x)) => {
                let rounded = x.round().clamp(lb[j], ub[j]);
                let (saved_lb, saved_ub) = (lb[j], ub[j]);
                lb[j] = rounded;
                ub[j] = rounded;
                stats.lp_solves += 1;
                match simplex.solve_with_bounds(model, &lb, &ub).ok()? {
                    LpOutcome::Optimal { values: v, .. } => values = v,
                    LpOutcome::Unbounded { .. } => return None,
                    LpOutcome::Infeasible { .. } => {
                        // Flip to the other side of the fractional value.
                        let other = if rounded > x { x.floor() } else { x.ceil() };
                        let other = other.clamp(saved_lb, saved_ub);
                        if other == rounded {
                            return None;
                        }
                        lb[j] = other;
                        ub[j] = other;
                        stats.lp_solves += 1;
                        match simplex.solve_with_bounds(model, &lb, &ub).ok()? {
                            LpOutcome::Optimal { values: v, .. } => values = v,
                            _ => return None,
                        }
                    }
                }
            }
        }
    }
    None
}

/// Crate-internal re-export of [`dive`] for the heuristic backend.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dive_public(
    model: &Model,
    simplex: &Simplex,
    base_lb: &[f64],
    base_ub: &[f64],
    root_values: &[f64],
    config: &SolverConfig,
    stats: &mut SolverStats,
) -> Option<(f64, Vec<f64>)> {
    dive(model, simplex, base_lb, base_ub, root_values, config, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn dive_finds_feasible_point_on_knapsack() {
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + i as f64))
            .collect();
        m.add_constraint(
            "w",
            vars.iter().map(|&v| (v, 2.0)).collect::<Vec<_>>(),
            Sense::Le,
            7.0,
        );
        let simplex = Simplex::default();
        let lb: Vec<f64> = m.vars().iter().map(|v| v.lb).collect();
        let ub: Vec<f64> = m.vars().iter().map(|v| v.ub).collect();
        let LpOutcome::Optimal { values, .. } = simplex.solve_with_bounds(&m, &lb, &ub).unwrap()
        else {
            panic!("root LP should be optimal");
        };
        let mut stats = SolverStats::default();
        let cfg = SolverConfig::default();
        let found = dive(&m, &simplex, &lb, &ub, &values, &cfg, &mut stats);
        let (obj, point) = found.expect("dive should find a feasible point");
        assert!(m.is_feasible(&point, 1e-6));
        assert!(obj > 0.0);
    }

    #[test]
    fn dive_on_integral_root_returns_it() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        m.add_constraint("c", [(x, 1.0)], Sense::Le, 1.0);
        let simplex = Simplex::default();
        let mut stats = SolverStats::default();
        let cfg = SolverConfig::default();
        let found = dive(&m, &simplex, &[0.0], &[1.0], &[1.0], &cfg, &mut stats);
        assert_eq!(found.unwrap().0, 1.0);
    }
}
