//! Solver configuration knobs.

use std::time::Duration;

/// Tunable parameters for the MILP solver.
///
/// The defaults mirror the paper's CPLEX configuration (Sec. 3.2.2): return
/// "good enough" solutions within 10% of optimal, bounded wall-clock time.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Relative MIP gap at which the search stops: terminate once
    /// `(best_bound - incumbent) <= rel_gap * max(|incumbent|, 1)`.
    pub rel_gap: f64,
    /// Wall-clock budget for branch-and-bound. The best incumbent found so
    /// far is returned when the budget expires.
    pub time_limit: Duration,
    /// Maximum number of branch-and-bound nodes to explore.
    pub node_limit: usize,
    /// Tolerance within which a fractional value counts as integral.
    pub int_tol: f64,
    /// Maximum simplex iterations per LP solve (safety valve).
    pub max_lp_iterations: usize,
    /// Whether to run the diving heuristic at the root to seed an incumbent.
    pub enable_diving: bool,
    /// Maximum depth of the diving heuristic.
    pub dive_depth: usize,
    /// Whether to run presolve reductions before branch-and-bound.
    pub enable_presolve: bool,
    /// Whether to record a proof-carrying [`crate::certify::SolveAudit`]
    /// on the returned solution and self-certify it (filling
    /// `stats.certificates_verified` / `stats.certificate_failures`).
    pub audit: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            rel_gap: 1e-6,
            time_limit: Duration::from_secs(60),
            node_limit: 200_000,
            int_tol: 1e-6,
            max_lp_iterations: 200_000,
            enable_diving: true,
            dive_depth: 256,
            enable_presolve: true,
            audit: false,
        }
    }
}

impl SolverConfig {
    /// The configuration the TetriSched scheduler uses online: 10% relative
    /// gap and a bounded per-cycle solve time, as in the paper.
    pub fn online(time_limit: Duration) -> Self {
        Self {
            rel_gap: 0.10,
            time_limit,
            ..Self::default()
        }
    }

    /// Exact configuration for tests: zero gap, generous limits.
    pub fn exact() -> Self {
        Self::default()
    }

    /// Incumbent-only anytime configuration: a very tight branch-and-bound
    /// node budget with root diving forced on, so the solver almost always
    /// stops on its budget and returns the best incumbent found so far
    /// *with* its `best_bound` (and, under audit, a feasibility
    /// certificate). Used by the degradation ladder's anytime rung: the
    /// caller trades the optimality proof for a bounded, predictable
    /// amount of solver work.
    pub fn anytime(time_limit: Duration, node_limit: usize) -> Self {
        Self {
            rel_gap: 0.10,
            time_limit,
            node_limit: node_limit.max(1),
            enable_diving: true,
            ..Self::default()
        }
    }

    /// Builder-style setter for the relative gap.
    pub fn with_rel_gap(mut self, gap: f64) -> Self {
        self.rel_gap = gap;
        self
    }

    /// Builder-style setter for the time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Builder-style setter for the node limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Builder-style setter for proof-carrying solve audits.
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_config_matches_paper() {
        let c = SolverConfig::online(Duration::from_secs(2));
        assert_eq!(c.rel_gap, 0.10);
        assert_eq!(c.time_limit, Duration::from_secs(2));
    }

    #[test]
    fn anytime_config_is_tightly_budgeted() {
        let c = SolverConfig::anytime(Duration::from_millis(50), 64);
        assert_eq!(c.node_limit, 64);
        assert!(c.enable_diving, "anytime needs the dive for an incumbent");
        assert_eq!(c.rel_gap, 0.10);
        // A zero node budget is clamped so the root node always runs.
        assert_eq!(SolverConfig::anytime(Duration::ZERO, 0).node_limit, 1);
    }

    #[test]
    fn builders_apply() {
        let c = SolverConfig::default()
            .with_rel_gap(0.5)
            .with_node_limit(7)
            .with_time_limit(Duration::from_millis(5));
        assert_eq!(c.rel_gap, 0.5);
        assert_eq!(c.node_limit, 7);
        assert_eq!(c.time_limit, Duration::from_millis(5));
    }
}
