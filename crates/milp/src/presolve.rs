//! Presolve: cheap model reductions applied before branch-and-bound.
//!
//! STRL compilation emits many structurally simple rows (demand equalities,
//! small supply caps). Presolve shrinks the LP work per node:
//!
//! - **null rows** (no terms) are checked against their sense and dropped,
//! - **singleton rows** (one variable) are converted into variable bounds,
//! - **redundant `<=`/`>=` rows** — those satisfied by every point inside
//!   the variable bounds — are dropped,
//! - **bound tightening** propagates row activity bounds into variable
//!   bounds (and rounds integer bounds inward),
//! - obvious **infeasibility** (a row whose best achievable activity still
//!   violates it, or crossed bounds) is detected without invoking the
//!   solver.
//!
//! Variables are never removed or reindexed, so a solution of the presolved
//! model is directly a solution of the original.

use crate::model::{Model, Sense, VarKind};

/// Outcome of presolving a model.
#[derive(Debug)]
pub enum PresolveOutcome {
    /// A reduced (or unchanged) model, same variable indexing.
    Reduced {
        /// The model to hand to the solver.
        model: Model,
        /// Rows dropped by the reductions.
        rows_dropped: usize,
        /// Variable bounds tightened.
        bounds_tightened: usize,
    },
    /// The model is infeasible; no solve needed.
    Infeasible,
}

/// Bounds on a row's activity given current variable bounds.
fn activity_bounds(model: &Model, terms: &[(crate::model::VarId, f64)]) -> (f64, f64) {
    let mut lo = 0.0;
    let mut hi = 0.0;
    for &(v, c) in terms {
        let var = model.var(v);
        let (a, b) = if c >= 0.0 {
            (c * var.lb, c * var.ub)
        } else {
            (c * var.ub, c * var.lb)
        };
        lo += a;
        hi += b;
    }
    (lo, hi)
}

/// Presolves a model. `passes` bound-tightening sweeps are applied (two is
/// usually enough for STRL-shaped models).
pub fn presolve(model: &Model, passes: usize) -> PresolveOutcome {
    const TOL: f64 = 1e-9;
    let mut m = model.clone();
    let mut rows_dropped = 0usize;
    let mut bounds_tightened = 0usize;

    for _ in 0..passes.max(1) {
        // Bound tightening from each row.
        for ci in 0..m.num_constraints() {
            let c = m.constraint(crate::model::ConstraintId(ci)).clone();
            let terms = crate::model::LinExpr {
                terms: c.terms.clone(),
                constant: 0.0,
            }
            .compact()
            .terms;
            if terms.is_empty() {
                continue;
            }
            let (act_lo, act_hi) = activity_bounds(&m, &terms);
            // For `<=` rows (and the `<=` side of `=`): each variable's
            // contribution is bounded by rhs minus the minimum of the rest.
            let tighten_le = matches!(c.sense, Sense::Le | Sense::Eq);
            let tighten_ge = matches!(c.sense, Sense::Ge | Sense::Eq);
            for &(v, coeff) in &terms {
                if coeff.abs() < TOL {
                    continue;
                }
                let var = m.var(v).clone();
                // Minimum contribution of the other terms.
                let (self_lo, self_hi) = if coeff >= 0.0 {
                    (coeff * var.lb, coeff * var.ub)
                } else {
                    (coeff * var.ub, coeff * var.lb)
                };
                let rest_lo = act_lo - self_lo;
                let rest_hi = act_hi - self_hi;
                if tighten_le && rest_lo.is_finite() {
                    // coeff * x <= rhs - rest_lo.
                    let cap = c.rhs - rest_lo;
                    if coeff > 0.0 {
                        let mut new_ub = cap / coeff;
                        if var.kind != VarKind::Continuous {
                            new_ub = (new_ub + TOL).floor();
                        }
                        if new_ub < var.ub - TOL {
                            m.set_bounds(v, var.lb, new_ub);
                            bounds_tightened += 1;
                        }
                    } else {
                        let mut new_lb = cap / coeff;
                        if var.kind != VarKind::Continuous {
                            new_lb = (new_lb - TOL).ceil();
                        }
                        if new_lb > var.lb + TOL {
                            m.set_bounds(v, new_lb, var.ub);
                            bounds_tightened += 1;
                        }
                    }
                }
                let var = m.var(v).clone();
                if tighten_ge && rest_hi.is_finite() {
                    // coeff * x >= rhs - rest_hi.
                    let floor_val = c.rhs - rest_hi;
                    if coeff > 0.0 {
                        let mut new_lb = floor_val / coeff;
                        if var.kind != VarKind::Continuous {
                            new_lb = (new_lb - TOL).ceil();
                        }
                        if new_lb > var.lb + TOL {
                            m.set_bounds(v, new_lb, var.ub);
                            bounds_tightened += 1;
                        }
                    } else {
                        let mut new_ub = floor_val / coeff;
                        if var.kind != VarKind::Continuous {
                            new_ub = (new_ub + TOL).floor();
                        }
                        if new_ub < var.ub - TOL {
                            m.set_bounds(v, var.lb, new_ub);
                            bounds_tightened += 1;
                        }
                    }
                }
            }
        }
    }

    // Crossed bounds mean infeasible.
    for v in m.vars() {
        if v.lb > v.ub + 1e-7 {
            return PresolveOutcome::Infeasible;
        }
    }

    // Row filtering.
    let mut kept = Model::maximize();
    for (i, v) in m.vars().iter().enumerate() {
        let _ = i;
        kept.add_var(v.name.clone(), v.kind, v.lb, v.ub, v.obj);
    }
    kept.objective_offset = m.objective_offset;
    for ci in 0..m.num_constraints() {
        let c = m.constraint(crate::model::ConstraintId(ci));
        let terms = crate::model::LinExpr {
            terms: c.terms.clone(),
            constant: 0.0,
        }
        .compact()
        .terms;
        if terms.is_empty() {
            let ok = match c.sense {
                Sense::Le => 0.0 <= c.rhs + 1e-9,
                Sense::Ge => 0.0 >= c.rhs - 1e-9,
                Sense::Eq => c.rhs.abs() <= 1e-9,
            };
            if !ok {
                return PresolveOutcome::Infeasible;
            }
            rows_dropped += 1;
            continue;
        }
        let (act_lo, act_hi) = activity_bounds(&kept, &terms);
        let (redundant, infeasible) = match c.sense {
            Sense::Le => (act_hi <= c.rhs + 1e-9, act_lo > c.rhs + 1e-7),
            Sense::Ge => (act_lo >= c.rhs - 1e-9, act_hi < c.rhs - 1e-7),
            Sense::Eq => (
                (act_lo - c.rhs).abs() <= 1e-9 && (act_hi - c.rhs).abs() <= 1e-9,
                act_lo > c.rhs + 1e-7 || act_hi < c.rhs - 1e-7,
            ),
        };
        if infeasible {
            return PresolveOutcome::Infeasible;
        }
        if redundant {
            rows_dropped += 1;
            continue;
        }
        kept.add_constraint(c.name.clone(), terms, c.sense, c.rhs);
    }

    PresolveOutcome::Reduced {
        model: kept,
        rows_dropped,
        bounds_tightened,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::model::{Model, Sense, VarKind};

    #[test]
    fn singleton_like_row_tightens_bound() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 100.0, 1.0);
        m.add_constraint("cap", [(x, 2.0)], Sense::Le, 10.0);
        let PresolveOutcome::Reduced {
            model,
            rows_dropped,
            bounds_tightened,
        } = presolve(&m, 2)
        else {
            panic!("expected reduced");
        };
        assert_eq!(bounds_tightened, 1);
        assert_eq!(model.var(x).ub, 5.0);
        // The row is now redundant and dropped.
        assert_eq!(rows_dropped, 1);
        assert_eq!(model.num_constraints(), 0);
    }

    #[test]
    fn integer_bounds_round_inward() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Integer, 0.0, 100.0, 1.0);
        m.add_constraint("cap", [(x, 3.0)], Sense::Le, 10.0);
        let PresolveOutcome::Reduced { model, .. } = presolve(&m, 1) else {
            panic!("expected reduced");
        };
        assert_eq!(model.var(x).ub, 3.0);
    }

    #[test]
    fn infeasible_row_detected() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint("impossible", [(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        assert!(matches!(presolve(&m, 1), PresolveOutcome::Infeasible));
    }

    #[test]
    fn null_rows_checked_and_dropped() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint("trivial", [], Sense::Le, 5.0);
        let PresolveOutcome::Reduced { rows_dropped, .. } = presolve(&m, 1) else {
            panic!("expected reduced");
        };
        assert_eq!(rows_dropped, 1);

        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint("broken", [], Sense::Ge, 5.0);
        assert!(matches!(presolve(&m, 1), PresolveOutcome::Infeasible));
    }

    #[test]
    fn presolved_model_has_same_optimum() {
        // A STRL-shaped model: demand equality plus supply cap.
        let mut m = Model::maximize();
        let i = m.add_binary("I", 5.0);
        let p = m.add_var("P", VarKind::Integer, 0.0, 10.0, 0.0);
        m.add_constraint("demand", [(p, 1.0), (i, -3.0)], Sense::Eq, 0.0);
        m.add_constraint("supply", [(p, 1.0)], Sense::Le, 4.0);
        let original = m.solve(&SolverConfig::exact()).unwrap();

        let PresolveOutcome::Reduced { model, .. } = presolve(&m, 2) else {
            panic!("expected reduced");
        };
        let reduced = model.solve(&SolverConfig::exact()).unwrap();
        assert!((original.objective - reduced.objective).abs() < 1e-9);
        // P's bound was tightened to 3 (from the demand row) or 4 (supply).
        assert!(model.var(p).ub <= 4.0);
    }

    #[test]
    fn crossed_input_bounds_infeasible() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 2.0, 1.0, 1.0);
        assert!(matches!(presolve(&m, 1), PresolveOutcome::Infeasible));
    }
}
