//! Presolve: cheap model reductions applied before branch-and-bound.
//!
//! STRL compilation emits many structurally simple rows (demand equalities,
//! small supply caps). Presolve shrinks the LP work per node:
//!
//! - **bound tightening** propagates row activity bounds into variable
//!   bounds (and rounds integer bounds inward) via [`crate::lint::propagate_bounds`],
//!   the same pass the lint layer uses for its diagnostics,
//! - **null rows** (no terms) are checked against their sense and dropped,
//! - **redundant `<=`/`>=` rows** — those satisfied by every point inside
//!   the tightened variable bounds — are dropped,
//! - obvious **infeasibility** (a row whose best achievable activity still
//!   violates it, or crossed bounds) is detected without invoking the
//!   solver, and is returned with the lint layer's machine-checkable
//!   [`Certificate`] so callers can audit the rejection.
//!
//! Variables are never removed or reindexed, so a solution of the presolved
//! model is directly a solution of the original.

use crate::lint::{propagate_bounds, Certificate};
use crate::model::{Model, Sense};

/// Outcome of presolving a model.
#[derive(Debug)]
pub enum PresolveOutcome {
    /// A reduced (or unchanged) model, same variable indexing.
    Reduced {
        /// The model to hand to the solver.
        model: Model,
        /// Rows dropped by the reductions.
        rows_dropped: usize,
        /// Variable bounds tightened.
        bounds_tightened: usize,
    },
    /// The model is infeasible; no solve needed.
    Infeasible {
        /// Machine-checkable refutation, when bound propagation produced
        /// one (`None` only for defensive fallback paths).
        certificate: Option<Certificate>,
    },
}

/// Bounds on a row's activity given current variable bounds.
fn activity_bounds(model: &Model, terms: &[(crate::model::VarId, f64)]) -> (f64, f64) {
    let mut lo = 0.0;
    let mut hi = 0.0;
    for &(v, c) in terms {
        let var = model.var(v);
        let (a, b) = if c >= 0.0 {
            (c * var.lb, c * var.ub)
        } else {
            (c * var.ub, c * var.lb)
        };
        lo += a;
        hi += b;
    }
    (lo, hi)
}

/// Presolves a model. `passes` bound-tightening sweeps are applied (two is
/// usually enough for STRL-shaped models).
pub fn presolve(model: &Model, passes: usize) -> PresolveOutcome {
    const TOL: f64 = 1e-9;

    let prop = propagate_bounds(model, passes.max(1));
    if let Some(cert) = prop.certificates.into_iter().next() {
        return PresolveOutcome::Infeasible {
            certificate: Some(cert),
        };
    }

    // Apply the propagated bounds, counting changed bound sides.
    let mut m = model.clone();
    let mut bounds_tightened = 0usize;
    for (j, &(lb, ub)) in prop.bounds.iter().enumerate() {
        let v = crate::model::VarId(j);
        let old = m.var(v).clone();
        let lb_changed = (lb - old.lb).abs() > TOL || (lb.is_finite() != old.lb.is_finite());
        let ub_changed = (ub - old.ub).abs() > TOL || (ub.is_finite() != old.ub.is_finite());
        if lb_changed || ub_changed {
            m.set_bounds(v, lb, ub);
            bounds_tightened += usize::from(lb_changed) + usize::from(ub_changed);
        }
    }

    // Row filtering over the tightened bounds.
    let mut rows_dropped = 0usize;
    let mut kept = Model::maximize();
    for v in m.vars() {
        kept.add_var(v.name.clone(), v.kind, v.lb, v.ub, v.obj);
    }
    kept.objective_offset = m.objective_offset;
    for ci in 0..m.num_constraints() {
        let c = m.constraint(crate::model::ConstraintId(ci));
        let terms = crate::model::LinExpr {
            terms: c.terms.clone(),
            constant: 0.0,
        }
        .compact()
        .terms;
        if terms.is_empty() {
            let ok = match c.sense {
                Sense::Le => 0.0 <= c.rhs + TOL,
                Sense::Ge => 0.0 >= c.rhs - TOL,
                Sense::Eq => c.rhs.abs() <= TOL,
            };
            if !ok {
                // Unreachable in practice: propagation certifies violated
                // null rows. Kept as a defensive guard.
                return PresolveOutcome::Infeasible { certificate: None };
            }
            rows_dropped += 1;
            continue;
        }
        let (act_lo, act_hi) = activity_bounds(&kept, &terms);
        let (redundant, infeasible) = match c.sense {
            Sense::Le => (act_hi <= c.rhs + TOL, act_lo > c.rhs + 1e-7),
            Sense::Ge => (act_lo >= c.rhs - TOL, act_hi < c.rhs - 1e-7),
            Sense::Eq => (
                (act_lo - c.rhs).abs() <= TOL && (act_hi - c.rhs).abs() <= TOL,
                act_lo > c.rhs + 1e-7 || act_hi < c.rhs - 1e-7,
            ),
        };
        if infeasible {
            // Also unreachable: propagation checks rows against the same
            // final bounds. Defensive guard only.
            return PresolveOutcome::Infeasible { certificate: None };
        }
        if redundant {
            rows_dropped += 1;
            continue;
        }
        kept.add_constraint(c.name.clone(), terms, c.sense, c.rhs);
    }

    PresolveOutcome::Reduced {
        model: kept,
        rows_dropped,
        bounds_tightened,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use crate::model::{Model, Sense, VarKind};

    #[test]
    fn singleton_like_row_tightens_bound() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 100.0, 1.0);
        m.add_constraint("cap", [(x, 2.0)], Sense::Le, 10.0);
        let PresolveOutcome::Reduced {
            model,
            rows_dropped,
            bounds_tightened,
        } = presolve(&m, 2)
        else {
            panic!("expected reduced");
        };
        assert_eq!(bounds_tightened, 1);
        assert_eq!(model.var(x).ub, 5.0);
        // The row is now redundant and dropped.
        assert_eq!(rows_dropped, 1);
        assert_eq!(model.num_constraints(), 0);
    }

    #[test]
    fn integer_bounds_round_inward() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Integer, 0.0, 100.0, 1.0);
        m.add_constraint("cap", [(x, 3.0)], Sense::Le, 10.0);
        let PresolveOutcome::Reduced { model, .. } = presolve(&m, 1) else {
            panic!("expected reduced");
        };
        assert_eq!(model.var(x).ub, 3.0);
    }

    #[test]
    fn infeasible_row_detected() {
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint("impossible", [(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        let PresolveOutcome::Infeasible { certificate } = presolve(&m, 1) else {
            panic!("expected infeasible");
        };
        certificate
            .expect("propagation produces a certificate")
            .verify(&m)
            .expect("certificate verifies against the original model");
    }

    #[test]
    fn null_rows_checked_and_dropped() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint("trivial", [], Sense::Le, 5.0);
        let PresolveOutcome::Reduced { rows_dropped, .. } = presolve(&m, 1) else {
            panic!("expected reduced");
        };
        assert_eq!(rows_dropped, 1);

        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
        m.add_constraint("broken", [], Sense::Ge, 5.0);
        assert!(matches!(
            presolve(&m, 1),
            PresolveOutcome::Infeasible { .. }
        ));
    }

    #[test]
    fn presolved_model_has_same_optimum() {
        // A STRL-shaped model: demand equality plus supply cap.
        let mut m = Model::maximize();
        let i = m.add_binary("I", 5.0);
        let p = m.add_var("P", VarKind::Integer, 0.0, 10.0, 0.0);
        m.add_constraint("demand", [(p, 1.0), (i, -3.0)], Sense::Eq, 0.0);
        m.add_constraint("supply", [(p, 1.0)], Sense::Le, 4.0);
        let original = m.solve(&SolverConfig::exact()).unwrap();

        let PresolveOutcome::Reduced { model, .. } = presolve(&m, 2) else {
            panic!("expected reduced");
        };
        let reduced = model.solve(&SolverConfig::exact()).unwrap();
        assert!((original.objective - reduced.objective).abs() < 1e-9);
        // P's bound was tightened to 3 (from the demand row) or 4 (supply).
        assert!(model.var(p).ub <= 4.0);
    }

    #[test]
    fn crossed_input_bounds_infeasible() {
        let mut m = Model::maximize();
        m.add_var("x", VarKind::Continuous, 2.0, 1.0, 1.0);
        let PresolveOutcome::Infeasible { certificate } = presolve(&m, 1) else {
            panic!("expected infeasible");
        };
        assert!(matches!(
            certificate,
            Some(Certificate::CrossedBounds { .. })
        ));
    }
}
