//! Vendored, offline subset of the `criterion` crate API.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the benchmarking surface the workspace's `benches/` use is implemented
//! here: `Criterion`, `benchmark_group`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! This is a functional micro-harness, not a statistics engine: each
//! benchmark runs a short warm-up, then `sample_size` timed samples, and
//! prints mean/min per-iteration times. It keeps `cargo bench` useful for
//! relative regressions while staying dependency-free.

use std::time::{Duration, Instant};

/// Re-export mirroring upstream's prelude convenience.
pub use std::hint::black_box;

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Mean and minimum per-iteration time of the last `iter` call.
    last: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Runs the routine repeatedly and records per-iteration timing.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last = Some((total / self.samples as u32, min));
    }
}

/// One finished measurement, kept for programmatic consumers (e.g.
/// benchmark bins that export JSON baselines).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean per-iteration time across samples.
    pub mean: Duration,
    /// Minimum per-iteration time across samples.
    pub min: Duration,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last: None,
        };
        f(&mut b);
        self.record(&id.to_string(), b.last);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last: None,
        };
        f(&mut b, input);
        self.record(&id.to_string(), b.last);
        self
    }

    fn record(&mut self, id: &str, last: Option<(Duration, Duration)>) {
        report(&self.name, id, last);
        if let Some((mean, min)) = last {
            self.criterion.results.push(BenchResult {
                group: self.name.clone(),
                id: id.to_string(),
                mean,
                min,
            });
        }
    }

    /// Ends the group (upstream flushes reports here; the stub reports
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, last: Option<(Duration, Duration)>) {
    match last {
        Some((mean, min)) => {
            println!("bench {group}/{id}: mean {mean:?}  min {min:?}");
        }
        None => println!("bench {group}/{id}: no measurement (iter never called)"),
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// All measurements recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("crate").bench_function(id, f);
        self
    }
}

/// Declares a benchmark entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        let mut g = c.benchmark_group("math");
        g.sample_size(3);
        g.bench_function("square", |b| b.iter(|| black_box(7u64 * 7)));
        g.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        bench_square(&mut c);
    }

    #[test]
    fn results_are_recorded() {
        let mut c = Criterion::default();
        bench_square(&mut c);
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].group, "math");
        assert_eq!(results[0].id, "square");
        assert!(results[0].mean >= results[0].min);
        assert_eq!(results[1].id, "5");
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
