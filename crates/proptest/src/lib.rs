//! Vendored, offline subset of the `proptest` crate API.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the property-testing surface this workspace uses is implemented here
//! behind the same paths: the [`proptest!`] macro, [`strategy::Strategy`]
//! with `prop_map`/`prop_flat_map`/`prop_recursive`, range/tuple/`Just`
//! strategies, `collection::{vec, btree_set}`, `option::of`, `bool::ANY`,
//! `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case panics with the generated input's
//!   `Debug` rendering; inputs here are small enough to read unshrunk.
//! - **Deterministic by default.** Case `i` of test `t` derives its RNG
//!   seed from `hash(t) ^ i`, so CI failures reproduce locally without a
//!   persistence file. Set `PROPTEST_CASES` to override the case count.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRunner};

/// Collection strategies (`proptest::collection::*`).
pub mod collection {
    use super::strategy::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::fmt::Debug;

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `elem` with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with target sizes drawn from `size`.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates ordered sets of values from `elem`. When the element
    /// domain is too small to reach the drawn target size, the set is as
    /// large as distinct draws allow (mirroring upstream's behaviour of
    /// not looping forever on saturated domains).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Option strategies (`proptest::option::*`).
pub mod option {
    use super::strategy::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy for `Option<T>`: `None` half the time.
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps values of `inner` in `Some`, interleaved with `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.random::<bool>() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Boolean strategies (`proptest::bool::*`).
pub mod bool {
    use super::strategy::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy yielding `true` and `false` uniformly.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    #[allow(non_upper_case_globals)]
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random::<bool>()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::bool::ANY` etc.).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Runs each `#[test] fn name(binding in strategy, ...) { body }` against
/// many generated inputs. Supports an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    let values = ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                    let rendered = format!("{:#?}", values);
                    let ($($pat,)+) = values;
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\ninput: {}",
                            stringify!($name), case, runner.cases(), e, rendered,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the enclosing property with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing property unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (a_val, b_val) => $crate::prop_assert!(
                *a_val == *b_val,
                "assertion failed: `{:?}` == `{:?}`", a_val, b_val
            ),
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (a_val, b_val) => $crate::prop_assert!(
                *a_val == *b_val,
                "assertion failed: `{:?}` == `{:?}`: {}", a_val, b_val, format!($($fmt)+)
            ),
        }
    };
}

/// Fails the enclosing property unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (a_val, b_val) => $crate::prop_assert!(
                *a_val != *b_val,
                "assertion failed: `{:?}` != `{:?}`",
                a_val,
                b_val
            ),
        }
    };
}

/// Uniform choice among several strategies with the same value type.
/// Upstream's per-arm `weight =>` syntax is not supported (unused here).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let runner = TestRunner::new(ProptestConfig::with_cases(200), "bounds");
        let strat = (1u32..5, -3i64..3, 0.5..2.0f64);
        for case in 0..runner.cases() {
            let mut rng = runner.rng_for_case(case);
            let (a, b, c) = strat.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((-3..3).contains(&b));
            assert!((0.5..2.0).contains(&c));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let runner = TestRunner::new(ProptestConfig::default(), "det");
        let strat = crate::collection::vec(0u64..100, 0..8);
        let mut rng1 = runner.rng_for_case(3);
        let mut rng2 = runner.rng_for_case(3);
        assert_eq!(strat.generate(&mut rng1), strat.generate(&mut rng2));
    }

    #[test]
    fn oneof_and_recursive_cover_alternatives() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(u32),
            Node(Vec<T>),
        }
        let leaf = (0u32..10).prop_map(T::Leaf);
        let tree = leaf.prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(T::Node)
        });
        let runner = TestRunner::new(ProptestConfig::with_cases(64), "rec");
        let mut saw_leaf = false;
        let mut saw_node = false;
        for case in 0..runner.cases() {
            let mut rng = runner.rng_for_case(case);
            match tree.generate(&mut rng) {
                T::Leaf(v) => {
                    assert!(v < 10);
                    saw_leaf = true;
                }
                T::Node(children) => {
                    assert!(!children.is_empty());
                    saw_node = true;
                }
            }
        }
        assert!(saw_leaf && saw_node, "both levels should be exercised");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(v in crate::collection::vec(0u8..10, 1..6), flag in prop::bool::ANY) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn options_are_mixed(o in prop::option::of(1u32..4)) {
            if let Some(v) = o {
                prop_assert!((1..4).contains(&v));
            }
        }
    }
}
