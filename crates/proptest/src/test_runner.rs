//! Test execution: configuration, per-case RNGs, and failure type.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion in the property body failed.
    Fail(String),
    /// The input was rejected (kept for API compatibility; the stub's
    /// strategies never reject).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Drives one property: owns the case count and derives per-case RNGs.
#[derive(Debug, Clone)]
pub struct TestRunner {
    cases: u32,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named property. `PROPTEST_CASES` in the
    /// environment overrides the configured case count.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        TestRunner {
            cases,
            seed: fnv1a(name.as_bytes()),
        }
    }

    /// Number of cases this property runs.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// Deterministic RNG for one case: a pure function of the property
    /// name and the case index, so failures reproduce anywhere.
    pub fn rng_for_case(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn runner_is_deterministic() {
        let r1 = TestRunner::new(ProptestConfig::default(), "prop_x");
        let r2 = TestRunner::new(ProptestConfig::default(), "prop_x");
        let mut a = r1.rng_for_case(5);
        let mut b = r2.rng_for_case(5);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn distinct_names_distinct_streams() {
        let r1 = TestRunner::new(ProptestConfig::default(), "prop_x");
        let r2 = TestRunner::new(ProptestConfig::default(), "prop_y");
        let mut a = r1.rng_for_case(0);
        let mut b = r2.rng_for_case(0);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn error_display() {
        assert_eq!(TestCaseError::fail("boom").to_string(), "boom");
        assert!(TestCaseError::reject("nope").to_string().contains("nope"));
    }
}
