//! The [`Strategy`] trait and combinators.

use std::fmt::Debug;
use std::sync::Arc;

use rand::RngExt;

/// RNG used for all generation (deterministic per test case).
pub type TestRng = rand::rngs::StdRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree / shrinking: `generate` draws a
/// complete value directly.
pub trait Strategy {
    /// Generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves; `recurse`
    /// wraps an inner strategy into the next composite layer. `depth`
    /// bounds the number of layers; the size hints are accepted for API
    /// compatibility and unused (generation is already depth-bounded).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            // Each layer draws children from *any* shallower level, so
            // generated trees mix depths rather than being uniform chains.
            let inner = Union::new(levels.clone()).boxed();
            levels.push(recurse(inner).boxed());
        }
        Recursive { levels }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Debug,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`]: one boxed strategy per depth level.
#[derive(Clone)]
pub struct Recursive<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.random_below(self.levels.len() as u64) as usize;
        self.levels[ix].generate(rng)
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Creates a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.random_below(self.options.len() as u64) as usize;
        self.options[ix].generate(rng)
    }
}

/// Collection-size specification: an exact size or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    /// Draws a size.
    pub fn sample(&self, rng: &mut TestRng) -> usize {
        if self.max_exclusive <= self.min + 1 {
            return self.min;
        }
        let span = (self.max_exclusive - self.min) as u64;
        self.min + rng.random_below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.random_below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u: f64 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let u: f32 = rng.random();
        self.start + u * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
