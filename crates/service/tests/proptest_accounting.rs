//! Property tests over the service core's conservation law.
//!
//! For arbitrary interleavings of ingest and drain operations, under
//! arbitrary shard counts, mailbox bounds, and admission policies:
//!
//! - `admitted + shed + backlog == arrivals` at every step (no job is
//!   lost or double-counted), and
//! - each drain batch's own accounting is exact: the batch admits at
//!   most the cycle budget, sheds exactly the depth excess, and reports
//!   the true residual backlog.

use proptest::prelude::*;
use tetrisched_service::{
    AdmissionPolicy, FairShareConfig, Ingest, ServiceConfig, ServiceCore, ServiceJob,
};

#[derive(Debug, Clone, Copy)]
struct Arrival(u64);

impl ServiceJob for Arrival {
    fn service_id(&self) -> u64 {
        self.0
    }
}

/// One step of the driving program.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Offer `count` arrivals.
    Ingest { count: u8 },
    /// Run one admission cycle against a scheduler backlog of `depth`.
    Drain { depth: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..12).prop_map(|count| Op::Ingest { count }),
        (0u8..16).prop_map(|depth| Op::Drain { depth }),
    ]
}

fn arb_policy() -> impl Strategy<Value = AdmissionPolicy> {
    (1usize..8, 1usize..16, 1usize..24).prop_map(
        |(max_admissions_per_cycle, max_scheduler_backlog, shed_queue_depth)| AdmissionPolicy {
            max_admissions_per_cycle,
            max_scheduler_backlog,
            shed_queue_depth,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The conservation law holds after every operation, and every drain
    /// batch's per-cycle accounting agrees with the policy.
    #[test]
    fn accounting_is_conserved_under_arbitrary_programs(
        shards in 1u32..6,
        capacity in 1usize..10,
        policy in arb_policy(),
        ops in prop::collection::vec(arb_op(), 1..64),
    ) {
        let mut core: ServiceCore<Arrival> = ServiceCore::new(ServiceConfig::open(
            shards,
            capacity,
            policy.clone(),
            FairShareConfig::disabled(),
        ));
        let mut next_id = 0u64;
        let mut arrivals = 0u64;
        let mut admitted = 0u64;
        let mut shed = 0u64;
        for op in ops {
            match op {
                Op::Ingest { count } => {
                    for _ in 0..count {
                        arrivals += 1;
                        match core.ingest(Arrival(next_id)) {
                            Ingest::Admitted(_) => {
                                // Open mode never passes arrivals through.
                                prop_assert!(false, "open-mode ingest returned Admitted");
                            }
                            Ingest::Queued { shard } => {
                                prop_assert!(shard < shards, "shard {shard} out of range");
                            }
                            Ingest::Shed(job) => {
                                // Overflow hands the job back intact.
                                prop_assert_eq!(job.0, next_id);
                                shed += 1;
                            }
                        }
                        next_id += 1;
                    }
                }
                Op::Drain { depth } => {
                    let before = core.backlog();
                    let batch = core.drain_cycle(depth as usize);
                    // The batch never admits past the cycle budget.
                    prop_assert!(
                        batch.admitted.len() <= policy.budget(depth as usize),
                        "admitted {} past budget {}",
                        batch.admitted.len(),
                        policy.budget(depth as usize)
                    );
                    // Depth shedding leaves at most `shed_queue_depth` queued.
                    prop_assert!(
                        batch.deferred <= policy.shed_queue_depth,
                        "deferred {} past depth bound {}",
                        batch.deferred,
                        policy.shed_queue_depth
                    );
                    // The batch partitions the pre-drain backlog exactly.
                    prop_assert_eq!(
                        batch.admitted.len() + batch.shed.len() + batch.deferred,
                        before,
                        "drain batch does not partition the backlog"
                    );
                    prop_assert_eq!(batch.deferred, core.backlog());
                    admitted += batch.admitted.len() as u64;
                    shed += batch.shed.len() as u64;
                }
            }
            // The core's law: shed + admitted + deferred(backlog) == arrivals.
            core.validate().map_err(TestCaseError::fail)?;
            // And the core's counters agree with our independent shadow.
            let stats = core.stats();
            prop_assert_eq!(stats.arrivals, arrivals);
            prop_assert_eq!(stats.admitted, admitted);
            prop_assert_eq!(stats.shed, shed);
            prop_assert_eq!(
                stats.admitted + stats.shed + stats.backlog,
                stats.arrivals
            );
        }
    }

    /// Closed mode is a strict pass-through: every arrival is admitted
    /// immediately and drains are no-ops.
    #[test]
    fn closed_mode_admits_everything(count in 0u16..200) {
        let mut core: ServiceCore<Arrival> = ServiceCore::new(ServiceConfig::closed_loop());
        for id in 0..count {
            let got = core.ingest(Arrival(u64::from(id)));
            prop_assert!(matches!(got, Ingest::Admitted(_)));
        }
        let batch = core.drain_cycle(0);
        prop_assert!(batch.admitted.is_empty() && batch.shed.is_empty());
        let stats = core.stats();
        prop_assert_eq!(stats.admitted, u64::from(count));
        prop_assert_eq!(stats.shed, 0);
        prop_assert_eq!(stats.backlog, 0);
        core.validate().map_err(TestCaseError::fail)?;
    }
}
