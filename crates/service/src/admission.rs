//! The admission layer: per-cycle batching, backpressure, load shedding.
//!
//! Every scheduler cycle the admission layer drains a bounded batch of
//! queued arrivals out of the intake shards and decides each job's fate:
//!
//! - **Admit** — hand the job to the scheduler's pending queue now.
//! - **Defer** — leave it queued for a later cycle (backpressure: the
//!   scheduler's pending queue is already at its depth target, or this
//!   cycle's admission budget is spent).
//! - **Shed** — reject it permanently (load shedding: the intake backlog
//!   exceeds the shed threshold, so the oldest excess is dropped rather
//!   than allowed to grow without bound).
//!
//! The policy is pure arithmetic over queue depths — no clocks, no
//! randomness — so admission decisions replay identically under the same
//! seed.

/// The typed fate of one arrival at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Enter the scheduler's pending queue this cycle.
    Admit,
    /// Stay queued in the intake shards for a later cycle.
    Defer,
    /// Rejected permanently to protect the service under overload.
    Shed,
}

/// Backpressure and shedding thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum jobs admitted per cycle (admission batching).
    pub max_admissions_per_cycle: usize,
    /// Scheduler pending-queue depth target: when the pending queue holds
    /// at least this many jobs, admission stops and arrivals defer.
    pub max_scheduler_backlog: usize,
    /// Intake backlog bound: after admission, queued jobs beyond this
    /// depth are shed oldest-first. `usize::MAX` disables shedding from
    /// depth (mailbox overflow can still shed).
    pub shed_queue_depth: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_admissions_per_cycle: 32,
            max_scheduler_backlog: 64,
            shed_queue_depth: usize::MAX,
        }
    }
}

impl AdmissionPolicy {
    /// This cycle's admission budget given the scheduler's current pending
    /// depth: the batching cap, shrunk so admitted jobs never push the
    /// pending queue past its target depth.
    pub fn budget(&self, scheduler_backlog: usize) -> usize {
        let headroom = self.max_scheduler_backlog.saturating_sub(scheduler_backlog);
        self.max_admissions_per_cycle.min(headroom)
    }

    /// How many queued jobs must be shed once admission has taken its
    /// batch and `intake_backlog` jobs remain queued.
    pub fn excess(&self, intake_backlog: usize) -> usize {
        intake_backlog.saturating_sub(self.shed_queue_depth)
    }

    /// The policy tightened for degraded operation. `rung` is the
    /// scheduler's degradation-ladder rung (0 = healthy): each rung
    /// halves the admission batch, the scheduler-backlog target, and the
    /// shed depth, so an already-struggling scheduler is fed less and the
    /// intake queue sheds *earlier* instead of building unbounded wait.
    /// Rung 0 returns the policy unchanged, keeping healthy-path
    /// admission byte-identical.
    pub fn degraded(&self, rung: u8) -> AdmissionPolicy {
        if rung == 0 {
            return self.clone();
        }
        let shift = u32::from(rung.min(3));
        let halve = |v: usize| {
            if v == usize::MAX {
                usize::MAX // "unbounded" stays unbounded
            } else {
                (v >> shift).max(1)
            }
        };
        AdmissionPolicy {
            max_admissions_per_cycle: halve(self.max_admissions_per_cycle),
            max_scheduler_backlog: halve(self.max_scheduler_backlog),
            shed_queue_depth: halve(self.shed_queue_depth),
        }
    }

    /// The decision for a job at position `index` (0-based) in this
    /// cycle's drain order, given the scheduler backlog and the intake
    /// backlog *before* draining.
    pub fn decide(
        &self,
        index: usize,
        scheduler_backlog: usize,
        intake_backlog: usize,
    ) -> AdmissionDecision {
        let budget = self.budget(scheduler_backlog);
        if index < budget {
            AdmissionDecision::Admit
        } else if index < budget + self.excess(intake_backlog.saturating_sub(budget)) {
            AdmissionDecision::Shed
        } else {
            AdmissionDecision::Defer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AdmissionPolicy {
        AdmissionPolicy {
            max_admissions_per_cycle: 4,
            max_scheduler_backlog: 10,
            shed_queue_depth: 6,
        }
    }

    #[test]
    fn budget_caps_at_batch_size() {
        assert_eq!(policy().budget(0), 4);
        assert_eq!(policy().budget(5), 4);
    }

    #[test]
    fn budget_shrinks_near_backlog_target() {
        assert_eq!(policy().budget(8), 2);
        assert_eq!(policy().budget(10), 0);
        assert_eq!(policy().budget(99), 0);
    }

    #[test]
    fn excess_sheds_beyond_depth_bound() {
        assert_eq!(policy().excess(6), 0);
        assert_eq!(policy().excess(9), 3);
        let unbounded = AdmissionPolicy::default();
        assert_eq!(unbounded.excess(1_000_000), 0);
    }

    #[test]
    fn decide_partitions_admit_shed_defer() {
        let p = policy();
        // 12 queued, no scheduler backlog: budget 4, remaining 8, shed 2.
        let decisions: Vec<_> = (0..12).map(|i| p.decide(i, 0, 12)).collect();
        assert_eq!(&decisions[..4], &[AdmissionDecision::Admit; 4]);
        assert_eq!(&decisions[4..6], &[AdmissionDecision::Shed; 2]);
        assert_eq!(&decisions[6..], &[AdmissionDecision::Defer; 6]);
    }

    #[test]
    fn degraded_policy_tightens_per_rung_and_is_identity_at_zero() {
        let p = policy(); // 4 / 10 / 6
        assert_eq!(p.degraded(0), p);
        let r1 = p.degraded(1);
        assert_eq!(r1.max_admissions_per_cycle, 2);
        assert_eq!(r1.max_scheduler_backlog, 5);
        assert_eq!(r1.shed_queue_depth, 3);
        let r3 = p.degraded(3);
        assert_eq!(r3.max_admissions_per_cycle, 1);
        assert_eq!(r3.max_scheduler_backlog, 1);
        assert_eq!(r3.shed_queue_depth, 1);
        // Rungs past the ladder floor clamp to the floor's tightening.
        assert_eq!(p.degraded(7), r3);
        // "No depth shedding" stays disabled even when degraded.
        assert_eq!(
            AdmissionPolicy::default().degraded(3).shed_queue_depth,
            usize::MAX
        );
    }

    #[test]
    fn full_backpressure_defers_everything_within_bound() {
        let p = policy();
        // Scheduler saturated, queue within the shed bound: all defer.
        for i in 0..6 {
            assert_eq!(p.decide(i, 10, 6), AdmissionDecision::Defer);
        }
    }
}
