//! Event-driven service core for the TetriSched reproduction.
//!
//! The simulator's original batch loop handled job arrival, admission,
//! and objective weighting inline. This crate carves those concerns into
//! an always-on service core that the engine drives from its virtual
//! clock:
//!
//! - [`mailbox`] / [`intake`] — N deterministic intake shards with
//!   bounded mailboxes; arrivals route by job id and are drained
//!   round-robin.
//! - [`admission`] — per-cycle batching with backpressure (defer when
//!   the scheduler's pending queue is deep) and load shedding (drop the
//!   oldest excess when the intake backlog passes its bound).
//! - [`tenancy`] — per-tenant fair-share weights folded into STRL
//!   objective generation.
//!
//! Everything is single-threaded and caller-driven: no threads, no
//! channels, no clocks (srclint L006 enforces this). In
//! [`ServiceMode::Closed`] the core is a pure pass-through so the
//! existing trace-replay path reproduces its decisions byte-for-byte;
//! [`ServiceMode::Open`] enables the full intake/admission pipeline for
//! open-loop arrival streams.

pub mod admission;
pub mod intake;
pub mod mailbox;
pub mod tenancy;

pub use admission::{AdmissionDecision, AdmissionPolicy};
pub use intake::{IntakeLayer, IntakeShard};
pub use mailbox::{Mailbox, Offer};
pub use tenancy::{FairShareBook, FairShareConfig, TenantId};

/// A job the service core can route. The id must be stable for the job's
/// lifetime: it drives shard routing and tenant assignment.
pub trait ServiceJob: Clone {
    fn service_id(&self) -> u64;
}

/// Operating mode of the service core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMode {
    /// Closed-loop trace replay: arrivals pass straight through to the
    /// scheduler, exactly as the pre-service engine behaved.
    Closed,
    /// Open-loop service: arrivals queue on intake shards and are
    /// admitted in per-cycle batches under backpressure.
    Open,
}

/// Full service-core configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    pub mode: ServiceMode,
    /// Number of intake shards (open mode).
    pub intake_shards: u32,
    /// Per-shard mailbox bound (open mode).
    pub mailbox_capacity: usize,
    pub admission: AdmissionPolicy,
    pub fair_share: FairShareConfig,
}

impl ServiceConfig {
    /// The closed-loop default: pass-through ingest, no fair-share
    /// weighting. Running the engine with this config reproduces the
    /// pre-refactor engine byte-for-byte.
    pub fn closed_loop() -> Self {
        ServiceConfig {
            mode: ServiceMode::Closed,
            intake_shards: 1,
            mailbox_capacity: usize::MAX,
            admission: AdmissionPolicy::default(),
            fair_share: FairShareConfig::disabled(),
        }
    }

    /// An open-loop configuration with the given intake and admission
    /// shape.
    pub fn open(
        intake_shards: u32,
        mailbox_capacity: usize,
        admission: AdmissionPolicy,
        fair_share: FairShareConfig,
    ) -> Self {
        ServiceConfig {
            mode: ServiceMode::Open,
            intake_shards,
            mailbox_capacity,
            admission,
            fair_share,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::closed_loop()
    }
}

/// Outcome of offering one arrival to the service core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ingest<J> {
    /// Hand the job to the scheduler immediately (closed-loop
    /// pass-through).
    Admitted(J),
    /// Queued on intake shard `shard` awaiting an admission cycle.
    Queued { shard: u32 },
    /// Rejected at ingest: the target shard's mailbox overflowed.
    Shed(J),
}

/// One admission cycle's output.
#[derive(Debug, Clone)]
pub struct DrainBatch<J> {
    /// Jobs admitted to the scheduler this cycle, in drain order.
    pub admitted: Vec<J>,
    /// Jobs shed this cycle because the intake backlog passed its bound.
    pub shed: Vec<J>,
    /// Jobs left queued (deferred) after this cycle's batch.
    pub deferred: usize,
}

impl<J> DrainBatch<J> {
    fn empty() -> Self {
        DrainBatch {
            admitted: Vec::new(),
            shed: Vec::new(),
            deferred: 0,
        }
    }
}

/// Cumulative service-core counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs ever offered to the core.
    pub arrivals: u64,
    /// Jobs handed to the scheduler (pass-through or batch admission).
    pub admitted: u64,
    /// Jobs rejected permanently (mailbox overflow or depth shedding).
    pub shed: u64,
    /// Cumulative job-cycles spent deferred: each drain cycle adds the
    /// number of jobs left queued after its batch.
    pub deferred: u64,
    /// Jobs currently queued on intake shards.
    pub backlog: u64,
    /// Shard-mailbox overflow rejections (a subset of `shed`).
    pub mailbox_overflows: u64,
    /// Admission cycles run.
    pub drain_cycles: u64,
}

/// The service core: sharded intake + batched admission + fair-share
/// tenancy, driven entirely by its caller.
#[derive(Debug, Clone)]
pub struct ServiceCore<J: ServiceJob> {
    config: ServiceConfig,
    intake: IntakeLayer<J>,
    fair_share: FairShareBook,
    arrivals: u64,
    admitted: u64,
    shed: u64,
    deferred: u64,
    drain_cycles: u64,
}

impl<J: ServiceJob> ServiceCore<J> {
    pub fn new(config: ServiceConfig) -> Self {
        let intake = IntakeLayer::new(config.intake_shards, config.mailbox_capacity);
        let fair_share = FairShareBook::new(config.fair_share.clone());
        ServiceCore {
            config,
            intake,
            fair_share,
            arrivals: 0,
            admitted: 0,
            shed: 0,
            deferred: 0,
            drain_cycles: 0,
        }
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    pub fn mode(&self) -> ServiceMode {
        self.config.mode
    }

    /// The fair-share book, rebuilt by the engine each cycle.
    pub fn fair_share(&self) -> &FairShareBook {
        &self.fair_share
    }

    pub fn fair_share_mut(&mut self) -> &mut FairShareBook {
        &mut self.fair_share
    }

    /// Offers one arrival. Closed mode admits immediately; open mode
    /// queues on an intake shard or sheds on mailbox overflow.
    pub fn ingest(&mut self, job: J) -> Ingest<J> {
        self.arrivals += 1;
        match self.config.mode {
            ServiceMode::Closed => {
                self.admitted += 1;
                Ingest::Admitted(job)
            }
            ServiceMode::Open => match self.intake.offer(job) {
                Ok(shard) => Ingest::Queued { shard },
                Err(job) => {
                    self.shed += 1;
                    Ingest::Shed(job)
                }
            },
        }
    }

    /// Runs one admission cycle against the current scheduler pending
    /// depth. Closed mode is a no-op (arrivals were already passed
    /// through).
    pub fn drain_cycle(&mut self, scheduler_backlog: usize) -> DrainBatch<J> {
        self.drain_cycle_with(scheduler_backlog, 0)
    }

    /// Degradation-aware admission cycle: `degradation` is the
    /// scheduler's current ladder rung (0 = healthy). Higher rungs run
    /// admission under a tightened policy
    /// ([`AdmissionPolicy::degraded`]), so the service sheds earlier and
    /// admits less while the scheduler is operating degraded. Rung 0 is
    /// byte-identical to [`ServiceCore::drain_cycle`].
    pub fn drain_cycle_with(&mut self, scheduler_backlog: usize, degradation: u8) -> DrainBatch<J> {
        if self.config.mode == ServiceMode::Closed {
            return DrainBatch::empty();
        }
        self.drain_cycles += 1;
        let policy = self.config.admission.degraded(degradation);
        let budget = policy.budget(scheduler_backlog);
        let admitted = self.intake.drain(budget);
        let excess = policy.excess(self.intake.backlog());
        let shed = self.intake.drain(excess);
        let deferred = self.intake.backlog();
        self.admitted += admitted.len() as u64;
        self.shed += shed.len() as u64;
        self.deferred += deferred as u64;
        DrainBatch {
            admitted,
            shed,
            deferred,
        }
    }

    /// Jobs currently queued on intake shards.
    pub fn backlog(&self) -> usize {
        self.intake.backlog()
    }

    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            arrivals: self.arrivals,
            admitted: self.admitted,
            shed: self.shed,
            deferred: self.deferred,
            backlog: self.intake.backlog() as u64,
            mailbox_overflows: self.intake.overflows(),
            drain_cycles: self.drain_cycles,
        }
    }

    /// Checks the core's conservation law: every arrival is admitted,
    /// shed, or still queued — nothing is lost or double-counted.
    pub fn validate(&self) -> Result<(), String> {
        let stats = self.stats();
        let accounted = stats.admitted + stats.shed + stats.backlog;
        if accounted != stats.arrivals {
            return Err(format!(
                "service accounting violated: admitted {} + shed {} + backlog {} = {} != arrivals {}",
                stats.admitted, stats.shed, stats.backlog, accounted, stats.arrivals
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl ServiceJob for u32 {
        fn service_id(&self) -> u64 {
            u64::from(*self)
        }
    }

    #[test]
    fn closed_mode_is_pass_through() {
        let mut core: ServiceCore<u32> = ServiceCore::new(ServiceConfig::closed_loop());
        for id in 0..5 {
            assert_eq!(core.ingest(id), Ingest::Admitted(id));
        }
        let batch = core.drain_cycle(0);
        assert!(batch.admitted.is_empty() && batch.shed.is_empty());
        let stats = core.stats();
        assert_eq!(stats.arrivals, 5);
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.backlog, 0);
        core.validate().expect("closed-loop accounting");
    }

    #[test]
    fn open_mode_queues_then_admits_in_batches() {
        let admission = AdmissionPolicy {
            max_admissions_per_cycle: 2,
            max_scheduler_backlog: 100,
            shed_queue_depth: usize::MAX,
        };
        let mut core: ServiceCore<u32> = ServiceCore::new(ServiceConfig::open(
            2,
            64,
            admission,
            FairShareConfig::disabled(),
        ));
        for id in 0..5 {
            assert!(matches!(core.ingest(id), Ingest::Queued { .. }));
        }
        let first = core.drain_cycle(0);
        assert_eq!(first.admitted.len(), 2);
        assert_eq!(first.deferred, 3);
        core.validate().expect("accounting after first drain");
        let second = core.drain_cycle(0);
        assert_eq!(second.admitted.len(), 2);
        assert_eq!(second.deferred, 1);
        let third = core.drain_cycle(0);
        assert_eq!(third.admitted.len(), 1);
        assert_eq!(third.deferred, 0);
        let stats = core.stats();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.deferred, 4);
        core.validate().expect("accounting when drained dry");
    }

    #[test]
    fn open_mode_sheds_on_mailbox_overflow() {
        let mut core: ServiceCore<u32> = ServiceCore::new(ServiceConfig::open(
            1,
            2,
            AdmissionPolicy::default(),
            FairShareConfig::disabled(),
        ));
        assert!(matches!(core.ingest(0), Ingest::Queued { .. }));
        assert!(matches!(core.ingest(1), Ingest::Queued { .. }));
        assert_eq!(core.ingest(2), Ingest::Shed(2));
        let stats = core.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.mailbox_overflows, 1);
        core.validate().expect("accounting after overflow shed");
    }

    #[test]
    fn open_mode_sheds_on_queue_depth() {
        let admission = AdmissionPolicy {
            max_admissions_per_cycle: 1,
            max_scheduler_backlog: 100,
            shed_queue_depth: 2,
        };
        let mut core: ServiceCore<u32> = ServiceCore::new(ServiceConfig::open(
            1,
            64,
            admission,
            FairShareConfig::disabled(),
        ));
        for id in 0..6 {
            assert!(matches!(core.ingest(id), Ingest::Queued { .. }));
        }
        // Budget 1 admitted, 5 remain, depth bound 2 -> 3 shed, 2 defer.
        let batch = core.drain_cycle(0);
        assert_eq!(batch.admitted.len(), 1);
        assert_eq!(batch.shed.len(), 3);
        assert_eq!(batch.deferred, 2);
        core.validate().expect("accounting after depth shed");
    }

    #[test]
    fn degraded_drain_sheds_earlier_and_admits_less() {
        let admission = AdmissionPolicy {
            max_admissions_per_cycle: 4,
            max_scheduler_backlog: 100,
            shed_queue_depth: 8,
        };
        let make = || -> ServiceCore<u32> {
            let mut core = ServiceCore::new(ServiceConfig::open(
                2,
                64,
                admission.clone(),
                FairShareConfig::disabled(),
            ));
            for id in 0..12 {
                assert!(matches!(core.ingest(id), Ingest::Queued { .. }));
            }
            core
        };
        // Healthy: admit 4, 8 remain at the depth bound, nothing shed.
        let healthy = make().drain_cycle_with(0, 0);
        assert_eq!(healthy.admitted.len(), 4);
        assert!(healthy.shed.is_empty());
        // Ladder rung 2: batch 4>>2 = 1 admitted, depth bound 8>>2 = 2,
        // so 9 of the 11 remaining shed instead of queueing unbounded.
        let mut core = make();
        let degraded = core.drain_cycle_with(0, 2);
        assert_eq!(degraded.admitted.len(), 1);
        assert_eq!(degraded.shed.len(), 9);
        assert_eq!(degraded.deferred, 2);
        core.validate().expect("accounting under degraded drain");
    }

    #[test]
    fn backpressure_defers_under_scheduler_backlog() {
        let admission = AdmissionPolicy {
            max_admissions_per_cycle: 8,
            max_scheduler_backlog: 4,
            shed_queue_depth: usize::MAX,
        };
        let mut core: ServiceCore<u32> = ServiceCore::new(ServiceConfig::open(
            2,
            64,
            admission,
            FairShareConfig::disabled(),
        ));
        for id in 0..6 {
            core.ingest(id);
        }
        // Scheduler saturated: nothing admitted, everything deferred.
        let batch = core.drain_cycle(4);
        assert!(batch.admitted.is_empty());
        assert_eq!(batch.deferred, 6);
        // Scheduler drains: headroom 2 admits 2.
        let batch = core.drain_cycle(2);
        assert_eq!(batch.admitted.len(), 2);
        core.validate().expect("accounting under backpressure");
    }
}
