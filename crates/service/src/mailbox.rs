//! Bounded, deterministic actor mailboxes.
//!
//! The shape follows actor-runtime mailboxes (enqueue at the tail, drain
//! from the head, reject past capacity) but is strictly single-threaded:
//! no channels, no locks, no threads. "Delivery" happens when the owner
//! drains the queue under the simulation's virtual clock, which is what
//! keeps same-seed runs byte-identical.

use std::collections::VecDeque;

/// Outcome of offering a message to a bounded mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// The message was enqueued.
    Enqueued,
    /// The mailbox was full; the message was returned to the caller.
    Overflow,
}

/// A bounded FIFO mailbox.
#[derive(Debug, Clone)]
pub struct Mailbox<T> {
    capacity: usize,
    queue: VecDeque<T>,
    enqueued: u64,
    overflows: u64,
}

impl<T> Mailbox<T> {
    /// Creates a mailbox holding at most `capacity` messages (min 1).
    pub fn bounded(capacity: usize) -> Self {
        Mailbox {
            capacity: capacity.max(1),
            queue: VecDeque::new(),
            enqueued: 0,
            overflows: 0,
        }
    }

    /// Offers a message; on overflow the message is handed back so the
    /// caller decides its fate (shed, retry, redirect) — the mailbox never
    /// silently drops.
    pub fn offer(&mut self, msg: T) -> Result<Offer, T> {
        if self.queue.len() >= self.capacity {
            self.overflows += 1;
            return Err(msg);
        }
        self.queue.push_back(msg);
        self.enqueued += 1;
        Ok(Offer::Enqueued)
    }

    /// Dequeues the oldest message.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Messages ever enqueued successfully.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Offers rejected because the mailbox was full.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut m = Mailbox::bounded(4);
        for i in 0..3 {
            assert_eq!(m.offer(i), Ok(Offer::Enqueued));
        }
        assert_eq!(m.pop(), Some(0));
        assert_eq!(m.pop(), Some(1));
        assert_eq!(m.pop(), Some(2));
        assert_eq!(m.pop(), None);
    }

    #[test]
    fn overflow_returns_message_and_counts() {
        let mut m = Mailbox::bounded(2);
        assert!(m.offer(1).is_ok());
        assert!(m.offer(2).is_ok());
        assert_eq!(m.offer(3), Err(3));
        assert_eq!(m.len(), 2);
        assert_eq!(m.enqueued(), 2);
        assert_eq!(m.overflows(), 1);
        // Draining frees capacity again.
        m.pop();
        assert!(m.offer(3).is_ok());
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut m = Mailbox::bounded(0);
        assert_eq!(m.capacity(), 1);
        assert!(m.offer(9).is_ok());
        assert!(m.offer(10).is_err());
    }
}
