//! The sharded job-intake layer.
//!
//! Arriving jobs hash to one of `N` intake shards by job id; each shard
//! owns a bounded [`Mailbox`]. The layer is drained round-robin across
//! shards so no shard can starve another, and every operation is driven by
//! the caller (the engine's virtual clock) — shards never act on their
//! own, which is what keeps intake deterministic.

use crate::mailbox::Mailbox;
use crate::ServiceJob;

/// One intake shard: a bounded mailbox plus counters.
#[derive(Debug, Clone)]
pub struct IntakeShard<J> {
    mailbox: Mailbox<J>,
}

impl<J> IntakeShard<J> {
    fn new(capacity: usize) -> Self {
        IntakeShard {
            mailbox: Mailbox::bounded(capacity),
        }
    }

    /// Jobs currently queued on this shard.
    pub fn depth(&self) -> usize {
        self.mailbox.len()
    }

    /// Jobs ever enqueued on this shard.
    pub fn enqueued(&self) -> u64 {
        self.mailbox.enqueued()
    }

    /// Arrivals this shard rejected because its mailbox was full.
    pub fn overflows(&self) -> u64 {
        self.mailbox.overflows()
    }
}

/// The intake layer: `N` shards with bounded mailboxes.
#[derive(Debug, Clone)]
pub struct IntakeLayer<J> {
    shards: Vec<IntakeShard<J>>,
    /// Round-robin drain cursor, persisted across cycles so drain order
    /// does not systematically favour low-numbered shards.
    cursor: usize,
}

impl<J: ServiceJob> IntakeLayer<J> {
    /// Creates `shards` intake shards, each bounded at `capacity` jobs.
    pub fn new(shards: u32, capacity: usize) -> Self {
        let n = shards.max(1) as usize;
        IntakeLayer {
            shards: (0..n).map(|_| IntakeShard::new(capacity)).collect(),
            cursor: 0,
        }
    }

    /// The shard a job routes to (stable hash: id mod shard count).
    pub fn route(&self, job: &J) -> u32 {
        (job.service_id() % self.shards.len() as u64) as u32
    }

    /// Offers an arrival to its shard; returns the receiving shard index,
    /// or hands the job back when the shard's mailbox is full.
    pub fn offer(&mut self, job: J) -> Result<u32, J> {
        let shard = self.route(&job);
        match self.shards[shard as usize].mailbox.offer(job) {
            Ok(_) => Ok(shard),
            Err(job) => Err(job),
        }
    }

    /// Drains up to `max` jobs round-robin across shards, starting at the
    /// persisted cursor; the cursor advances so the next drain starts at
    /// the following shard.
    pub fn drain(&mut self, max: usize) -> Vec<J> {
        let n = self.shards.len();
        let mut out = Vec::new();
        let mut empty_streak = 0;
        while out.len() < max && empty_streak < n {
            let shard = self.cursor % n;
            self.cursor = (self.cursor + 1) % n;
            match self.shards[shard].mailbox.pop() {
                Some(job) => {
                    empty_streak = 0;
                    out.push(job);
                }
                None => empty_streak += 1,
            }
        }
        out
    }

    /// Jobs queued across all shards.
    pub fn backlog(&self) -> usize {
        self.shards.iter().map(|s| s.depth()).sum()
    }

    /// Shard views, for reporting.
    pub fn shards(&self) -> &[IntakeShard<J>] {
        &self.shards
    }

    /// Total overflow rejections across shards.
    pub fn overflows(&self) -> u64 {
        self.shards.iter().map(|s| s.overflows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl ServiceJob for u64 {
        fn service_id(&self) -> u64 {
            *self
        }
    }

    #[test]
    fn routing_is_stable_mod_shards() {
        let layer: IntakeLayer<u64> = IntakeLayer::new(4, 8);
        assert_eq!(layer.route(&0), 0);
        assert_eq!(layer.route(&5), 1);
        assert_eq!(layer.route(&7), 3);
    }

    #[test]
    fn drain_is_round_robin_across_shards() {
        let mut layer: IntakeLayer<u64> = IntakeLayer::new(2, 8);
        // Shard 0 gets 0,2,4; shard 1 gets 1.
        for j in [0u64, 2, 4, 1] {
            layer.offer(j).expect("capacity");
        }
        let drained = layer.drain(10);
        // Alternates shards while both are non-empty, then finishes 0.
        assert_eq!(drained, vec![0, 1, 2, 4]);
        assert_eq!(layer.backlog(), 0);
    }

    #[test]
    fn drain_respects_budget_and_cursor_persists() {
        let mut layer: IntakeLayer<u64> = IntakeLayer::new(2, 8);
        for j in [0u64, 1, 2, 3] {
            layer.offer(j).expect("capacity");
        }
        assert_eq!(layer.drain(2), vec![0, 1]);
        assert_eq!(layer.backlog(), 2);
        // Cursor resumes where it left off.
        assert_eq!(layer.drain(2), vec![2, 3]);
    }

    #[test]
    fn overflow_hands_the_job_back() {
        let mut layer: IntakeLayer<u64> = IntakeLayer::new(1, 2);
        assert!(layer.offer(0).is_ok());
        assert!(layer.offer(1).is_ok());
        assert_eq!(layer.offer(2), Err(2));
        assert_eq!(layer.overflows(), 1);
        assert_eq!(layer.backlog(), 2);
    }

    #[test]
    fn single_shard_layer_is_fifo() {
        let mut layer: IntakeLayer<u64> = IntakeLayer::new(1, 16);
        for j in 0..5u64 {
            layer.offer(j).expect("capacity");
        }
        assert_eq!(layer.drain(16), vec![0, 1, 2, 3, 4]);
    }
}
