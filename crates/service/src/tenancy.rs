//! The tenancy layer: per-tenant fair-share weights.
//!
//! In open-loop service mode tenants compete in an ongoing arrival stream,
//! so the scheduler's objective should favour tenants running below their
//! fair fraction of the cluster and damp tenants running above it. The
//! book tracks each tenant's held capacity and outstanding demand and
//! produces a multiplicative weight
//!
//! ```text
//! weight(t) = clamp(fair_fraction / actual_fraction(t), min, max)
//! ```
//!
//! where `fair_fraction` splits the cluster evenly across tenants with
//! demand and `actual_fraction(t)` is the share of currently-held nodes.
//! A tenant holding exactly its fair share gets weight 1.0; starved
//! tenants are boosted toward `max_weight`, hogs damped toward
//! `min_weight`. The accounting is plain integer tallies over a dense
//! `Vec` keyed by tenant index, so weights replay identically for the
//! same seed.

/// A tenant identity. Tenants are dense small integers; jobs map to
/// tenants by `service_id % tenants`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

/// Fair-share configuration.
#[derive(Debug, Clone)]
pub struct FairShareConfig {
    /// Number of tenants. `0` disables fair-share weighting entirely
    /// (every job gets weight exactly 1.0 — the closed-loop default).
    pub tenants: u32,
    /// Lower clamp on the weight of an over-served tenant.
    pub min_weight: f64,
    /// Upper clamp on the weight of a starved tenant.
    pub max_weight: f64,
}

impl FairShareConfig {
    /// Fair-share disabled: every job weighs exactly 1.0.
    pub fn disabled() -> Self {
        FairShareConfig {
            tenants: 0,
            min_weight: 1.0,
            max_weight: 1.0,
        }
    }

    /// Fair-share across `tenants` tenants with the default clamp.
    pub fn enabled(tenants: u32) -> Self {
        FairShareConfig {
            tenants,
            min_weight: 0.25,
            max_weight: 4.0,
        }
    }

    /// Whether weighting is active.
    pub fn is_enabled(&self) -> bool {
        self.tenants > 0
    }

    /// The tenant a job id maps to, or `None` when disabled.
    pub fn tenant_of(&self, service_id: u64) -> Option<TenantId> {
        if self.tenants == 0 {
            None
        } else {
            Some(TenantId((service_id % u64::from(self.tenants)) as u32))
        }
    }
}

/// Per-tenant running totals.
#[derive(Debug, Clone, Copy, Default)]
struct TenantLedger {
    /// Nodes currently held by running jobs of this tenant.
    held_nodes: u64,
    /// Nodes requested by this tenant's pending jobs.
    demand_nodes: u64,
}

/// Fair-fraction accounting across tenants.
#[derive(Debug, Clone)]
pub struct FairShareBook {
    config: FairShareConfig,
    ledgers: Vec<TenantLedger>,
}

impl FairShareBook {
    pub fn new(config: FairShareConfig) -> Self {
        let n = config.tenants as usize;
        FairShareBook {
            config,
            ledgers: vec![TenantLedger::default(); n],
        }
    }

    pub fn config(&self) -> &FairShareConfig {
        &self.config
    }

    /// Resets the per-cycle snapshot. The book is rebuilt from the
    /// scheduler's views each cycle rather than updated incrementally, so
    /// it can never drift from the engine's ground truth.
    pub fn begin_cycle(&mut self) {
        for ledger in &mut self.ledgers {
            *ledger = TenantLedger::default();
        }
    }

    /// Records `nodes` held by a running job of the tenant owning
    /// `service_id`.
    pub fn observe_held(&mut self, service_id: u64, nodes: u64) {
        if let Some(TenantId(t)) = self.config.tenant_of(service_id) {
            self.ledgers[t as usize].held_nodes += nodes;
        }
    }

    /// Records `nodes` demanded by a pending job of the tenant owning
    /// `service_id`.
    pub fn observe_demand(&mut self, service_id: u64, nodes: u64) {
        if let Some(TenantId(t)) = self.config.tenant_of(service_id) {
            self.ledgers[t as usize].demand_nodes += nodes;
        }
    }

    /// The objective weight for a job of the tenant owning `service_id`.
    ///
    /// Exactly `1.0` when fair-share is disabled, when no tenant holds
    /// anything yet, or when the tenant sits at its fair fraction — so the
    /// closed-loop path multiplies by literal 1.0 and stays byte-identical.
    pub fn weight(&self, service_id: u64) -> f64 {
        let Some(TenantId(t)) = self.config.tenant_of(service_id) else {
            return 1.0;
        };
        let active = self
            .ledgers
            .iter()
            .filter(|l| l.held_nodes > 0 || l.demand_nodes > 0)
            .count();
        let total_held: u64 = self.ledgers.iter().map(|l| l.held_nodes).sum();
        if active == 0 || total_held == 0 {
            return 1.0;
        }
        let fair = 1.0 / active as f64;
        let held = self.ledgers[t as usize].held_nodes;
        if held == 0 {
            // Starved tenant with demand: maximum boost.
            return self.config.max_weight;
        }
        let actual = held as f64 / total_held as f64;
        (fair / actual).clamp(self.config.min_weight, self.config.max_weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_book_always_weighs_one() {
        let mut book = FairShareBook::new(FairShareConfig::disabled());
        book.observe_held(0, 100);
        for id in 0..10u64 {
            assert_eq!(book.weight(id), 1.0);
        }
    }

    #[test]
    fn empty_cluster_weighs_one() {
        let book = FairShareBook::new(FairShareConfig::enabled(4));
        assert_eq!(book.weight(0), 1.0);
    }

    #[test]
    fn tenant_at_fair_share_weighs_one() {
        let mut book = FairShareBook::new(FairShareConfig::enabled(2));
        book.observe_held(0, 4); // tenant 0
        book.observe_held(1, 4); // tenant 1
        assert_eq!(book.weight(0), 1.0);
        assert_eq!(book.weight(1), 1.0);
    }

    #[test]
    fn starved_tenant_is_boosted_and_hog_is_damped() {
        let mut book = FairShareBook::new(FairShareConfig::enabled(2));
        book.observe_held(0, 6); // tenant 0 hogs
        book.observe_held(1, 2); // tenant 1 starved
                                 // fair = 0.5; tenant 0 actual = 0.75 -> weight 2/3; tenant 1
                                 // actual = 0.25 -> weight 2.
        assert!(book.weight(0) < 1.0);
        assert!(book.weight(1) > 1.0);
        assert!((book.weight(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((book.weight(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_held_with_demand_gets_max_weight() {
        let mut book = FairShareBook::new(FairShareConfig::enabled(2));
        book.observe_held(0, 8); // tenant 0 holds everything
        book.observe_demand(1, 2); // tenant 1 only has demand
        assert_eq!(book.weight(1), 4.0);
    }

    #[test]
    fn weights_are_clamped() {
        // Eight active tenants, one holding the whole cluster: fair is
        // 0.125, the hog's raw weight 0.125 clamps up to min 0.25 and the
        // starved tenants clamp down to max 4.0.
        let mut book = FairShareBook::new(FairShareConfig::enabled(8));
        book.observe_held(0, 100);
        for t in 1..8u64 {
            book.observe_demand(t, 1);
        }
        assert_eq!(book.weight(0), 0.25);
        assert_eq!(book.weight(1), 4.0);
    }

    #[test]
    fn begin_cycle_clears_the_snapshot() {
        let mut book = FairShareBook::new(FairShareConfig::enabled(2));
        book.observe_held(0, 10);
        book.begin_cycle();
        assert_eq!(book.weight(1), 1.0);
    }
}
