//! Golden tests: one minimal offending artifact per diagnostic code.
//!
//! Every code the analysis engines can emit (`S001`–`S009` for STRL,
//! `M001`–`M007` for MILP, `L001`–`L004` for source invariants,
//! `C001`–`C004` for solve certification) is pinned here with the
//! smallest input that triggers it, so a behavior change in any pass
//! shows up as a golden diff. Error-severity MILP findings must
//! additionally carry a certificate that re-verifies against the model.

use std::fs;
use std::path::PathBuf;

use lint::{
    certify_solution, has_errors, lint_expr, lint_model, lint_workspace, validate_translation,
    Severity, StrlLintContext,
};
use tetrisched_cluster::{NodeId, NodeSet};
use tetrisched_milp::{Model, Sense, Solution, SolveStatus, SolverConfig, VarKind};
use tetrisched_strl::StrlExpr;

fn set(ids: &[u32]) -> NodeSet {
    NodeSet::from_ids(8, ids.iter().map(|&i| NodeId(i)))
}

fn ctx() -> StrlLintContext {
    StrlLintContext {
        now: 10,
        window_end: Some(100),
    }
}

/// Codes (with severities) of a lint result, for compact assertions.
fn codes(diags: &[lint::Diagnostic]) -> Vec<(&'static str, Severity)> {
    diags.iter().map(|d| (d.code, d.severity)).collect()
}

// ---- STRL codes -------------------------------------------------------

#[test]
fn s001_empty_set_is_error() {
    let e = StrlExpr::nck(set(&[]), 1, 10, 5, 1.0);
    assert_eq!(codes(&lint_expr(&e, &ctx())), [("S001", Severity::Error)]);
}

#[test]
fn s002_oversubscribed_nck_is_error_lnck_warning() {
    let e = StrlExpr::nck(set(&[0, 1]), 3, 10, 5, 1.0);
    assert_eq!(codes(&lint_expr(&e, &ctx())), [("S002", Severity::Error)]);
    let e = StrlExpr::lnck(set(&[0, 1]), 3, 10, 5, 1.0);
    assert_eq!(codes(&lint_expr(&e, &ctx())), [("S002", Severity::Warning)]);
}

#[test]
fn s003_zero_duration_is_warning() {
    let e = StrlExpr::nck(set(&[0, 1]), 1, 10, 0, 1.0);
    assert_eq!(codes(&lint_expr(&e, &ctx())), [("S003", Severity::Warning)]);
}

#[test]
fn s004_start_outside_window_is_error() {
    let past = StrlExpr::nck(set(&[0, 1]), 1, 5, 5, 1.0);
    assert_eq!(
        codes(&lint_expr(&past, &ctx())),
        [("S004", Severity::Error)]
    );
    let beyond = StrlExpr::nck(set(&[0, 1]), 1, 100, 5, 1.0);
    assert_eq!(
        codes(&lint_expr(&beyond, &ctx())),
        [("S004", Severity::Error)]
    );
    // Without a known window end, only the past is checkable.
    let no_window = StrlLintContext {
        now: 10,
        window_end: None,
    };
    assert!(lint_expr(&beyond, &no_window).is_empty());
}

#[test]
fn s005_dead_max_branch_is_warning() {
    let e = StrlExpr::max([
        StrlExpr::nck(set(&[0, 1]), 1, 10, 5, 4.0),
        StrlExpr::scale(0.0, StrlExpr::nck(set(&[0, 1]), 1, 10, 5, 4.0)),
    ]);
    let diags = lint_expr(&e, &ctx());
    assert!(diags.iter().any(|d| d.code == "S005"));
    assert!(!has_errors(&diags));
}

#[test]
fn s006_non_positive_value_is_warning() {
    let e = StrlExpr::nck(set(&[0, 1]), 1, 10, 5, -1.0);
    assert_eq!(codes(&lint_expr(&e, &ctx())), [("S006", Severity::Warning)]);
    let e = StrlExpr::scale(0.0, StrlExpr::nck(set(&[0, 1]), 1, 10, 5, 1.0));
    assert_eq!(codes(&lint_expr(&e, &ctx())), [("S006", Severity::Warning)]);
}

#[test]
fn s007_barrier_misuse_is_warning() {
    let healthy_child = || StrlExpr::nck(set(&[0, 1]), 1, 10, 5, 4.0);
    let e = StrlExpr::barrier(0.0, healthy_child());
    assert_eq!(codes(&lint_expr(&e, &ctx())), [("S007", Severity::Warning)]);
    let e = StrlExpr::barrier(10.0, healthy_child());
    assert_eq!(codes(&lint_expr(&e, &ctx())), [("S007", Severity::Warning)]);
    // A reachable barrier is clean.
    let e = StrlExpr::barrier(4.0, healthy_child());
    assert!(lint_expr(&e, &ctx()).is_empty());
}

#[test]
fn s008_empty_operator_is_warning() {
    for e in [
        StrlExpr::max([]),
        StrlExpr::min([]),
        StrlExpr::sum(Vec::new()),
    ] {
        assert_eq!(codes(&lint_expr(&e, &ctx())), [("S008", Severity::Warning)]);
    }
}

#[test]
fn s009_zero_k_is_error() {
    let e = StrlExpr::nck(set(&[0, 1]), 0, 10, 5, 1.0);
    assert_eq!(codes(&lint_expr(&e, &ctx())), [("S009", Severity::Error)]);
}

// ---- MILP codes -------------------------------------------------------

#[test]
fn m001_dangling_variable_is_warning() {
    let mut m = Model::maximize();
    m.add_var("orphan", VarKind::Continuous, 0.0, 1.0, 0.0);
    assert_eq!(codes(&lint_model(&m)), [("M001", Severity::Warning)]);
    // Objective weight or a constraint reference clears it.
    let mut m = Model::maximize();
    m.add_var("paid", VarKind::Continuous, 0.0, 1.0, 2.0);
    assert!(lint_model(&m).is_empty());
}

#[test]
fn m002_vacuous_row_is_warning() {
    let mut m = Model::maximize();
    m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
    m.add_constraint("empty", [], Sense::Le, 0.0);
    assert_eq!(codes(&lint_model(&m)), [("M002", Severity::Warning)]);
}

#[test]
fn m003_duplicate_rows_are_warning() {
    let mut m = Model::maximize();
    let x = m.add_var("x", VarKind::Continuous, 0.0, 5.0, 1.0);
    m.add_constraint("cap_a", [(x, 1.0)], Sense::Le, 4.0);
    m.add_constraint("cap_b", [(x, 1.0)], Sense::Le, 2.0);
    let diags = lint_model(&m);
    assert_eq!(codes(&diags), [("M003", Severity::Warning)]);
    assert!(diags[0].message.contains("cap_a"));
}

#[test]
fn m004_crossed_bounds_certificate_verifies() {
    let mut m = Model::maximize();
    let x = m.add_var("x", VarKind::Continuous, 2.0, 1.0, 1.0);
    m.add_constraint("touch", [(x, 1.0)], Sense::Le, 10.0);
    let diags = lint_model(&m);
    let d = diags.iter().find(|d| d.code == "M004").expect("M004");
    assert_eq!(d.severity, Severity::Error);
    let cert = d.certificate.as_ref().expect("certificate");
    assert!(cert.verify(&m).is_ok(), "{:?}", cert.verify(&m));
}

#[test]
fn m005_empty_integer_domain_certificate_verifies() {
    let mut m = Model::maximize();
    let x = m.add_var("x", VarKind::Integer, 0.2, 0.8, 1.0);
    m.add_constraint("touch", [(x, 1.0)], Sense::Le, 10.0);
    let diags = lint_model(&m);
    let d = diags.iter().find(|d| d.code == "M005").expect("M005");
    assert_eq!(d.severity, Severity::Error);
    let cert = d.certificate.as_ref().expect("certificate");
    assert!(cert.verify(&m).is_ok(), "{:?}", cert.verify(&m));
}

#[test]
fn m005_fractional_integer_bounds_are_warning() {
    let mut m = Model::maximize();
    m.add_var("x", VarKind::Integer, 0.5, 2.5, 1.0);
    let diags = lint_model(&m);
    assert_eq!(codes(&diags), [("M005", Severity::Warning)]);
}

#[test]
fn m006_big_m_conditioning_is_warning() {
    let mut m = Model::maximize();
    let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
    let y = m.add_var("y", VarKind::Continuous, 0.0, 1.0, 1.0);
    m.add_constraint("bigm", [(x, 1.0), (y, 1e8)], Sense::Le, 1e8);
    assert_eq!(codes(&lint_model(&m)), [("M006", Severity::Warning)]);
}

#[test]
fn m007_propagation_refuted_row_certificate_verifies() {
    // Two opposing rows over [0,1]^2: propagation pins x = y = 1 via the
    // `>= 2` row, after which `x + y <= 1` is violated by every remaining
    // point — an infeasibility no single bound crossing exposes.
    let mut m = Model::maximize();
    let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 1.0);
    let y = m.add_var("y", VarKind::Continuous, 0.0, 1.0, 1.0);
    m.add_constraint("cap", [(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
    m.add_constraint("demand", [(x, 1.0), (y, 1.0)], Sense::Ge, 2.0);
    let diags = lint_model(&m);
    let d = diags.iter().find(|d| d.code == "M007").expect("M007");
    assert_eq!(d.severity, Severity::Error);
    let cert = d.certificate.as_ref().expect("certificate");
    assert!(cert.verify(&m).is_ok(), "{:?}", cert.verify(&m));
}

// ---- Certification codes (C001–C004) ----------------------------------

/// A tiny knapsack whose audited solve yields a full certificate.
fn certified_solve() -> (Model, Solution) {
    let mut m = Model::maximize();
    let x = m.add_binary("x", 3.0);
    let y = m.add_binary("y", 2.0);
    m.add_constraint("cap", [(x, 2.0), (y, 1.0)], Sense::Le, 2.0);
    let sol = m
        .solve(&SolverConfig::exact().with_audit(true))
        .expect("bounded binary model must solve");
    assert_eq!(sol.status, SolveStatus::Optimal);
    (m, sol)
}

#[test]
fn c001_corrupted_primal_is_error() {
    let (m, mut sol) = certified_solve();
    sol.values[0] += 1.0; // Push the binary out of its domain.
    let diags = certify_solution(&m, &sol).diagnostics;
    let d = diags.iter().find(|d| d.code == "C001").expect("C001");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn c002_tampered_dual_certificate_is_error() {
    let (m, mut sol) = certified_solve();
    let audit = sol.audit.as_deref_mut().expect("audit attached");
    let mut tampered = false;
    for n in &mut audit.nodes {
        if let Some(lp) = &mut n.lp {
            lp.objective += 5.0;
            tampered = true;
        }
    }
    assert!(tampered, "expected an LP-certified node");
    let diags = certify_solution(&m, &sol).diagnostics;
    let d = diags.iter().find(|d| d.code == "C002").expect("C002");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn c003_unsupported_infeasibility_claim_is_error() {
    use lint::certify::{IncumbentSource, SolveAudit, SolveProof};
    let (m, _) = certified_solve();
    let mut sol = Solution::empty(SolveStatus::Infeasible);
    sol.audit = Some(Box::new(SolveAudit {
        solved_model: m.clone(),
        rel_gap: 0.0,
        limit_hit: false,
        nodes: Vec::new(),
        incumbent_source: IncumbentSource::None,
        proof: SolveProof::PresolveInfeasible { certificate: None },
    }));
    let diags = certify_solution(&m, &sol).diagnostics;
    let d = diags.iter().find(|d| d.code == "C003").expect("C003");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn c004_translation_mismatch_is_error() {
    // One leaf worth 1.0, zero nodes granted, but a claimed objective of
    // 1.0: value out of thin air.
    let e = StrlExpr::nck(set(&[0, 1]), 1, 10, 5, 1.0);
    let d = validate_translation(&e, &[0], 1.0, 1.0).expect_err("must reject");
    assert_eq!(d.code, "C004");
    assert_eq!(d.severity, Severity::Error);
}

// ---- Source invariants (L001–L004) ------------------------------------

/// Builds a throwaway mini-workspace seeded with one violation per source
/// rule, runs the workspace linter over it, and returns the findings.
fn seeded_workspace_codes() -> Vec<String> {
    let root = std::env::temp_dir().join(format!("srclint-golden-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let write = |rel: &str, body: &str| {
        let p = root.join(rel);
        fs::create_dir_all(p.parent().expect("temp paths have parents")).expect("mkdir");
        fs::write(p, body).expect("write");
    };
    write(
        "Cargo.toml",
        "[workspace]\nmembers = [\"crates/*\"]\n\n[workspace.dependencies]\nserde = \"1.0\"\n",
    );
    write(
        "crates/sim/src/engine2.rs",
        "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    write(
        "crates/cluster/src/alloc2.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    // The L002 rule extends to the simulator's hot paths.
    write(
        "crates/sim/src/engine3.rs",
        "pub fn g(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    write(
        "crates/milp/src/hashy.rs",
        "use std::collections::HashMap;\npub fn h() -> HashMap<u32, u32> { HashMap::new() }\n",
    );
    let report = lint_workspace(&root).expect("scan");
    let _ = fs::remove_dir_all(&root);
    report
        .diagnostics
        .iter()
        .map(|d| d.code.to_string())
        .collect()
}

#[test]
fn l001_through_l004_fire_on_seeded_violations() {
    let codes = seeded_workspace_codes();
    assert!(codes.contains(&"L001".to_string()), "{codes:?}");
    assert!(codes.contains(&"L003".to_string()), "{codes:?}");
    // L002 fires in both the ledger and (since PR 4) simulator subtrees.
    assert_eq!(
        codes.iter().filter(|c| *c == "L002").count(),
        2,
        "{codes:?}"
    );
    // L004 fires once per hash-collection mention (the `use` and the two
    // in the signature/body count as three lines here — assert presence,
    // not count, to stay robust to line merging).
    assert!(codes.contains(&"L004".to_string()), "{codes:?}");
}

#[test]
fn committed_tree_is_srclint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    assert!(root.join("Cargo.toml").exists());
    let report = lint_workspace(&root).expect("scan");
    assert!(
        report.diagnostics.is_empty(),
        "workspace must be lint-clean:\n{}",
        lint::render_pretty(&report.diagnostics)
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
}

// ---- Renderer round-trips on a real finding ---------------------------

#[test]
fn renderers_cover_certificates() {
    let mut m = Model::maximize();
    m.add_var("x", VarKind::Continuous, 2.0, 1.0, 1.0);
    let diags = lint_model(&m);
    assert!(has_errors(&diags));
    let pretty = lint::render_pretty(&diags);
    assert!(pretty.contains("M004"));
    assert!(pretty.contains("certificate"));
    let json = lint::render_json(&diags);
    assert!(json.contains("\"code\":\"M004\""));
    assert!(json.contains("\"certificate\""));
}
