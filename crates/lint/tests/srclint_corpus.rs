//! Golden tests for the token-based workspace lints (`L001`–`L011`) over
//! the on-disk fixture corpus in `tests/fixtures/corpus/`.
//!
//! The corpus is a miniature workspace: a hot-path root with one
//! violation of every L008 kind plus annotated-clean twins, L009/L010
//! violations next to their designated exemption files, a knob struct
//! with a dead field, and a needle file where every banned pattern
//! appears only inside strings, doc comments, and nested block comments.

use std::path::{Path, PathBuf};

use lint::src_lint::SrcLintReport;
use lint::Diagnostic;

fn corpus() -> SrcLintReport {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corpus");
    lint::lint_workspace(&root).expect("corpus scan")
}

fn with_code<'a>(report: &'a SrcLintReport, code: &str) -> Vec<&'a Diagnostic> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.code == code)
        .collect()
}

fn scan_tree(name: &str, files: &[(&str, &str)]) -> SrcLintReport {
    let dir = std::env::temp_dir().join(format!("srclint-corpus-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for (rel, content) in files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("temp tree");
        std::fs::write(&path, content).expect("write fixture");
    }
    let report = lint::lint_workspace(&dir).expect("scan");
    std::fs::remove_dir_all(&dir).expect("cleanup");
    report
}

#[test]
fn l008_flags_exactly_the_reachable_unannotated_sites() {
    let report = corpus();
    let l008 = with_code(&report, "L008");
    assert_eq!(l008.len(), 4, "panic, unwrap, expect, index: {l008:#?}");
    assert!(l008.iter().all(|d| d.context.contains("scheduler.rs")));
    let msgs: Vec<&str> = l008.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`panic!`")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`unwrap()`")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`expect()`")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("slice/array index")),
        "{msgs:?}"
    );
    // Every diagnostic names its call chain from the root.
    assert!(
        msgs.iter().all(|m| m.contains("Scheduler::cycle")),
        "{msgs:?}"
    );
    // The unreachable decoy and the annotated twins stay silent.
    assert!(!msgs.iter().any(|m| m.contains("unreachable")), "{msgs:?}");
    assert!(
        !msgs
            .iter()
            .any(|m| m.contains("Scheduler::annotated_index") || m.contains("Scheduler::boundary")),
        "{msgs:?}"
    );
}

#[test]
fn l008_reachable_set_is_reported_for_honesty() {
    let report = corpus();
    // cycle, pick, indexed, expected, annotated_index, boundary,
    // helper_panics — but not never_called or post_test_mod.
    assert_eq!(report.hot_path_fns, 7, "{report:#?}");
}

#[test]
fn l009_fires_in_solver_files_but_not_the_kernel_file() {
    let report = corpus();
    let l009 = with_code(&report, "L009");
    assert_eq!(l009.len(), 2, "float `==` and float `sum`: {l009:#?}");
    assert!(l009
        .iter()
        .all(|d| d.context.contains("milp/src/solver.rs")));
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.context.contains("kernels.rs")),
        "the designated kernel file is exempt: {report:#?}"
    );
}

#[test]
fn l010_fires_outside_the_seam_and_stays_silent_inside_it() {
    let report = corpus();
    let l010 = with_code(&report, "L010");
    // std::thread, static mut, AtomicUsize, std::sync, thread::spawn in
    // worker.rs — plus the deliberate service-crate primitives (which
    // draw L006 *and* L010; both contracts hold independently).
    let worker: Vec<_> = l010
        .iter()
        .filter(|d| d.context.contains("sim/src/worker.rs"))
        .collect();
    assert!(worker.len() >= 4, "{worker:#?}");
    assert!(
        !l010.iter().any(|d| d.context.contains("parallel")),
        "the parallel seam is the allowed home: {l010:#?}"
    );
}

#[test]
fn l011_flags_the_dead_knob_only() {
    let report = corpus();
    let l011 = with_code(&report, "L011");
    assert_eq!(l011.len(), 1, "{l011:#?}");
    assert!(l011[0].message.contains("TetriSchedConfig::dead_knob"));
    assert_eq!(report.knob_fields_checked, 2);
}

#[test]
fn l005_l006_l007_goldens() {
    let report = corpus();
    let l005 = with_code(&report, "L005");
    assert_eq!(l005.len(), 2, "telemetry import + call: {l005:#?}");
    let l006 = with_code(&report, "L006");
    assert!(
        l006.len() >= 5,
        "service threads/channels/clocks: {l006:#?}"
    );
    let l007 = with_code(&report, "L007");
    assert_eq!(l007.len(), 1, "{l007:#?}");
    assert!(l007[0].context.contains("core/src/other.rs"));
}

#[test]
fn needle_file_yields_exactly_its_one_real_violation() {
    let report = corpus();
    let needles: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.context.contains("needles.rs"))
        .collect();
    assert_eq!(needles.len(), 1, "only the real unwrap: {needles:#?}");
    assert_eq!(needles[0].code, "L002");
}

#[test]
fn test_masked_code_is_exempt_but_code_after_the_test_mod_is_not() {
    let report = corpus();
    let l002: Vec<_> = with_code(&report, "L002")
        .into_iter()
        .filter(|d| d.context.contains("scheduler.rs"))
        .collect();
    // `pick` (line 23) and `post_test_mod` (line 73) — but never the
    // unwrap inside `mod tests`.
    assert_eq!(l002.len(), 2, "{l002:#?}");
}

#[test]
fn l001_respects_the_wall_clock_allowlist() {
    let report = scan_tree(
        "l001",
        &[
            (
                "crates/reservation/src/lib.rs",
                "use std::time::Instant;\npub fn t() -> Instant { Instant::now() }\n",
            ),
            (
                "crates/sim/src/engine.rs",
                "use std::time::Instant;\npub fn t() -> Instant { Instant::now() }\n",
            ),
        ],
    );
    let l001 = with_code(&report, "L001");
    assert!(!l001.is_empty(), "{report:#?}");
    assert!(
        l001.iter().all(|d| d.context.contains("reservation")),
        "engine.rs is allowlisted: {l001:#?}"
    );
}

#[test]
fn l003_flags_unvendored_manifest_deps() {
    let report = scan_tree(
        "l003",
        &[(
            "crates/x/Cargo.toml",
            "[package]\nname = \"x\"\n\n[dependencies]\nserde = \"1.0\"\nmilp = { path = \"../milp\" }\n",
        )],
    );
    let l003 = with_code(&report, "L003");
    assert_eq!(l003.len(), 1, "{l003:#?}");
    assert!(l003[0].message.contains("`serde`"));
}

#[test]
fn l004_flags_hash_collections_in_solver_crates_only() {
    let report = scan_tree(
        "l004",
        &[
            (
                "crates/milp/src/lib.rs",
                "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> usize { m.len() }\n",
            ),
            (
                "crates/bench/src/lib.rs",
                "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> usize { m.len() }\n",
            ),
        ],
    );
    let l004 = with_code(&report, "L004");
    assert!(!l004.is_empty(), "{report:#?}");
    assert!(
        l004.iter().all(|d| d.context.contains("milp")),
        "bench is not solver-adjacent: {l004:#?}"
    );
}

#[test]
fn diagnostics_are_sorted_by_file_line_code() {
    let report = corpus();
    let keys: Vec<(String, u32, &str)> = report
        .diagnostics
        .iter()
        .map(|d| {
            let (f, l) = d.context.rsplit_once(':').expect("rel:line");
            (f.to_string(), l.parse().expect("line"), d.code)
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn corpus_root_exists_and_is_scanned() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/corpus");
    assert!(Path::new(&root).is_dir());
    let report = corpus();
    assert!(report.files_scanned >= 11, "{report:#?}");
    assert!(report.tokens_scanned > 500, "{report:#?}");
}
