//! Fixture: L009 float-determinism violations, plus literal needles that
//! must not fire.

pub fn close(a: f64, b: f64) -> bool {
    // L009: exact float equality.
    a == b
}

pub fn total(xs: &[f64]) -> f64 {
    // L009: float reduction outside the designated kernels.
    xs.iter().copied().sum::<f64>()
}

pub fn needle() -> &'static str {
    // The needle below lives in a string literal: no finding.
    "a == b && xs.iter().sum::<f64>()"
}
