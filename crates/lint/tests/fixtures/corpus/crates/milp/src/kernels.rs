//! Fixture: the designated fixed-order kernel file — L009 exempt.

pub fn fixed_sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

pub fn is_zero(x: f64) -> bool {
    x == 0.0
}
