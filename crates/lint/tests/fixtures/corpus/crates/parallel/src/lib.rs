//! Fixture: the concurrency seam — L010 exempt.

use std::sync::Mutex;
use std::thread;

pub fn seam(m: &Mutex<u32>) {
    let _ = thread::spawn(|| {});
    let _ = m;
}
