//! Fixture: L006 — threads, channels, and clocks in the service crate.

use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

pub fn now() -> Instant {
    Instant::now()
}
