//! Fixture: L005 — clock access inside the telemetry crate.

use std::time::Instant;

pub fn now() -> Instant {
    Instant::now()
}
