//! Fixture: L010 concurrency primitives outside the seam.

use std::thread;

static mut COUNTER: u64 = 0;

pub fn go(a: &std::sync::atomic::AtomicUsize) {
    thread::spawn(|| {});
    let _ = a;
}
