//! Fixture: every banned needle, in trivia and literals only — the token
//! port must produce exactly ONE finding in this file (the real unwrap at
//! the bottom) and nothing for the needles.
//!
//! Doc-comment needles: Instant::now(), SystemTime, .unwrap(), HashMap,
//! HashSet, std::time, ladder_rung, Mutex, std::thread, static mut,
//! AtomicU64, panic!(), xs.iter().sum::<f64>().

/* nested /* SystemTime std::sync::Mutex x.unwrap() */ HashMap */

pub fn needles() -> (&'static str, &'static str) {
    let plain = "Instant::now() and SystemTime and HashMap<u32, u32>";
    let raw = r##"ladder_rung = 3; static mut X; thread::spawn; a == 1.0"##;
    (plain, raw)
}

/// A real violation after the needles proves the port misses nothing.
pub fn real(x: Option<u32>) -> u32 {
    x.unwrap()
}
