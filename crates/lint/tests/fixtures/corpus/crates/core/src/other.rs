//! Fixture: L007 — rung access outside the governor.

pub fn sneak(d: &mut super::governor::Diag) {
    d.ladder_rung = 3;
}
