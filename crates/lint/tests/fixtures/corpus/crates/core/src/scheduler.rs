//! Fixture: the L008 hot-path root plus one violation of each kind,
//! one annotated-clean twin of each kind, and one unreachable decoy.
//!
//! This file is never compiled — it is lexed by the corpus test.

pub struct Scheduler {
    jobs: Vec<u32>,
}

impl Scheduler {
    /// The L008 root: everything called from here is hot.
    pub fn cycle(&mut self) {
        let j = self.pick();
        helper_panics(j as usize);
        self.indexed(0);
        self.expected();
        self.annotated_index(0);
        self.boundary();
    }

    fn pick(&self) -> u32 {
        // L008 (and L002): unwrap reachable from the root.
        self.jobs.first().copied().unwrap()
    }

    fn indexed(&self, i: usize) -> u32 {
        // L008: slice index without a checked-indexing annotation.
        self.jobs[i]
    }

    fn expected(&self) -> u32 {
        // L008: expect without an expect-boundary annotation.
        self.jobs.first().copied().expect("non-empty")
    }

    // srclint: checked-indexing: fixture golden — i is always 0 here and
    // jobs is non-empty by construction.
    fn annotated_index(&self, i: usize) -> u32 {
        self.jobs[i]
    }

    // srclint: expect-boundary: fixture golden — the invariant holds by
    // construction.
    fn boundary(&self) -> u32 {
        self.jobs.first().copied().expect("non-empty")
    }
}

fn helper_panics(n: usize) {
    if n > 3 {
        // L008: panic!-family macro reachable from the root.
        panic!("fixture: reachable panic");
    }
}

fn never_called() {
    // NOT reachable from `cycle`: must not produce an L008 finding.
    unreachable!("fixture decoy");
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked() {
        // An unwrap under #[cfg(test)] must not fire.
        let _ = Some(1).unwrap();
    }
}

/// Code *after* the test module is still analyzed: L002 must fire here.
pub fn post_test_mod(x: Option<u32>) -> u32 {
    x.unwrap()
}
