//! Fixture: operator knob struct for L011 — one live field, one dead.

pub struct TetriSchedConfig {
    pub live_knob: u32,
    /// L011: written below but never read anywhere in the corpus.
    pub dead_knob: u32,
}

pub fn apply(cfg: &TetriSchedConfig) -> u32 {
    cfg.live_knob + 1
}

pub fn reset(cfg: &mut TetriSchedConfig) {
    // A write alone does not count as a read.
    cfg.dead_knob = 0;
}
