//! Fixture: the ladder-rung owner file — L007 exempt.

pub struct Diag {
    pub ladder_rung: u8,
}

pub fn stamp(d: &mut Diag) {
    d.ladder_rung = 1;
}
