//! Property tests for the hand-rolled lexer: totality (never panics on
//! any byte sequence) and losslessness (tokens tile the input exactly).

use lint::{lex, TokenKind};
use proptest::prelude::*;

/// Rust-flavored source fragments, concatenated in random order to hit
/// the lexer's tricky paths: raw strings, nested comments, byte/char
/// literals, lifetimes, float-vs-range digits, and stray non-UTF8 bytes.
const FRAGMENTS: &[&str] = &[
    "fn f(",
    ") -> &'a str {",
    "}",
    "\"str \\\" lit\"",
    "r#\"raw \" inside\"#",
    "r##\"deeper \"# still\"##",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "c\"c string\"",
    "/* block /* nested */ tail */",
    "// line comment\n",
    "/// doc needle: Instant::now()\n",
    "'x'",
    "'\\n'",
    "b'\\xff'",
    "'static",
    "'_",
    "1.5e-3",
    "0x_ff",
    "1..2",
    "1.0f64",
    "ident",
    "r#type",
    "::",
    "==",
    "=>",
    "..=",
    ".unwrap()",
    "#[cfg(test)]",
    "\u{2764}",
    " \t\r\n",
];

fn fragment_soup() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0usize..FRAGMENTS.len(), 0..48).prop_map(|ixs| {
        let mut out = Vec::new();
        for ix in ixs {
            out.extend_from_slice(FRAGMENTS[ix].as_bytes());
        }
        out
    })
}

fn arbitrary_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u16..256, 0..256)
        .prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

/// Tokens must tile the input: start at 0, abut exactly, end at len, and
/// re-concatenate to the original bytes.
fn assert_lossless(src: &[u8]) {
    let tokens = lex(src);
    let mut pos = 0usize;
    let mut rebuilt: Vec<u8> = Vec::with_capacity(src.len());
    for t in &tokens {
        assert_eq!(t.start, pos, "gap or overlap at byte {pos}");
        assert!(t.end > t.start, "empty token at byte {pos}");
        rebuilt.extend_from_slice(t.bytes(src));
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens do not cover the tail");
    assert_eq!(rebuilt, src, "round-trip mismatch");
}

proptest! {
    #[test]
    fn lexer_is_total_and_lossless_on_arbitrary_bytes(src in arbitrary_bytes()) {
        assert_lossless(&src);
    }

    #[test]
    fn lexer_is_total_and_lossless_on_rusty_soup(src in fragment_soup()) {
        assert_lossless(&src);
        // Soup built from valid fragments must lex without ever producing
        // a zero-width token and with monotone line numbers.
        let tokens = lex(&src);
        let mut line = 1;
        for t in &tokens {
            assert!(t.line >= line, "line numbers must be monotone");
            line = t.line;
        }
    }
}

#[test]
fn trivia_classification_is_stable() {
    let src = b"fn f() { /* c */ 1.0 } // t\n";
    let tokens = lex(src);
    assert!(tokens
        .iter()
        .any(|t| t.kind == TokenKind::BlockComment && t.is_trivia()));
    assert!(tokens
        .iter()
        .any(|t| t.kind == TokenKind::LineComment && t.is_trivia()));
    assert!(tokens
        .iter()
        .any(|t| t.kind == TokenKind::Num && !t.is_trivia()));
}
