//! Self-application: `srclint` must run clean on the workspace that
//! ships it — including this lint crate itself — and must do so inside
//! its runtime budget. The honesty guards assert the workspace scan
//! actually armed the call-graph and knob passes (a fixture-shaped tree
//! reports zero for both).

use std::path::PathBuf;
use std::time::Instant;

#[test]
fn srclint_is_clean_on_its_own_workspace() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let t0 = Instant::now();
    let report = lint::lint_workspace(&root).expect("workspace scan");
    let elapsed = t0.elapsed();

    assert!(
        report.diagnostics.is_empty(),
        "srclint findings on its own workspace:\n{}",
        lint::render_pretty(&report.diagnostics)
    );
    // Honesty guards: the scan must have found the scheduler root and the
    // knob structs — otherwise "clean" would mean "disarmed".
    assert!(
        report.hot_path_fns >= 20,
        "L008 reachable set suspiciously small: {}",
        report.hot_path_fns
    );
    assert!(
        report.knob_fields_checked >= 5,
        "L011 checked only {} knob fields",
        report.knob_fields_checked
    );
    assert!(
        report.files_scanned >= 80,
        "only {} files scanned",
        report.files_scanned
    );
    assert!(report.tokens_scanned > 100_000, "{}", report.tokens_scanned);

    // Runtime budget: <2s is asserted in CI against the release binary;
    // here allow debug-build headroom while still catching regressions
    // that would blow the release budget.
    let budget = if cfg!(debug_assertions) { 20.0 } else { 2.0 };
    assert!(
        elapsed.as_secs_f64() < budget,
        "workspace scan took {:.2}s (budget {budget}s)",
        elapsed.as_secs_f64()
    );
}
