//! Item-level source model on top of the [`crate::lexer`] token stream.
//!
//! One pass over a file's significant tokens recovers the structure the
//! workspace lints need — without a full Rust parser:
//!
//! - **Items**: `mod`/`impl`/`trait`/`fn`/`struct`/`use` boundaries, with
//!   brace-matched bodies and a scope stack giving every `fn` its module
//!   path and (for methods) its `impl` type.
//! - **Test scoping**: `#[cfg(test)]` / `#[test]` items are brace-matched,
//!   so code *after* a test module is still analyzed (the old line scanner
//!   gave up at the first marker) and nothing *inside* one leaks findings.
//! - **Call sites**: `name(…)`, `Qualifier::name(…)`, `.name(…)` (with or
//!   without turbofish), and `name!(…)` macro invocations per function
//!   body — the edges of the panic-reachability call graph (`L008`).
//! - **Index expressions**: `expr[…]` subscripts, the slice-index panic
//!   class.
//! - **Annotations**: `// srclint: <marker>: <reason>` comments attached
//!   to the function they immediately precede. Markers are the audited
//!   escape hatch for `L008` (`expect-boundary`, `checked-indexing`);
//!   every one carries its justification in-line.
//! - **Knob structs**: field names of config structs, for the dead-knob
//!   lint (`L011`).
//!
//! The model is an over-approximation by design: call resolution is
//! name-based (scoped by explicit `Type::` qualifiers where present), so
//! the `L008` reachable set can only err toward including more code, never
//! toward silently excluding a hot path.

use crate::lexer::{lex, Token, TokenKind};

/// Rust keywords — never call names, never index receivers.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "yield",
];

pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

/// A `// srclint: <marker>: <reason>` annotation comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// The marker, e.g. `expect-boundary` or `checked-indexing`.
    pub marker: String,
    /// The justification text after the marker (may be empty — lints that
    /// honour a marker require it to be non-empty, keeping escapes
    /// auditable).
    pub reason: String,
    pub line: u32,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Explicit path qualifier, if any: `Model` in `Model::new(…)`,
    /// `Self` in `Self::solve(…)`. `None` for bare calls and `.method()`
    /// receivers.
    pub qualifier: Option<String>,
    /// Callee name (last path segment).
    pub name: String,
    /// Whether this is a `.name(…)` method call.
    pub is_method: bool,
    pub line: u32,
}

/// A function item (free function, method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The bare name.
    pub name: String,
    /// Module path within the file (e.g. `["imp", "detail"]`).
    pub module: Vec<String>,
    /// `impl`/`trait` type the fn is a method of, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Significant-token index range of the body, *exclusive* of the
    /// outer braces. Empty for bodyless declarations.
    pub body: (usize, usize),
    /// Whether the item is test code (`#[test]`, `#[cfg(test)]`, or
    /// lexically inside a test-scoped item).
    pub is_test: bool,
    /// `srclint:` annotations attached to this fn.
    pub annotations: Vec<Annotation>,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Macro invocations in the body (`name` of `name!(…)`).
    pub macros: Vec<(String, u32)>,
    /// Lines of `expr[…]` index expressions in the body.
    pub index_sites: Vec<u32>,
    /// Lines of `.unwrap(` calls in the body.
    pub unwrap_sites: Vec<u32>,
    /// Lines of `.expect(` calls in the body.
    pub expect_sites: Vec<u32>,
}

impl FnItem {
    /// Display path: `module::Type::name`.
    pub fn qualified(&self) -> String {
        let mut parts: Vec<&str> = self.module.iter().map(String::as_str).collect();
        if let Some(t) = &self.impl_type {
            parts.push(t);
        }
        parts.push(&self.name);
        parts.join("::")
    }

    /// Whether an annotation with `marker` and a non-empty reason is
    /// attached.
    pub fn has_annotation(&self, marker: &str) -> bool {
        self.annotations
            .iter()
            .any(|a| a.marker == marker && !a.reason.trim().is_empty())
    }
}

/// A struct item and its named fields (tuple/unit structs record none).
#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub line: u32,
    /// `(field name, line)` pairs, declaration order.
    pub fields: Vec<(String, u32)>,
}

/// A parsed source file: token stream plus the item model.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    pub src: Vec<u8>,
    /// The full lossless token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Per-`sig`-index: whether the token is inside test code.
    pub test_mask: Vec<bool>,
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    /// `use` declaration paths, textually (whitespace-stripped).
    pub uses: Vec<String>,
}

impl SourceFile {
    /// Text of the significant token at sig-index `i`.
    pub fn sig_text(&self, i: usize) -> std::borrow::Cow<'_, str> {
        self.tokens[self.sig[i]].text(&self.src)
    }

    /// Kind of the significant token at sig-index `i`.
    pub fn sig_kind(&self, i: usize) -> TokenKind {
        self.tokens[self.sig[i]].kind
    }

    /// Line of the significant token at sig-index `i`.
    pub fn sig_line(&self, i: usize) -> u32 {
        self.tokens[self.sig[i]].line
    }

    /// Whether sig tokens `i` and `i + 1` are adjacent in the source
    /// (no trivia between) — how multi-byte operators like `::`, `==`,
    /// and `!=` are recognized over single-byte `Punct` tokens.
    pub fn sig_adjacent(&self, i: usize) -> bool {
        match (self.sig.get(i), self.sig.get(i + 1)) {
            (Some(&a), Some(&b)) => self.tokens[a].end == self.tokens[b].start,
            _ => false,
        }
    }

    /// Whether the sig token at `i` is the punctuation byte `p`.
    /// Out-of-range indices are simply not that punctuation.
    pub fn is_punct(&self, i: usize, p: &str) -> bool {
        match self.sig.get(i) {
            Some(&raw) => {
                self.tokens[raw].kind == TokenKind::Punct
                    && self.tokens[raw].bytes(&self.src) == p.as_bytes()
            }
            None => false,
        }
    }

    /// Whether sig tokens starting at `i` spell the operator `op`
    /// (adjacent single-byte puncts), e.g. `::` or `==`.
    pub fn is_op(&self, i: usize, op: &str) -> bool {
        for (k, ch) in op.chars().enumerate() {
            if !self.is_punct(i + k, &ch.to_string()) {
                return false;
            }
            if k + 1 < op.len() && !self.sig_adjacent(i + k) {
                return false;
            }
        }
        // The operator must not extend further (`==` is not `===`, and
        // `..=` must not read as `.` + `.`).
        if let Some(last) = op.chars().last() {
            let j = i + op.len() - 1;
            if self.sig_adjacent(j) {
                if let Some(&nb) = self.sig.get(j + 1) {
                    if self.tokens[nb].kind == TokenKind::Punct {
                        let nxt = self.tokens[nb].text(&self.src).to_string();
                        // Extensions that change the operator's meaning.
                        let joined = format!("{last}{nxt}");
                        if matches!(joined.as_str(), "==" | "=>" | "::" | "..") {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Parses `bytes` into a source model. Total: never panics, even on
    /// unbalanced or non-UTF-8 input; unclosed scopes simply end at EOF.
    pub fn parse(rel: &str, bytes: Vec<u8>) -> SourceFile {
        let tokens = lex(&bytes);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let mut file = SourceFile {
            rel: rel.to_string(),
            src: bytes,
            test_mask: vec![false; sig.len()],
            tokens,
            sig,
            fns: Vec::new(),
            structs: Vec::new(),
            uses: Vec::new(),
        };
        Parser::new(&mut file).run();
        for f in 0..file.fns.len() {
            let (calls, macros, index_sites, unwrap_sites, expect_sites) =
                scan_body(&file, file.fns[f].body);
            let item = &mut file.fns[f];
            item.calls = calls;
            item.macros = macros;
            item.index_sites = index_sites;
            item.unwrap_sites = unwrap_sites;
            item.expect_sites = expect_sites;
        }
        file
    }
}

/// One entry of the parser's scope stack.
#[derive(Debug, Clone)]
struct Scope {
    /// Module name (for `mod` scopes) — extends the module path.
    module: Option<String>,
    /// Impl/trait type (for `impl`/`trait` scopes).
    impl_type: Option<String>,
    /// Whether the scope is test code.
    test: bool,
}

struct Parser<'f> {
    file: &'f mut SourceFile,
    /// Cursor over sig indices.
    i: usize,
    scopes: Vec<Scope>,
    /// Pending `srclint:` annotations (from trivia) awaiting the next fn.
    pending_markers: Vec<Annotation>,
    /// A pending `#[cfg(test)]` / `#[test]` attribute awaiting an item.
    pending_test: bool,
    /// Sig index where the pending attribute run started (for masking).
    pending_attr_start: Option<usize>,
}

impl<'f> Parser<'f> {
    fn new(file: &'f mut SourceFile) -> Self {
        Parser {
            file,
            i: 0,
            scopes: Vec::new(),
            pending_markers: Vec::new(),
            pending_test: false,
            pending_attr_start: None,
        }
    }

    fn in_test(&self) -> bool {
        self.scopes.iter().any(|s| s.test)
    }

    fn module_path(&self) -> Vec<String> {
        self.scopes
            .iter()
            .filter_map(|s| s.module.clone())
            .collect()
    }

    fn impl_type(&self) -> Option<String> {
        self.scopes.iter().rev().find_map(|s| s.impl_type.clone())
    }

    fn text(&self, i: usize) -> String {
        self.file.sig_text(i).into_owned()
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        if i < self.file.sig.len() {
            Some(self.file.sig_kind(i))
        } else {
            None
        }
    }

    /// Collects `srclint:` annotations out of the trivia gap *before* sig
    /// token `i` (comments between the previous significant token and
    /// this one).
    fn harvest_markers(&mut self, i: usize) {
        let lo = if i == 0 { 0 } else { self.file.sig[i - 1] + 1 };
        let hi = match self.file.sig.get(i) {
            Some(&raw) => raw,
            None => self.file.tokens.len(),
        };
        for raw in lo..hi {
            let t = self.file.tokens[raw];
            if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                let text = t.text(&self.file.src).into_owned();
                if let Some(rest) = text.split("srclint:").nth(1) {
                    let rest = rest.trim();
                    let (marker, reason) = match rest.split_once(':') {
                        Some((m, r)) => (m.trim().to_string(), r.trim().to_string()),
                        None => (rest.trim_end_matches('.').to_string(), String::new()),
                    };
                    if !marker.is_empty() {
                        self.pending_markers.push(Annotation {
                            marker,
                            reason,
                            line: t.line,
                        });
                    }
                }
            }
        }
    }

    /// Finds the sig index of the brace that closes the `{` at `open`.
    /// Returns the index just past the end on unbalanced input.
    fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.file.sig.len() {
            if self.file.is_punct(j, "{") {
                depth += 1;
            } else if self.file.is_punct(j, "}") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.file.sig.len()
    }

    /// Marks sig range `[lo, hi]` as test code.
    fn mask_test(&mut self, lo: usize, hi: usize) {
        for m in self
            .file
            .test_mask
            .iter_mut()
            .take(hi.saturating_add(1).min(self.file.sig.len()))
            .skip(lo)
        {
            *m = true;
        }
    }

    fn run(&mut self) {
        let n = self.file.sig.len();
        while self.i < n {
            self.harvest_markers(self.i);
            if self.i >= n {
                break;
            }
            let i = self.i;
            // Scope masking: anything inside a test scope is test code.
            if self.in_test() {
                self.file.test_mask[i] = true;
            }
            match self.kind(i) {
                Some(TokenKind::Punct) => {
                    let t = self.text(i);
                    match t.as_str() {
                        "#" => {
                            self.attribute();
                            continue;
                        }
                        "{" => {
                            self.scopes.push(Scope {
                                module: None,
                                impl_type: None,
                                test: self.in_test(),
                            });
                            self.clear_pending();
                        }
                        "}" => {
                            self.scopes.pop();
                            self.clear_pending();
                        }
                        ";" => self.clear_pending(),
                        _ => {}
                    }
                    self.i += 1;
                }
                Some(TokenKind::Ident) => {
                    let t = self.text(i);
                    match t.as_str() {
                        "fn" => self.fn_item(),
                        "mod" => self.mod_item(),
                        "impl" => self.impl_item(),
                        "trait" => self.trait_item(),
                        "struct" => self.struct_item(),
                        "union" => self.struct_item(),
                        "use" => self.use_item(),
                        // Modifier keywords between attrs and the item
                        // keyword: keep pending state alive.
                        "pub" | "unsafe" | "async" | "extern" | "const" | "default" => {
                            self.i += 1;
                        }
                        _ => {
                            self.i += 1;
                        }
                    }
                }
                Some(_) => {
                    self.i += 1;
                }
                None => break,
            }
        }
    }

    fn clear_pending(&mut self) {
        self.pending_markers.clear();
        self.pending_test = false;
        self.pending_attr_start = None;
    }

    /// Parses an attribute at the cursor (`#` or `#!`), bracket-matched.
    fn attribute(&mut self) {
        let start = self.i;
        let mut j = self.i + 1;
        let inner = j < self.file.sig.len() && self.file.is_punct(j, "!");
        if inner {
            j += 1;
        }
        if j >= self.file.sig.len() || !self.file.is_punct(j, "[") {
            self.i += 1;
            return;
        }
        // Bracket-match to the closing `]`, collecting the attr body.
        let mut depth = 0usize;
        let mut body = String::new();
        while j < self.file.sig.len() {
            let t = self.text(j);
            if self.file.is_punct(j, "[") {
                depth += 1;
            } else if self.file.is_punct(j, "]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            body.push_str(&t);
            j += 1;
        }
        let is_test_attr = {
            let b = body.trim_start_matches('[');
            b == "test"
                || b.starts_with("cfg") && b.contains("test") && !b.contains("not(test")
                || b.starts_with("cfg_attr") && b.contains("test")
        };
        if is_test_attr && !inner {
            self.pending_test = true;
        }
        if self.pending_attr_start.is_none() {
            self.pending_attr_start = Some(start);
        }
        self.i = (j + 1).min(self.file.sig.len());
    }

    fn fn_item(&mut self) {
        let fn_kw = self.i;
        let n = self.file.sig.len();
        // A `fn` not followed by a name is a function-pointer type.
        let name_at = fn_kw + 1;
        if name_at >= n || self.kind(name_at) != Some(TokenKind::Ident) {
            self.i += 1;
            return;
        }
        let name = self.text(name_at);
        // Scan to the body `{` (or `;` for bodyless decls) at bracket
        // depth 0 — parens/brackets from params and return types nest.
        let mut j = name_at + 1;
        let mut paren = 0i64;
        let mut bracket = 0i64;
        let mut body_open = None;
        while j < n {
            if self.file.is_punct(j, "(") {
                paren += 1;
            } else if self.file.is_punct(j, ")") {
                paren -= 1;
            } else if self.file.is_punct(j, "[") {
                bracket += 1;
            } else if self.file.is_punct(j, "]") {
                bracket -= 1;
            } else if paren <= 0 && bracket <= 0 && self.file.is_punct(j, "{") {
                body_open = Some(j);
                break;
            } else if paren <= 0 && bracket <= 0 && self.file.is_punct(j, ";") {
                break;
            }
            j += 1;
        }
        let is_test = self.in_test() || self.pending_test;
        let body = match body_open {
            Some(open) => {
                let close = self.match_brace(open);
                (open + 1, close)
            }
            None => (j, j),
        };
        let item = FnItem {
            name,
            module: self.module_path(),
            impl_type: self.impl_type(),
            line: self.file.sig_line(fn_kw),
            body,
            is_test,
            annotations: std::mem::take(&mut self.pending_markers),
            calls: Vec::new(),
            macros: Vec::new(),
            index_sites: Vec::new(),
            unwrap_sites: Vec::new(),
            expect_sites: Vec::new(),
        };
        if is_test {
            let lo = self.pending_attr_start.unwrap_or(fn_kw);
            let hi = match body_open {
                Some(open) => self.match_brace(open),
                None => j,
            };
            self.mask_test(lo, hi);
        }
        self.file.fns.push(item);
        self.pending_test = false;
        self.pending_attr_start = None;
        // Continue parsing *inside* the body (nested fns, test mods)
        // by resuming just past the signature; the `{` pushes a plain
        // scope carrying the test flag.
        match body_open {
            Some(open) => {
                self.scopes.push(Scope {
                    module: None,
                    impl_type: None,
                    test: self.in_test() || is_test,
                });
                self.i = open + 1;
            }
            None => self.i = (j + 1).min(n),
        }
    }

    fn mod_item(&mut self) {
        let kw = self.i;
        let n = self.file.sig.len();
        let name = if kw + 1 < n && self.kind(kw + 1) == Some(TokenKind::Ident) {
            self.text(kw + 1)
        } else {
            self.i += 1;
            return;
        };
        let test = self.in_test() || self.pending_test;
        if kw + 2 < n && self.file.is_punct(kw + 2, "{") {
            if test {
                let close = self.match_brace(kw + 2);
                let lo = self.pending_attr_start.unwrap_or(kw);
                self.mask_test(lo, close);
            }
            self.scopes.push(Scope {
                module: Some(name),
                impl_type: None,
                test,
            });
            self.clear_pending();
            self.i = kw + 3;
        } else {
            // `mod name;` — an out-of-line module declaration.
            self.clear_pending();
            self.i = (kw + 2).min(n);
        }
    }

    /// Extracts the subject type of an `impl`/`trait` header and pushes
    /// its scope. For `impl Trait for Type`, the subject is `Type`.
    fn impl_item(&mut self) {
        let kw = self.i;
        let n = self.file.sig.len();
        let mut j = kw + 1;
        let mut after_for: Option<String> = None;
        let mut first: Option<String> = None;
        let mut angle = 0i64;
        while j < n && !self.file.is_punct(j, "{") && !self.file.is_punct(j, ";") {
            let t = self.text(j);
            match (self.kind(j), t.as_str()) {
                (Some(TokenKind::Punct), "<") => angle += 1,
                (Some(TokenKind::Punct), ">") => angle -= 1,
                (Some(TokenKind::Ident), "for") => {
                    after_for = None; // the next ident names the type
                    first = first.take(); // keep trait name as fallback
                    j += 1;
                    if j < n && self.kind(j) == Some(TokenKind::Ident) {
                        after_for = Some(self.text(j));
                    }
                    j += 1;
                    continue;
                }
                (Some(TokenKind::Ident), ident)
                    if angle == 0 && first.is_none() && !is_keyword(ident) =>
                {
                    first = Some(ident.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        let subject = after_for.or(first);
        if j < n && self.file.is_punct(j, "{") {
            let test = self.in_test() || self.pending_test;
            if test {
                let close = self.match_brace(j);
                let lo = self.pending_attr_start.unwrap_or(kw);
                self.mask_test(lo, close);
            }
            self.scopes.push(Scope {
                module: None,
                impl_type: subject,
                test,
            });
            self.clear_pending();
            self.i = j + 1;
        } else {
            self.clear_pending();
            self.i = (j + 1).min(n);
        }
    }

    fn trait_item(&mut self) {
        // `trait Name … {` — same shape as impl with the name right after.
        let kw = self.i;
        let n = self.file.sig.len();
        let name = if kw + 1 < n && self.kind(kw + 1) == Some(TokenKind::Ident) {
            Some(self.text(kw + 1))
        } else {
            None
        };
        let mut j = kw + 1;
        while j < n && !self.file.is_punct(j, "{") && !self.file.is_punct(j, ";") {
            j += 1;
        }
        if j < n && self.file.is_punct(j, "{") {
            let test = self.in_test() || self.pending_test;
            if test {
                let close = self.match_brace(j);
                let lo = self.pending_attr_start.unwrap_or(kw);
                self.mask_test(lo, close);
            }
            self.scopes.push(Scope {
                module: None,
                impl_type: name,
                test,
            });
            self.clear_pending();
            self.i = j + 1;
        } else {
            self.clear_pending();
            self.i = (j + 1).min(n);
        }
    }

    fn struct_item(&mut self) {
        let kw = self.i;
        let n = self.file.sig.len();
        let name = if kw + 1 < n && self.kind(kw + 1) == Some(TokenKind::Ident) {
            self.text(kw + 1)
        } else {
            self.i += 1;
            return;
        };
        let line = self.file.sig_line(kw);
        // Skip generics to the defining delimiter.
        let mut j = kw + 2;
        let mut angle = 0i64;
        while j < n {
            if self.file.is_punct(j, "<") {
                angle += 1;
            } else if self.file.is_punct(j, ">") {
                // `->` cannot appear here; plain decrement is safe.
                angle -= 1;
            } else if angle <= 0
                && (self.file.is_punct(j, "{")
                    || self.file.is_punct(j, "(")
                    || self.file.is_punct(j, ";"))
            {
                break;
            }
            j += 1;
        }
        let mut fields = Vec::new();
        if j < n && self.file.is_punct(j, "{") {
            let close = self.match_brace(j);
            // Field grammar at depth 1: `(attrs) (pub(..))? name :`.
            let mut k = j + 1;
            let mut depth = (0i64, 0i64, 0i64); // paren, bracket, brace
            while k < close {
                if self.file.is_punct(k, "(") {
                    depth.0 += 1;
                } else if self.file.is_punct(k, ")") {
                    depth.0 -= 1;
                } else if self.file.is_punct(k, "[") {
                    depth.1 += 1;
                } else if self.file.is_punct(k, "]") {
                    depth.1 -= 1;
                } else if self.file.is_punct(k, "{") {
                    depth.2 += 1;
                } else if self.file.is_punct(k, "}") {
                    depth.2 -= 1;
                } else if depth == (0, 0, 0)
                    && self.kind(k) == Some(TokenKind::Ident)
                    && k + 1 < close
                    && self.file.is_punct(k + 1, ":")
                    && !self.file.is_op(k + 1, "::")
                {
                    let t = self.text(k);
                    // Only at field position: previous sig is `{`, `,`,
                    // `]` (attr end), `)` (pub(crate)), or `pub` itself.
                    let prev_is_pub =
                        self.kind(k - 1) == Some(TokenKind::Ident) && self.text(k - 1) == "pub";
                    let prev_ok = k == j + 1
                        || self.file.is_punct(k - 1, ",")
                        || self.file.is_punct(k - 1, "]")
                        || self.file.is_punct(k - 1, ")")
                        || prev_is_pub;
                    if prev_ok && !is_keyword(&t) {
                        fields.push((t, self.file.sig_line(k)));
                    }
                }
                k += 1;
            }
            self.file.structs.push(StructItem { name, line, fields });
            // Do not descend into the braces as scopes — skip past.
            if self.in_test() || self.pending_test {
                let lo = self.pending_attr_start.unwrap_or(kw);
                self.mask_test(lo, close);
            }
            self.clear_pending();
            self.i = close + 1;
        } else {
            // Tuple / unit struct: record with no named fields.
            self.file.structs.push(StructItem { name, line, fields });
            self.clear_pending();
            self.i = (j + 1).min(n);
        }
    }

    fn use_item(&mut self) {
        let kw = self.i;
        let n = self.file.sig.len();
        let mut j = kw + 1;
        let mut path = String::new();
        let mut depth = 0i64;
        while j < n {
            if self.file.is_punct(j, "{") {
                depth += 1;
            } else if self.file.is_punct(j, "}") {
                depth -= 1;
            } else if depth <= 0 && self.file.is_punct(j, ";") {
                break;
            }
            path.push_str(&self.text(j));
            j += 1;
        }
        self.file.uses.push(path);
        self.clear_pending();
        self.i = (j + 1).min(n);
    }
}

/// Scans a fn body's sig range for call sites, macro invocations, index
/// expressions, and `.unwrap()`/`.expect()` uses.
#[allow(clippy::type_complexity)]
fn scan_body(
    file: &SourceFile,
    body: (usize, usize),
) -> (
    Vec<CallSite>,
    Vec<(String, u32)>,
    Vec<u32>,
    Vec<u32>,
    Vec<u32>,
) {
    let mut calls = Vec::new();
    let mut macros = Vec::new();
    let mut index_sites = Vec::new();
    let mut unwrap_sites = Vec::new();
    let mut expect_sites = Vec::new();
    let (lo, hi) = body;
    let hi = hi.min(file.sig.len());
    let mut j = lo;
    while j < hi {
        match file.sig_kind(j) {
            TokenKind::Ident => {
                let name = file.sig_text(j).into_owned();
                if is_keyword(&name) {
                    j += 1;
                    continue;
                }
                let line = file.sig_line(j);
                // Macro invocation: `name!` (but not `!=`).
                if j + 1 < hi && file.is_op(j + 1, "!") && !file.is_op(j + 1, "!=") {
                    macros.push((name, line));
                    j += 2;
                    continue;
                }
                // Qualifier of a path call: `Name::…` — remembered and
                // consumed by the final-segment logic below.
                let is_method = j > 0 && file.is_punct(j - 1, ".");
                // Skip a turbofish: `name::<…>` before the call parens.
                let mut k = j + 1;
                if k + 1 < hi && file.is_op(k, "::") && file.is_punct(k + 2, "<") {
                    let mut angle = 0i64;
                    k += 2;
                    while k < hi {
                        if file.is_punct(k, "<") {
                            angle += 1;
                        } else if file.is_punct(k, ">") {
                            angle -= 1;
                            if angle == 0 {
                                k += 1;
                                break;
                            }
                        } else if file.is_punct(k, ";") || file.is_punct(k, "{") {
                            break; // not a turbofish after all
                        }
                        k += 1;
                    }
                }
                if k < hi && file.is_punct(k, "(") {
                    // Qualifier = the ident two ops back if `Q::name(`.
                    let qualifier = if j >= 3
                        && file.is_op(j - 2, "::")
                        && file.sig_kind(j - 3) == TokenKind::Ident
                    {
                        let q = file.sig_text(j - 3).into_owned();
                        if is_keyword(&q) && q != "Self" && q != "self" {
                            None
                        } else {
                            Some(q)
                        }
                    } else {
                        None
                    };
                    if name == "unwrap" && is_method {
                        unwrap_sites.push(line);
                    } else if name == "expect" && is_method {
                        expect_sites.push(line);
                    }
                    calls.push(CallSite {
                        qualifier,
                        name,
                        is_method,
                        line,
                    });
                }
                j = k.max(j + 1);
            }
            TokenKind::Punct => {
                // Index expression: `[` whose previous sig token ends an
                // expression (ident, `]`, or `)`), and which is not a
                // macro-bracket (`vec![…]` — prev is `!`) or attribute.
                if file.is_punct(j, "[") && j > 0 {
                    let prev_kind = file.sig_kind(j - 1);
                    let prev = file.sig_text(j - 1);
                    let exprish = match prev_kind {
                        TokenKind::Ident => !is_keyword(&prev),
                        TokenKind::Punct => prev == "]" || prev == ")",
                        _ => false,
                    };
                    if exprish {
                        index_sites.push(file.sig_line(j));
                    }
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    (calls, macros, index_sites, unwrap_sites, expect_sites)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("test.rs", src.as_bytes().to_vec())
    }

    #[test]
    fn finds_fns_with_scopes() {
        let f = parse(
            "mod a { impl Widget { pub fn frob(&self) {} } }\n\
             fn free() {}\n\
             impl Tool for Hammer { fn hit(&self) {} }\n",
        );
        let quals: Vec<String> = f.fns.iter().map(|x| x.qualified()).collect();
        assert_eq!(quals, vec!["a::Widget::frob", "free", "Hammer::hit"]);
    }

    #[test]
    fn cfg_test_is_brace_matched_not_terminal() {
        let f = parse(
            "fn before() { hot(); }\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n\
             fn after() { also_hot(); }\n",
        );
        let after = f.fns.iter().find(|x| x.name == "after").expect("after fn");
        assert!(!after.is_test, "code after a test module is NOT test code");
        let helper = f.fns.iter().find(|x| x.name == "helper").expect("helper");
        assert!(helper.is_test);
        // The unwrap inside the test mod is masked.
        let unwrap_sig = (0..f.sig.len())
            .find(|&i| f.sig_text(i) == "unwrap")
            .expect("unwrap token");
        assert!(f.test_mask[unwrap_sig]);
        // `also_hot` is not masked.
        let hot_sig = (0..f.sig.len())
            .find(|&i| f.sig_text(i) == "also_hot")
            .expect("also_hot token");
        assert!(!f.test_mask[hot_sig]);
    }

    #[test]
    fn test_attr_masks_single_fn() {
        let f = parse("#[test]\nfn check() { assert!(true); }\nfn prod() {}\n");
        assert!(f.fns[0].is_test);
        assert!(!f.fns[1].is_test);
    }

    #[test]
    fn calls_and_qualifiers() {
        let f = parse(
            "fn driver() {\n\
                let m = Model::new(4);\n\
                helper(m);\n\
                m.solve();\n\
                let v: Vec<u32> = it.collect::<Vec<u32>>();\n\
                panic!(\"boom\");\n\
             }\n",
        );
        let d = &f.fns[0];
        let call = |n: &str| d.calls.iter().find(|c| c.name == n).expect(n);
        assert_eq!(call("new").qualifier.as_deref(), Some("Model"));
        assert!(call("helper").qualifier.is_none() && !call("helper").is_method);
        assert!(call("solve").is_method);
        assert!(call("collect").is_method);
        assert_eq!(d.macros, vec![("panic".to_string(), 6)]);
    }

    #[test]
    fn index_unwrap_expect_sites() {
        let f = parse(
            "fn f(xs: &[u32], o: Option<u32>) -> u32 {\n\
                let a = xs[0];\n\
                let b = o.unwrap();\n\
                let c = o.expect(\"why\");\n\
                let d = vec![1, 2];\n\
                let e: [u8; 4] = [0; 4];\n\
                a + b + c + d[1] as u32 + e[0] as u32\n\
             }\n",
        );
        let item = &f.fns[0];
        assert_eq!(item.index_sites, vec![2, 7, 7]);
        assert_eq!(item.unwrap_sites, vec![3]);
        assert_eq!(item.expect_sites, vec![4]);
    }

    #[test]
    fn annotations_attach_to_next_fn() {
        let f = parse(
            "// srclint: expect-boundary: config is validated at startup\n\
             pub fn load() { cfg.expect(\"validated\"); }\n\
             fn other() {}\n",
        );
        assert!(f.fns[0].has_annotation("expect-boundary"));
        assert!(!f.fns[1].has_annotation("expect-boundary"));
    }

    #[test]
    fn annotation_requires_reason() {
        let f = parse("// srclint: checked-indexing\nfn f(xs: &[u8]) -> u8 { xs[0] }\n");
        assert!(!f.fns[0].has_annotation("checked-indexing"));
    }

    #[test]
    fn struct_fields() {
        let f = parse(
            "pub struct Config {\n\
                /// Doc.\n\
                pub alpha: u64,\n\
                #[allow(dead_code)]\n\
                pub beta: Vec<(u32, u32)>,\n\
                gamma: BTreeMap<String, f64>,\n\
             }\n\
             struct Tuple(u32, u32);\n",
        );
        let cfg = &f.structs[0];
        let names: Vec<&str> = cfg.fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
        assert_eq!(f.structs[1].fields.len(), 0);
    }

    #[test]
    fn needles_in_strings_are_invisible() {
        let f = parse(
            "fn log() {\n\
                let msg = \"do not call .unwrap() or Instant::now here\";\n\
                print(msg);\n\
             }\n",
        );
        assert!(f.fns[0].unwrap_sites.is_empty());
        assert!(f.fns[0].calls.iter().all(|c| c.name != "now"));
    }

    #[test]
    fn total_on_garbage() {
        for src in ["fn", "impl {", "struct", "fn f(", "mod m {", "#[", "}}}"] {
            let _ = parse(src); // must not panic
        }
    }
}
