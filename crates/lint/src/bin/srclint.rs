//! `srclint`: the workspace invariant linter.
//!
//! Walks the workspace's `.rs`/`Cargo.toml` files, lexes every source
//! file ([`lint::lexer`]), and enforces the repo invariants documented in
//! DESIGN.md (codes `L001`–`L011`): simulation determinism (no stray
//! wall-clock reads), no `unwrap()` in scheduler/ledger/simulator hot
//! paths, no non-vendored dependencies, no hash-based collections in
//! solver-adjacent crates, panic-reachability over the scheduler call
//! graph, float-determinism in the solver crates, concurrency-readiness
//! outside the `crates/parallel` seam, and dead operator knobs. Offline
//! and fast; run it from anywhere inside the workspace:
//!
//! ```text
//! cargo run -p lint --bin srclint [-- --root <dir>] [--json] \
//!     [--deny-warnings] [--budget-ms <n>]
//! ```
//!
//! Exit codes: `0` clean, `1` Error-severity findings (or any finding
//! under `--deny-warnings`, or the runtime budget blown), `2` usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use lint::{lint_workspace, render_json, render_pretty, Severity};

/// Ascends from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut deny_warnings = false;
    let mut budget_ms: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("srclint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => budget_ms = Some(ms),
                None => {
                    eprintln!("srclint: --budget-ms requires an integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: srclint [--root <dir>] [--json] [--deny-warnings] \
                     [--budget-ms <n>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("srclint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("srclint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "srclint: no workspace root found above the current \
                         directory; pass --root"
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let t0 = Instant::now();
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("srclint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let elapsed = t0.elapsed();
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    let tokens_per_sec = report.tokens_scanned as f64 / elapsed.as_secs_f64().max(1e-9);

    if json {
        println!("{}", render_json(&report.diagnostics));
    } else if report.diagnostics.is_empty() {
        println!(
            "srclint: {} files clean under {}",
            report.files_scanned,
            root.display()
        );
    } else {
        print!("{}", render_pretty(&report.diagnostics));
    }
    // Stats go to stderr so `--json` stdout stays machine-parseable.
    eprintln!(
        "srclint: {} files, {} tokens, {} bytes in {elapsed_ms:.1} ms \
         ({:.1}M tokens/sec); hot-path fns: {}, knob fields: {}",
        report.files_scanned,
        report.tokens_scanned,
        report.bytes_scanned,
        tokens_per_sec / 1e6,
        report.hot_path_fns,
        report.knob_fields_checked,
    );

    if let Some(ms) = budget_ms {
        if elapsed_ms > ms as f64 {
            eprintln!("srclint: runtime budget blown: {elapsed_ms:.1} ms > {ms} ms");
            return ExitCode::from(1);
        }
    }

    let min_fatal = if deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    if report.diagnostics.iter().any(|d| d.severity >= min_fatal) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
