//! `srclint`: the workspace invariant linter.
//!
//! Walks the workspace's `.rs`/`Cargo.toml` files and enforces the repo
//! invariants documented in DESIGN.md (codes `L001`–`L004`): simulation
//! determinism (no stray wall-clock reads), no `unwrap()` in scheduler/
//! ledger/simulator hot paths, no non-vendored dependencies, and no
//! hash-based collections in solver-adjacent crates. Offline and fast;
//! run it from anywhere inside the workspace:
//!
//! ```text
//! cargo run -p lint --bin srclint [-- --root <dir>] [--json] [--deny-warnings]
//! ```
//!
//! Exit codes: `0` clean, `1` Error-severity findings (or any finding
//! under `--deny-warnings`), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::{lint_workspace, render_json, render_pretty, Severity};

/// Ascends from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut deny_warnings = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("srclint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                eprintln!("usage: srclint [--root <dir>] [--json] [--deny-warnings]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("srclint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("srclint: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "srclint: no workspace root found above the current \
                         directory; pass --root"
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("srclint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", render_json(&report.diagnostics));
    } else if report.diagnostics.is_empty() {
        println!(
            "srclint: {} files clean under {}",
            report.files_scanned,
            root.display()
        );
    } else {
        print!("{}", render_pretty(&report.diagnostics));
    }

    let min_fatal = if deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    if report.diagnostics.iter().any(|d| d.severity >= min_fatal) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
