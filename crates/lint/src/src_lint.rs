//! Workspace invariant linting over source files (codes `L001`–`L006`).
//!
//! The simulator's reproducibility and the offline build both rest on
//! conventions that rustc cannot enforce. This pass walks the workspace's
//! `.rs` and `Cargo.toml` files and machine-checks them:
//!
//! - `L001` — no wall-clock reads (`Instant::now` / `SystemTime`) outside
//!   an explicit allowlist. Simulated time must come from the engine;
//!   wall-clock is only legitimate for solver budgets and report timing.
//! - `L002` — no `unwrap()` in scheduler/ledger/simulator hot paths (the
//!   `cluster`, `core`, `milp`, and `sim` crates' non-test code).
//!   Invariants are spelled out with `expect()` or propagated as
//!   `Result`s.
//! - `L003` — no non-vendored dependency in any `Cargo.toml`: every entry
//!   must be a `path` dependency or inherit one via `workspace = true`
//!   (the build environment cannot reach crates.io).
//! - `L004` — no hash-based collections (`HashMap`/`HashSet`) in
//!   solver-adjacent crates (`milp`, `core`, `cluster`): iteration order
//!   feeds variable/constraint order and thus solver pivoting, so any
//!   hash-seed dependence would break run-to-run reproducibility and the
//!   certificate audit replay. Use `BTreeMap`/`BTreeSet`.
//! - `L005` — no process-clock access (`std::time` in any form) inside
//!   `crates/telemetry`: the telemetry registry's notion of time is
//!   *injected* by callers (`advance` for sim time, `observe_wall` for
//!   durations callers measured under their own `L001` allowlist entry).
//!   Unlike `L001` this rule has no allowlist, so the exporters stay
//!   byte-identical across same-seed runs by construction.
//! - `L006` — no threading/channel primitives (`std::thread`, `std::sync`,
//!   `mpsc`, `Mutex`, `RwLock`, `Condvar`) and no clock access (`std::time`
//!   in any form) inside `crates/service`: the service core is
//!   single-threaded and driven by the engine's virtual clock, which is
//!   what makes same-seed service-mode runs byte-identical. Like `L005`
//!   this rule has no allowlist.
//! - `L007` — the degradation ladder's rung is owned by `core::governor`:
//!   no non-test line in the core crate outside `governor.rs` may mention
//!   `ladder_rung` at all. Scheduler code reads the rung through
//!   `Governor::rung()` and publishes it through `Governor::stamp()`, so
//!   the hysteresis state machine is the *only* writer and the no-flap
//!   property proven for the governor holds for the whole scheduler.
//!
//! Test modules (`#[cfg(test)]` and beyond), `tests/`/`benches/` trees, and
//! comment lines are exempt from the `.rs` rules. The scan is line-based
//! and offline-friendly: no rustc, no network.

use std::fs;
use std::io;
use std::path::Path;

use tetrisched_milp::lint::{Diagnostic, Severity};

// The needles are assembled at compile time so this file does not match
// its own rules when the linter scans itself.
const WALL_CLOCK_PATTERNS: [&str; 2] = [concat!("Instant", "::now"), concat!("System", "Time")];
const UNWRAP_PATTERN: &str = concat!(".unwrap", "()");
const CFG_TEST_PATTERN: &str = concat!("#[cfg", "(test)]");
const HASH_COLLECTION_PATTERNS: [&str; 2] = [concat!("Hash", "Map"), concat!("Hash", "Set")];

/// Files (workspace-relative, `/`-separated) allowed to read the wall
/// clock: solver time budgets, engine cycle-latency metrics, and report
/// timing. Everything else must use simulated time.
const WALL_CLOCK_ALLOWLIST: [&str; 6] = [
    "crates/milp/src/branch_bound.rs",
    "crates/milp/src/backend.rs",
    "crates/sim/src/engine.rs",
    "crates/core/src/scheduler.rs",
    "crates/bench/src/bin/report.rs",
    "crates/criterion/src/lib.rs",
];

/// Crate subtrees whose non-test code must not call `unwrap()`.
const NO_UNWRAP_PREFIXES: [&str; 5] = [
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/milp/src/",
    "crates/service/src/",
    "crates/sim/src/",
];

/// Files allowed to keep `unwrap()` in hot paths. Kept honest and empty
/// after the PR-3 burn-down; add entries only with a comment explaining
/// the invariant.
const UNWRAP_ALLOWLIST: [&str; 0] = [];

/// Crate subtrees whose non-test code must not use hash-based collections:
/// everything whose iteration order can reach MILP variable/constraint
/// order or the solve audit.
const NO_HASH_COLLECTION_PREFIXES: [&str; 3] = [
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/milp/src/",
];

/// Files allowed to keep hash collections in solver-adjacent crates. Kept
/// honest and empty after the PR-4 burn-down; add entries only with a
/// comment explaining why iteration order provably cannot leak into model
/// construction or certification.
const HASH_COLLECTION_ALLOWLIST: [&str; 0] = [];

/// Crate subtrees that must never touch process clocks at all — not even
/// via an `L001` allowlist entry. The telemetry registry's time is
/// injected by its callers, which is what makes its exports byte-stable
/// across same-seed runs; deliberately no allowlist.
const CLOCK_INJECTED_PREFIXES: [&str; 1] = ["crates/telemetry/src/"];

/// Any `std::time` mention (broader than the `L001` needles: also catches
/// imports and `Duration`-producing clock plumbing).
const STD_TIME_PATTERN: &str = concat!("std::", "time");

/// Crate subtrees that must stay single-threaded, channel-free, and
/// clock-free: the service core is driven entirely by the engine's
/// virtual clock, so any thread, synchronization primitive, or clock
/// read would introduce scheduling nondeterminism. Deliberately no
/// allowlist.
const SINGLE_THREADED_PREFIXES: [&str; 1] = ["crates/service/src/"];

/// The ladder-rung needle for `L007` (assembled so this file does not
/// match itself).
const LADDER_RUNG_PATTERN: &str = concat!("ladder", "_rung");

/// The crate subtree `L007` guards and the single file inside it allowed
/// to touch the rung: the governor, whose hysteresis state machine is the
/// one authorized writer.
const LADDER_GUARDED_PREFIX: &str = "crates/core/src/";
const LADDER_OWNER_FILE: &str = "crates/core/src/governor.rs";

/// Threading/channel/synchronization needles for `L006`.
const THREADING_PATTERNS: [&str; 6] = [
    concat!("std::", "thread"),
    concat!("std::", "sync"),
    concat!("mp", "sc"),
    concat!("Mu", "tex"),
    concat!("Rw", "Lock"),
    concat!("Cond", "var"),
];

/// Result of a workspace scan.
#[derive(Debug, Default)]
pub struct SrcLintReport {
    /// Findings, in walk order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned (`.rs` + `Cargo.toml`).
    pub files_scanned: usize,
}

/// Scans the workspace rooted at `root` and returns all findings.
pub fn lint_workspace(root: &Path) -> io::Result<SrcLintReport> {
    let mut report = SrcLintReport::default();
    walk(root, root, &mut report)?;
    Ok(report)
}

fn walk(root: &Path, dir: &Path, report: &mut SrcLintReport) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, report)?;
        } else if name == "Cargo.toml" {
            report.files_scanned += 1;
            lint_manifest(root, &path, report)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            // Integration tests and benches may use wall clock and unwrap.
            if rel.split('/').any(|seg| seg == "tests" || seg == "benches") {
                continue;
            }
            report.files_scanned += 1;
            lint_rust_file(&rel, &path, report)?;
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn lint_rust_file(rel: &str, path: &Path, report: &mut SrcLintReport) -> io::Result<()> {
    let text = fs::read_to_string(path)?;
    let wall_clock_allowed = WALL_CLOCK_ALLOWLIST.contains(&rel);
    let unwrap_checked =
        NO_UNWRAP_PREFIXES.iter().any(|p| rel.starts_with(p)) && !UNWRAP_ALLOWLIST.contains(&rel);
    let hash_checked = NO_HASH_COLLECTION_PREFIXES
        .iter()
        .any(|p| rel.starts_with(p))
        && !HASH_COLLECTION_ALLOWLIST.contains(&rel);
    let clock_injected = CLOCK_INJECTED_PREFIXES.iter().any(|p| rel.starts_with(p));
    let ladder_guarded = rel.starts_with(LADDER_GUARDED_PREFIX) && rel != LADDER_OWNER_FILE;
    let single_threaded = SINGLE_THREADED_PREFIXES.iter().any(|p| rel.starts_with(p));
    for (i, line) in text.lines().enumerate() {
        // Everything from the first test-module marker on is test code.
        if line.contains(CFG_TEST_PATTERN) {
            break;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        let lineno = i + 1;
        if !wall_clock_allowed {
            for pat in WALL_CLOCK_PATTERNS {
                if trimmed.contains(pat) {
                    report.diagnostics.push(Diagnostic::new(
                        "L001",
                        Severity::Error,
                        format!(
                            "wall-clock read (`{pat}`) outside the allowlist breaks \
                             simulation determinism"
                        ),
                        format!("{rel}:{lineno}"),
                    ));
                }
            }
        }
        if unwrap_checked && trimmed.contains(UNWRAP_PATTERN) {
            report.diagnostics.push(Diagnostic::new(
                "L002",
                Severity::Error,
                "`unwrap()` in a scheduler/ledger hot path; use `expect()` with an \
                 invariant message or propagate a `Result`",
                format!("{rel}:{lineno}"),
            ));
        }
        if clock_injected {
            for pat in WALL_CLOCK_PATTERNS
                .iter()
                .chain(std::iter::once(&STD_TIME_PATTERN))
            {
                if trimmed.contains(pat) {
                    report.diagnostics.push(Diagnostic::new(
                        "L005",
                        Severity::Error,
                        format!(
                            "process-clock access (`{pat}`) inside the telemetry crate: \
                             time must be injected by callers (`advance` / \
                             `observe_wall`) so exports stay byte-identical"
                        ),
                        format!("{rel}:{lineno}"),
                    ));
                }
            }
        }
        if single_threaded {
            for pat in THREADING_PATTERNS {
                if trimmed.contains(pat) {
                    report.diagnostics.push(Diagnostic::new(
                        "L006",
                        Severity::Error,
                        format!(
                            "threading/synchronization primitive (`{pat}`) inside the \
                             service crate: the service core is single-threaded and \
                             caller-driven so same-seed runs stay byte-identical"
                        ),
                        format!("{rel}:{lineno}"),
                    ));
                }
            }
            for pat in WALL_CLOCK_PATTERNS
                .iter()
                .chain(std::iter::once(&STD_TIME_PATTERN))
            {
                if trimmed.contains(pat) {
                    report.diagnostics.push(Diagnostic::new(
                        "L006",
                        Severity::Error,
                        format!(
                            "clock access (`{pat}`) inside the service crate: time is \
                             the engine's virtual clock, injected by the caller"
                        ),
                        format!("{rel}:{lineno}"),
                    ));
                }
            }
        }
        if ladder_guarded && trimmed.contains(LADDER_RUNG_PATTERN) {
            report.diagnostics.push(Diagnostic::new(
                "L007",
                Severity::Error,
                "ladder-rung access outside `core::governor`: the rung transitions \
                 only through the governor's hysteresis state machine (read it via \
                 `Governor::rung()`, publish it via `Governor::stamp()`)",
                format!("{rel}:{lineno}"),
            ));
        }
        if hash_checked {
            for pat in HASH_COLLECTION_PATTERNS {
                if trimmed.contains(pat) {
                    report.diagnostics.push(Diagnostic::new(
                        "L004",
                        Severity::Error,
                        format!(
                            "hash-based collection (`{pat}`) in a solver-adjacent crate: \
                             iteration order must be deterministic for reproducible \
                             models and audit replay; use `BTree{}`",
                            &pat[4..]
                        ),
                        format!("{rel}:{lineno}"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Whether a manifest section header declares a dependency table.
fn is_dep_section(header: &str) -> bool {
    let h = header.trim_start_matches('[').trim_end_matches(']');
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || (h.starts_with("target.") && h.ends_with(".dependencies"))
}

/// A `[dependencies.foo]`-style subsection header; returns the dep name.
fn dep_subsection(header: &str) -> Option<&str> {
    let h = header.trim_start_matches('[').trim_end_matches(']');
    for prefix in [
        "dependencies.",
        "dev-dependencies.",
        "build-dependencies.",
        "workspace.dependencies.",
    ] {
        if let Some(name) = h.strip_prefix(prefix) {
            return Some(name);
        }
    }
    None
}

/// Whether an inline dependency value is vendored (a `path` dependency or
/// a `workspace = true` inheritance).
fn value_is_vendored(value: &str) -> bool {
    value.contains("path") || value.contains("workspace")
}

fn lint_manifest(root: &Path, path: &Path, report: &mut SrcLintReport) -> io::Result<()> {
    let rel = rel_path(root, path);
    let text = fs::read_to_string(path)?;

    // (name, header line, any line proved it vendored) for the open
    // `[dependencies.foo]` subsection, if any.
    let mut open_subsection: Option<(String, usize, bool)> = None;
    let mut in_dep_table = false;

    let flush = |sub: &mut Option<(String, usize, bool)>, diags: &mut Vec<Diagnostic>| {
        if let Some((name, lineno, vendored)) = sub.take() {
            if !vendored {
                diags.push(Diagnostic::new(
                    "L003",
                    Severity::Error,
                    format!(
                        "dependency `{name}` is not vendored: declare it with a \
                         `path` or `workspace = true` (no crates.io access)"
                    ),
                    format!("{rel}:{lineno}"),
                ));
            }
        }
    };

    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        let lineno = i + 1;
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed.starts_with('[') {
            flush(&mut open_subsection, &mut report.diagnostics);
            if let Some(name) = dep_subsection(trimmed) {
                in_dep_table = false;
                open_subsection = Some((name.to_string(), lineno, false));
            } else {
                in_dep_table = is_dep_section(trimmed);
            }
            continue;
        }
        if let Some((_, _, vendored)) = &mut open_subsection {
            if trimmed.starts_with("path") || trimmed.contains("workspace = true") {
                *vendored = true;
            }
            continue;
        }
        if in_dep_table {
            if let Some((key, value)) = trimmed.split_once('=') {
                let key = key.trim();
                // `foo.workspace = true` is already vendored by inheritance.
                let inherits = key.ends_with(".workspace");
                if !inherits && !value_is_vendored(value) {
                    let name = key.split('.').next().unwrap_or(key);
                    report.diagnostics.push(Diagnostic::new(
                        "L003",
                        Severity::Error,
                        format!(
                            "dependency `{name}` is not vendored: declare it with a \
                             `path` or `workspace = true` (no crates.io access)"
                        ),
                        format!("{rel}:{lineno}"),
                    ));
                }
            }
        }
    }
    flush(&mut open_subsection, &mut report.diagnostics);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dep_section_recognition() {
        assert!(is_dep_section("[dependencies]"));
        assert!(is_dep_section("[dev-dependencies]"));
        assert!(is_dep_section("[workspace.dependencies]"));
        assert!(is_dep_section("[target.'cfg(unix)'.dependencies]"));
        assert!(!is_dep_section("[package]"));
        assert!(!is_dep_section("[profile.release]"));
    }

    #[test]
    fn subsection_recognition() {
        assert_eq!(dep_subsection("[dependencies.serde]"), Some("serde"));
        assert_eq!(dep_subsection("[dev-dependencies.rand]"), Some("rand"));
        assert_eq!(dep_subsection("[package]"), None);
        assert_eq!(dep_subsection("[dependencies]"), None);
    }

    #[test]
    fn l005_flags_clock_access_in_telemetry_sources() {
        let dir = std::env::temp_dir().join(format!("srclint-l005-{}", std::process::id()));
        let src = dir.join("crates/telemetry/src");
        fs::create_dir_all(&src).expect("temp tree");
        fs::write(
            src.join("lib.rs"),
            "use std::time::Instant;\nfn now() -> Instant { Instant::now() }\n",
        )
        .expect("write fixture");
        let report = lint_workspace(&dir).expect("scan");
        let l005: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L005")
            .collect();
        assert!(
            l005.len() >= 2,
            "expected L005 on both the import and the call, got {:?}",
            report.diagnostics
        );
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn l006_flags_threads_channels_and_clocks_in_service_sources() {
        let dir = std::env::temp_dir().join(format!("srclint-l006-{}", std::process::id()));
        let src = dir.join("crates/service/src");
        fs::create_dir_all(&src).expect("temp tree");
        fs::write(
            src.join("lib.rs"),
            "use std::sync::mpsc;\n\
             use std::thread;\n\
             use std::sync::Mutex;\n\
             use std::time::Instant;\n\
             fn now() -> Instant { Instant::now() }\n",
        )
        .expect("write fixture");
        let report = lint_workspace(&dir).expect("scan");
        let l006: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L006")
            .collect();
        assert!(
            l006.len() >= 5,
            "expected L006 on channels, threads, locks, and clocks, got {:?}",
            report.diagnostics
        );
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn l007_flags_rung_writes_outside_the_governor() {
        let dir = std::env::temp_dir().join(format!("srclint-l007-{}", std::process::id()));
        let src = dir.join("crates/core/src");
        fs::create_dir_all(&src).expect("temp tree");
        // The governor may name the rung; the scheduler may not.
        fs::write(
            src.join("governor.rs"),
            concat!("pub fn stamp(d: &mut D) { d.ladder", "_rung = 1; }\n"),
        )
        .expect("write fixture");
        fs::write(
            src.join("scheduler.rs"),
            concat!("fn sneak(d: &mut D) { d.ladder", "_rung = 3; }\n"),
        )
        .expect("write fixture");
        let report = lint_workspace(&dir).expect("scan");
        let l007: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L007")
            .collect();
        assert_eq!(l007.len(), 1, "exactly the scheduler line: {l007:?}");
        assert!(l007[0].context.contains("scheduler.rs"));
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn l002_covers_the_service_crate() {
        assert!(NO_UNWRAP_PREFIXES.contains(&"crates/service/src/"));
        let dir = std::env::temp_dir().join(format!("srclint-l002-svc-{}", std::process::id()));
        let src = dir.join("crates/service/src");
        fs::create_dir_all(&src).expect("temp tree");
        fs::write(
            src.join("lib.rs"),
            concat!("fn f(x: Option<u32>) -> u32 { x", ".unwrap", "() }\n"),
        )
        .expect("write fixture");
        let report = lint_workspace(&dir).expect("scan");
        assert!(
            report.diagnostics.iter().any(|d| d.code == "L002"),
            "expected L002 in the service crate, got {:?}",
            report.diagnostics
        );
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn vendored_values() {
        assert!(value_is_vendored(" { path = \"crates/rand\" }"));
        assert!(value_is_vendored(" { workspace = true }"));
        assert!(!value_is_vendored(" \"1.0\""));
        assert!(!value_is_vendored(
            " { version = \"1.0\", features = [\"x\"] }"
        ));
    }
}
