//! Workspace invariant linting over source files (codes `L001`–`L011`).
//!
//! The simulator's reproducibility and the offline build both rest on
//! conventions rustc cannot enforce. This pass parses every workspace
//! `.rs` file into a token stream + item model ([`crate::lexer`],
//! [`crate::source_model`]) and machine-checks them. Because analysis is
//! token-based, needles inside string literals, doc comments, and nested
//! `/* */` blocks can never fire, and `#[cfg(test)]` scoping is
//! brace-matched (code *after* a test module is still analyzed).
//!
//! Per-file lints:
//!
//! - `L001` — no wall-clock reads (`Instant::now` / `SystemTime`) outside
//!   an explicit allowlist. Simulated time must come from the engine.
//! - `L002` — no `unwrap()` in scheduler/ledger/simulator hot-path crates
//!   (`cluster`, `core`, `milp`, `service`, `sim` non-test code).
//! - `L003` — no non-vendored dependency in any `Cargo.toml` (offline
//!   build; every dep must be `path` or `workspace = true`).
//! - `L004` — no hash-based collections (`HashMap`/`HashSet`) in
//!   solver-adjacent crates: iteration order feeds model order.
//! - `L005` — no process-clock access (`std::time` in any form) inside
//!   `crates/telemetry`; time is injected by callers. No allowlist.
//! - `L006` — no threading/channel primitives and no clock access inside
//!   `crates/service`; the service core is single-threaded and driven by
//!   the engine's virtual clock. No allowlist.
//! - `L007` — the degradation ladder's rung is owned by `core::governor`;
//!   no other non-test line in the core crate may mention `ladder_rung`.
//!
//! Workspace lints over the item model:
//!
//! - `L008` — **panic-reachability**: no `panic!`-family macro, `unwrap`,
//!   un-annotated `expect`, or un-annotated slice-index expression in any
//!   function reachable from the scheduler hot-path root
//!   (`Scheduler::cycle` in `crates/core/src/scheduler.rs`) through the
//!   `cluster`/`core`/`milp`/`sim` call graph. `expect` is allowed only in
//!   functions annotated `// srclint: expect-boundary: <why>`; indexing
//!   only under `// srclint: checked-indexing: <why>`. Call resolution is
//!   name-based (scoped by `Type::` qualifiers) and over-approximating:
//!   it can include extra code, never silently exclude a hot path.
//! - `L009` — **float-determinism**: in solver crates (`milp`, `core`,
//!   `cluster`), no `f64`/`f32` `==`/`!=` comparison and no float
//!   `Iterator::sum`/`product`/`fold` accumulation outside the designated
//!   fixed-order reduction kernels (`crates/milp/src/kernels.rs`). This is
//!   the contract parallel shard-merge code must obey: reductions happen
//!   in one auditable place, in one fixed order.
//! - `L010` — **concurrency-readiness**: threads, locks, atomics,
//!   channels, and `static mut` are forbidden everywhere except the
//!   `crates/parallel` seam (where the decomposed-solver worker pool will
//!   live) and the vendored third-party API stubs.
//! - `L011` — **dead knobs**: every field of the operator-facing config
//!   structs (`TetriSchedConfig`, `PerfFaultConfig`, `AdmissionPolicy`)
//!   must be *read* (`.field` access that is not an assignment) somewhere
//!   in non-test code. A knob that is only ever written is dead: it
//!   silently ignores operator intent.
//!
//! Test items (brace-matched `#[cfg(test)]` / `#[test]`), `tests/` and
//! `benches/` trees are exempt from the `.rs` rules. The scan is offline:
//! no rustc, no network.

use std::fs;
use std::io;
use std::path::Path;

use tetrisched_milp::lint::{Diagnostic, Severity};

use crate::lexer::{num_is_float, TokenKind};
use crate::source_model::{is_keyword, FnItem, SourceFile};

/// Files (workspace-relative, `/`-separated) allowed to read the wall
/// clock: solver time budgets, engine cycle-latency metrics, report
/// timing, and the linter's own runtime-budget check.
const WALL_CLOCK_ALLOWLIST: [&str; 7] = [
    "crates/milp/src/branch_bound.rs",
    "crates/milp/src/backend.rs",
    "crates/sim/src/engine.rs",
    "crates/core/src/scheduler.rs",
    "crates/bench/src/bin/report.rs",
    "crates/criterion/src/lib.rs",
    "crates/lint/src/bin/srclint.rs",
];

/// Crate subtrees whose non-test code must not call `unwrap()`.
const NO_UNWRAP_PREFIXES: [&str; 5] = [
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/milp/src/",
    "crates/service/src/",
    "crates/sim/src/",
];

/// Files allowed to keep `unwrap()` in hot paths. Kept honest and empty
/// after the PR-3 burn-down.
const UNWRAP_ALLOWLIST: [&str; 0] = [];

/// Crate subtrees whose non-test code must not use hash-based collections.
const NO_HASH_COLLECTION_PREFIXES: [&str; 3] = [
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/milp/src/",
];

/// Files allowed to keep hash collections in solver-adjacent crates. Kept
/// honest and empty after the PR-4 burn-down.
const HASH_COLLECTION_ALLOWLIST: [&str; 0] = [];

/// Crate subtrees that must never touch process clocks at all (`L005`).
const CLOCK_INJECTED_PREFIXES: [&str; 1] = ["crates/telemetry/src/"];

/// Crate subtrees that must stay single-threaded, channel-free, and
/// clock-free (`L006`).
const SINGLE_THREADED_PREFIXES: [&str; 1] = ["crates/service/src/"];

/// The crate subtree `L007` guards and the single file inside it allowed
/// to touch the rung.
const LADDER_GUARDED_PREFIX: &str = "crates/core/src/";
const LADDER_OWNER_FILE: &str = "crates/core/src/governor.rs";

/// The hot-path root of the `L008` call graph: the per-cycle scheduler
/// entry point every solve, placement, and ledger mutation hangs off.
const HOT_PATH_ROOT_FILE: &str = "crates/core/src/scheduler.rs";
const HOT_PATH_ROOT_FN: &str = "cycle";

/// Crates whose call graph `L008` traverses.
const HOT_PATH_CRATES: [&str; 4] = [
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/milp/src/",
    "crates/sim/src/",
];

/// Macros that unconditionally panic when reached (`L008`).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Solver crates `L009` guards: float comparison and reduction order here
/// reaches objective values, pivoting, and certificates.
const FLOAT_DETERMINISM_PREFIXES: [&str; 3] = [
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/milp/src/",
];

/// The designated fixed-order reduction kernels: the only files in the
/// solver crates allowed to spell a float reduction or comparison. This
/// is the seam the decomposed parallel solver's shard-merge code must go
/// through.
const FIXED_ORDER_KERNEL_FILES: [&str; 1] = ["crates/milp/src/kernels.rs"];

/// The concurrency seam: the only product subtree allowed to name
/// threads, locks, or atomics (`L010`). Deliberately a dedicated crate so
/// the decomposed-MILP worker pool has exactly one auditable home.
const CONCURRENCY_SEAM_PREFIXES: [&str; 1] = ["crates/parallel/src/"];

/// Vendored third-party API stubs, exempt from `L010` (their upstream
/// API surfaces name `Arc` etc.); everything else in the workspace is
/// product code and must stay thread-free outside the seam.
const VENDORED_STUB_PREFIXES: [&str; 3] = [
    "crates/criterion/src/",
    "crates/proptest/src/",
    "crates/rand/src/",
];

/// Operator-facing knob structs whose fields `L011` requires to be read.
const KNOB_STRUCTS: [&str; 3] = ["TetriSchedConfig", "PerfFaultConfig", "AdmissionPolicy"];

/// Result of a workspace scan.
#[derive(Debug, Default)]
pub struct SrcLintReport {
    /// Findings, ordered by (file, line, code).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned (`.rs` + `Cargo.toml`).
    pub files_scanned: usize,
    /// Total lexed tokens across all `.rs` files (for the bench's
    /// tokens/sec figure).
    pub tokens_scanned: usize,
    /// Total bytes across all `.rs` files.
    pub bytes_scanned: usize,
    /// Functions in the `L008` reachable set. Zero when the tree has no
    /// hot-path root (e.g. fixture corpora without a scheduler); the
    /// self-lint test asserts this is large on the real workspace, so the
    /// lint cannot silently disarm.
    pub hot_path_fns: usize,
    /// Knob-struct fields checked by `L011` (same honesty guard).
    pub knob_fields_checked: usize,
}

/// Scans the workspace rooted at `root` and returns all findings.
pub fn lint_workspace(root: &Path) -> io::Result<SrcLintReport> {
    let mut report = SrcLintReport::default();
    let mut files: Vec<SourceFile> = Vec::new();
    walk(root, root, &mut report, &mut files)?;
    for f in &files {
        report.tokens_scanned += f.tokens.len();
        report.bytes_scanned += f.src.len();
        lint_file(f, &mut report);
    }
    lint_panic_reachability(&files, &mut report);
    lint_float_determinism(&files, &mut report);
    lint_dead_knobs(&files, &mut report);
    // Deterministic output order regardless of analysis phase: by file,
    // then line, then code. Contexts are `rel:line`.
    report.diagnostics.sort_by_key(|d| {
        let (file, line) = match d.context.rsplit_once(':') {
            Some((f, l)) => (f.to_string(), l.parse::<u32>().unwrap_or(0)),
            None => (d.context.clone(), 0),
        };
        (file, line, d.code)
    });
    Ok(report)
}

fn walk(
    root: &Path,
    dir: &Path,
    report: &mut SrcLintReport,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, report, files)?;
        } else if name == "Cargo.toml" {
            report.files_scanned += 1;
            lint_manifest(root, &path, report)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            // Integration tests and benches may use wall clock and unwrap.
            if rel.split('/').any(|seg| seg == "tests" || seg == "benches") {
                continue;
            }
            report.files_scanned += 1;
            let bytes = fs::read(&path)?;
            files.push(SourceFile::parse(&rel, bytes));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn in_any(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// Whether the sig token at `i` is the identifier `name`.
fn is_ident(f: &SourceFile, i: usize, name: &str) -> bool {
    match f.sig.get(i) {
        Some(&raw) => {
            f.tokens[raw].kind == TokenKind::Ident && f.tokens[raw].bytes(&f.src) == name.as_bytes()
        }
        None => false,
    }
}

/// Whether sig tokens starting at `i` spell the path `a::b`.
fn is_path2(f: &SourceFile, i: usize, a: &str, b: &str) -> bool {
    is_ident(f, i, a) && f.is_op(i + 1, "::") && is_ident(f, i + 3, b)
}

/// Whether the sig token at `i` is a method-call name: `.name(` — with
/// the receiver's dot immediately before and the argument paren after
/// (turbofish allowed between).
fn is_method_call(f: &SourceFile, i: usize, name: &str) -> bool {
    if !is_ident(f, i, name) || i == 0 || !f.is_punct(i - 1, ".") {
        return false;
    }
    f.is_punct(i + 1, "(") || f.is_op(i + 1, "::")
}

fn push(report: &mut SrcLintReport, code: &'static str, msg: String, rel: &str, line: u32) {
    report.diagnostics.push(Diagnostic::new(
        code,
        Severity::Error,
        msg,
        format!("{rel}:{line}"),
    ));
}

/// All per-file token lints (`L001`/`L002`/`L004`–`L007`, `L010`).
fn lint_file(f: &SourceFile, report: &mut SrcLintReport) {
    let rel = f.rel.as_str();
    let wall_clock_allowed = WALL_CLOCK_ALLOWLIST.contains(&rel);
    let unwrap_checked = in_any(rel, &NO_UNWRAP_PREFIXES) && !UNWRAP_ALLOWLIST.contains(&rel);
    let hash_checked =
        in_any(rel, &NO_HASH_COLLECTION_PREFIXES) && !HASH_COLLECTION_ALLOWLIST.contains(&rel);
    let clock_injected = in_any(rel, &CLOCK_INJECTED_PREFIXES);
    let single_threaded = in_any(rel, &SINGLE_THREADED_PREFIXES);
    let ladder_guarded = rel.starts_with(LADDER_GUARDED_PREFIX) && rel != LADDER_OWNER_FILE;
    let concurrency_checked =
        !in_any(rel, &CONCURRENCY_SEAM_PREFIXES) && !in_any(rel, &VENDORED_STUB_PREFIXES);

    let wall_clock_needles: [(&str, &str); 2] = [("Instant", "now"), ("SystemTime", "")];
    let threading_idents = ["Mutex", "RwLock", "Condvar", "mpsc"];

    for i in 0..f.sig.len() {
        if f.test_mask[i] {
            continue;
        }
        let kind = f.sig_kind(i);
        if kind != TokenKind::Ident {
            continue;
        }
        let text = f.sig_text(i);
        let line = f.sig_line(i);
        let clockish = (text == "Instant" && f.is_op(i + 1, "::") && is_ident(f, i + 3, "now"))
            || text == "SystemTime"
            || is_path2(f, i, "std", "time");
        let _ = wall_clock_needles; // the tuple list documents the needles
        if clockish {
            let what = if text == "std" {
                "std::time"
            } else if text == "Instant" {
                "Instant::now"
            } else {
                "SystemTime"
            };
            if clock_injected {
                push(
                    report,
                    "L005",
                    format!(
                        "process-clock access (`{what}`) inside the telemetry crate: time \
                         must be injected by callers (`advance` / `observe_wall`) so \
                         exports stay byte-identical"
                    ),
                    rel,
                    line,
                );
            } else if single_threaded {
                push(
                    report,
                    "L006",
                    format!(
                        "clock access (`{what}`) inside the service crate: time is the \
                         engine's virtual clock, injected by the caller"
                    ),
                    rel,
                    line,
                );
            } else if !wall_clock_allowed && (text != "std" || !clock_injected) {
                // `std::time` mentions outside the injected/single-threaded
                // crates are only L001 when they name a clock source; plain
                // `std::time::Duration` plumbing is fine.
                if text != "std" {
                    push(
                        report,
                        "L001",
                        format!(
                            "wall-clock read (`{what}`) outside the allowlist breaks \
                             simulation determinism"
                        ),
                        rel,
                        line,
                    );
                }
            }
        }
        if unwrap_checked && is_method_call(f, i, "unwrap") {
            push(
                report,
                "L002",
                "`unwrap()` in a scheduler/ledger hot path; use `expect()` with an \
                 invariant message or propagate a `Result`"
                    .to_string(),
                rel,
                line,
            );
        }
        if hash_checked && (text == "HashMap" || text == "HashSet") {
            push(
                report,
                "L004",
                format!(
                    "hash-based collection (`{text}`) in a solver-adjacent crate: \
                     iteration order must be deterministic for reproducible models and \
                     audit replay; use `BTree{}`",
                    &text[4..]
                ),
                rel,
                line,
            );
        }
        if single_threaded {
            let threaded = threading_idents.contains(&text.as_ref())
                || is_path2(f, i, "std", "thread")
                || is_path2(f, i, "std", "sync");
            if threaded {
                push(
                    report,
                    "L006",
                    format!(
                        "threading/synchronization primitive (`{text}`) inside the \
                         service crate: the service core is single-threaded and \
                         caller-driven so same-seed runs stay byte-identical"
                    ),
                    rel,
                    line,
                );
            }
        }
        if ladder_guarded && text == "ladder_rung" {
            push(
                report,
                "L007",
                "ladder-rung access outside `core::governor`: the rung transitions only \
                 through the governor's hysteresis state machine (read it via \
                 `Governor::rung()`, publish it via `Governor::stamp()`)"
                    .to_string(),
                rel,
                line,
            );
        }
        if concurrency_checked {
            let concurrent = threading_idents.contains(&text.as_ref())
                || is_path2(f, i, "std", "thread")
                || is_path2(f, i, "std", "sync")
                || is_path2(f, i, "thread", "spawn")
                || (text.starts_with("Atomic") && text.len() > "Atomic".len())
                || (text == "static" && is_ident(f, i + 1, "mut"));
            if concurrent {
                let what = if text == "static" {
                    "static mut".to_string()
                } else if text == "std" {
                    format!("std::{}", f.sig_text(i + 3))
                } else {
                    text.into_owned()
                };
                push(
                    report,
                    "L010",
                    format!(
                        "concurrency primitive (`{what}`) outside the `crates/parallel` \
                         seam: threads, locks, atomics, and channels live only behind \
                         the audited worker-pool boundary so the determinism contract \
                         has exactly one place to hold"
                    ),
                    rel,
                    line,
                );
            }
        }
    }
}

/// `L008`: the panic-reachability call graph.
fn lint_panic_reachability(files: &[SourceFile], report: &mut SrcLintReport) {
    // Index every non-test fn in the hot-path crates.
    struct Entry<'a> {
        file: &'a SourceFile,
        item: &'a FnItem,
        /// File stem, for `module::fn()` qualifier resolution.
        stem: String,
        crate_prefix: &'a str,
    }
    let mut fns: Vec<Entry<'_>> = Vec::new();
    for f in files {
        let Some(prefix) = HOT_PATH_CRATES.iter().find(|p| f.rel.starts_with(**p)) else {
            continue;
        };
        let stem = f
            .rel
            .rsplit('/')
            .next()
            .unwrap_or("")
            .trim_end_matches(".rs")
            .to_string();
        for item in &f.fns {
            if item.is_test {
                continue;
            }
            fns.push(Entry {
                file: f,
                item,
                stem: stem.clone(),
                crate_prefix: prefix,
            });
        }
    }
    // Name index: callee name -> candidate fn ids.
    let mut by_name: std::collections::BTreeMap<&str, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (id, e) in fns.iter().enumerate() {
        by_name.entry(e.item.name.as_str()).or_default().push(id);
    }
    // Roots: the scheduler cycle entry point(s).
    let roots: Vec<usize> = fns
        .iter()
        .enumerate()
        .filter(|(_, e)| e.file.rel == HOT_PATH_ROOT_FILE && e.item.name == HOT_PATH_ROOT_FN)
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        // No scheduler in this tree (fixture corpora): the lint is
        // vacuous, and `hot_path_fns` stays 0 so the self-lint test can
        // tell "nothing to check" from "checked and clean".
        return;
    }
    // BFS over name-resolved edges, keeping a predecessor for diagnostics.
    let mut pred: Vec<Option<usize>> = vec![None; fns.len()];
    let mut seen: Vec<bool> = vec![false; fns.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &r in &roots {
        seen[r] = true;
        queue.push_back(r);
    }
    while let Some(id) = queue.pop_front() {
        let caller = &fns[id];
        for call in &caller.item.calls {
            let Some(cands) = by_name.get(call.name.as_str()) else {
                continue;
            };
            for &cand in cands {
                let callee = &fns[cand];
                let matches = match call.qualifier.as_deref() {
                    Some("Self") | Some("self") => {
                        callee.item.impl_type == caller.item.impl_type
                            && caller.item.impl_type.is_some()
                    }
                    Some(q) => {
                        callee.item.impl_type.as_deref() == Some(q)
                            || callee.stem == q
                            || callee.item.module.last().map(String::as_str) == Some(q)
                    }
                    None if call.is_method => callee.item.impl_type.is_some(),
                    // Bare call: free fns, preferring the caller's crate.
                    None => {
                        callee.item.impl_type.is_none()
                            && callee.crate_prefix == caller.crate_prefix
                    }
                };
                if matches && !seen[cand] {
                    seen[cand] = true;
                    pred[cand] = Some(id);
                    queue.push_back(cand);
                }
            }
        }
    }
    report.hot_path_fns = seen.iter().filter(|s| **s).count();
    // Report panic sources in every reachable fn.
    let chain = |mut id: usize| -> String {
        let mut parts = vec![fns[id].item.qualified()];
        while let Some(p) = pred[id] {
            parts.push(fns[p].item.qualified());
            id = p;
            if parts.len() > 8 {
                parts.push("…".to_string());
                break;
            }
        }
        parts.reverse();
        parts.join(" → ")
    };
    for (id, e) in fns.iter().enumerate() {
        if !seen[id] {
            continue;
        }
        let via = chain(id);
        let rel = e.file.rel.as_str();
        for (mac, line) in &e.item.macros {
            if PANIC_MACROS.contains(&mac.as_str()) {
                push(
                    report,
                    "L008",
                    format!(
                        "`{mac}!` is reachable from the scheduler hot path (via {via}): \
                         a panic here kills the whole scheduling cycle; propagate a \
                         typed error instead"
                    ),
                    rel,
                    *line,
                );
            }
        }
        for line in &e.item.unwrap_sites {
            push(
                report,
                "L008",
                format!(
                    "`unwrap()` is reachable from the scheduler hot path (via {via}); \
                     propagate a `Result` or use an annotated boundary"
                ),
                rel,
                *line,
            );
        }
        if !e.item.has_annotation("expect-boundary") {
            for line in &e.item.expect_sites {
                push(
                    report,
                    "L008",
                    format!(
                        "`expect()` in hot-path fn `{}` (via {via}) without a \
                         `// srclint: expect-boundary: <why>` annotation: either \
                         propagate the error or annotate the invariant at the boundary",
                        e.item.qualified()
                    ),
                    rel,
                    *line,
                );
            }
        }
        if !e.item.has_annotation("checked-indexing") {
            for line in &e.item.index_sites {
                push(
                    report,
                    "L008",
                    format!(
                        "slice/array index in hot-path fn `{}` (via {via}) without a \
                         `// srclint: checked-indexing: <why>` annotation: indexing \
                         panics on out-of-bounds; use `get()` or annotate why bounds \
                         hold",
                        e.item.qualified()
                    ),
                    rel,
                    *line,
                );
            }
        }
    }
}

/// `L009`: float-determinism in the solver crates.
fn lint_float_determinism(files: &[SourceFile], report: &mut SrcLintReport) {
    for f in files {
        if !in_any(&f.rel, &FLOAT_DETERMINISM_PREFIXES)
            || FIXED_ORDER_KERNEL_FILES.contains(&f.rel.as_str())
        {
            continue;
        }
        // Idents with a visible `: f64` / `: f32` ascription in this file
        // (params and typed lets); field types are invisible at token
        // level, so literal-adjacent comparisons are the other net.
        let mut float_idents: std::collections::BTreeSet<String> =
            std::collections::BTreeSet::new();
        for i in 0..f.sig.len() {
            if f.sig_kind(i) == TokenKind::Ident
                && f.is_punct(i + 1, ":")
                && !f.is_op(i + 1, "::")
                && (is_ident(f, i + 2, "f64") || is_ident(f, i + 2, "f32"))
            {
                let t = f.sig_text(i).into_owned();
                if !is_keyword(&t) {
                    float_idents.insert(t);
                }
            }
        }
        let floatish = |i: usize| -> bool {
            match f.sig.get(i) {
                Some(&raw) => match f.tokens[raw].kind {
                    TokenKind::Num => num_is_float(f.tokens[raw].bytes(&f.src)),
                    TokenKind::Ident => {
                        let t = f.tokens[raw].text(&f.src);
                        float_idents.contains(t.as_ref())
                    }
                    _ => false,
                },
                None => false,
            }
        };
        for i in 0..f.sig.len() {
            if f.test_mask[i] {
                continue;
            }
            // `==` / `!=` with a float operand on either side.
            for op in ["==", "!="] {
                if f.is_op(i, op) && (i > 0 && floatish(i - 1) || floatish(i + 2)) {
                    push(
                        report,
                        "L009",
                        format!(
                            "float `{op}` comparison in a solver crate: exact float \
                             equality is not preserved across reduction orders; use \
                             the fixed-order kernels' tolerance/zero tests \
                             (`crates/milp/src/kernels.rs`)"
                        ),
                        &f.rel,
                        f.sig_line(i),
                    );
                }
            }
            // `.sum()` / `.product()` / `.fold()` in a float statement.
            for red in ["sum", "product", "fold"] {
                if is_method_call(f, i, red) && statement_mentions_float(f, i) {
                    push(
                        report,
                        "L009",
                        format!(
                            "float `{red}` accumulation in a solver crate outside the \
                             designated fixed-order reduction kernels: iterator \
                             reductions pin no order once shards solve in parallel; \
                             route through `crates/milp/src/kernels.rs`"
                        ),
                        &f.rel,
                        f.sig_line(i),
                    );
                }
            }
        }
    }
}

/// Whether the statement window around sig index `i` (back to the nearest
/// `;`/`{`/`}`, forward to the call's closing paren or the next `;`)
/// mentions `f64`/`f32` or a float literal.
fn statement_mentions_float(f: &SourceFile, i: usize) -> bool {
    let mut lo = i;
    while lo > 0 {
        if f.is_punct(lo, ";") || f.is_punct(lo, "{") || f.is_punct(lo, "}") {
            break;
        }
        lo -= 1;
    }
    let mut hi = i;
    let mut depth = 0i64;
    while hi < f.sig.len() {
        if f.is_punct(hi, "(") {
            depth += 1;
        } else if f.is_punct(hi, ")") {
            depth -= 1;
            if depth <= 0 {
                break;
            }
        } else if depth == 0 && f.is_punct(hi, ";") {
            break;
        }
        hi += 1;
    }
    for j in lo..=hi.min(f.sig.len().saturating_sub(1)) {
        match f.sig_kind(j) {
            TokenKind::Ident => {
                let t = f.sig_text(j);
                if t == "f64" || t == "f32" {
                    return true;
                }
            }
            TokenKind::Num => {
                let raw = f.sig[j];
                if num_is_float(f.tokens[raw].bytes(&f.src)) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// `L011`: dead operator knobs.
fn lint_dead_knobs(files: &[SourceFile], report: &mut SrcLintReport) {
    // Collect the knob structs' fields.
    let mut knobs: Vec<(String, String, String, u32)> = Vec::new(); // (struct, field, file, line)
    for f in files {
        for s in &f.structs {
            if KNOB_STRUCTS.contains(&s.name.as_str()) {
                for (field, line) in &s.fields {
                    knobs.push((s.name.clone(), field.clone(), f.rel.clone(), *line));
                }
            }
        }
    }
    if knobs.is_empty() {
        return; // no knob structs in this tree (fixture corpora)
    }
    report.knob_fields_checked = knobs.len();
    // One pass over all files: collect every field *read* — `.name` not
    // immediately assigned (`.name = …` is a write; `==` is a read).
    let mut reads: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for f in files {
        for i in 1..f.sig.len() {
            if f.test_mask[i] {
                continue;
            }
            if f.sig_kind(i) != TokenKind::Ident || !f.is_punct(i - 1, ".") {
                continue;
            }
            // Exclude method calls `.name(` and writes `.name = v`.
            if f.is_punct(i + 1, "(") {
                continue;
            }
            if f.is_punct(i + 1, "=") && !f.is_op(i + 1, "==") && !f.is_op(i + 1, "=>") {
                continue;
            }
            reads.insert(f.sig_text(i).into_owned());
        }
    }
    for (st, field, rel, line) in knobs {
        if !reads.contains(&field) {
            push(
                report,
                "L011",
                format!(
                    "dead knob: `{st}::{field}` is never read in non-test code — the \
                     field silently ignores operator intent; wire it up or delete it"
                ),
                &rel,
                line,
            );
        }
    }
}

/// Whether a manifest section header declares a dependency table.
fn is_dep_section(header: &str) -> bool {
    let h = header.trim_start_matches('[').trim_end_matches(']');
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || (h.starts_with("target.") && h.ends_with(".dependencies"))
}

/// A `[dependencies.foo]`-style subsection header; returns the dep name.
fn dep_subsection(header: &str) -> Option<&str> {
    let h = header.trim_start_matches('[').trim_end_matches(']');
    for prefix in [
        "dependencies.",
        "dev-dependencies.",
        "build-dependencies.",
        "workspace.dependencies.",
    ] {
        if let Some(name) = h.strip_prefix(prefix) {
            return Some(name);
        }
    }
    None
}

/// Whether an inline dependency value is vendored (a `path` dependency or
/// a `workspace = true` inheritance).
fn value_is_vendored(value: &str) -> bool {
    value.contains("path") || value.contains("workspace")
}

fn lint_manifest(root: &Path, path: &Path, report: &mut SrcLintReport) -> io::Result<()> {
    let rel = rel_path(root, path);
    let text = fs::read_to_string(path)?;

    // (name, header line, any line proved it vendored) for the open
    // `[dependencies.foo]` subsection, if any.
    let mut open_subsection: Option<(String, usize, bool)> = None;
    let mut in_dep_table = false;

    let flush = |sub: &mut Option<(String, usize, bool)>, diags: &mut Vec<Diagnostic>| {
        if let Some((name, lineno, vendored)) = sub.take() {
            if !vendored {
                diags.push(Diagnostic::new(
                    "L003",
                    Severity::Error,
                    format!(
                        "dependency `{name}` is not vendored: declare it with a \
                         `path` or `workspace = true` (no crates.io access)"
                    ),
                    format!("{rel}:{lineno}"),
                ));
            }
        }
    };

    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        let lineno = i + 1;
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed.starts_with('[') {
            flush(&mut open_subsection, &mut report.diagnostics);
            if let Some(name) = dep_subsection(trimmed) {
                in_dep_table = false;
                open_subsection = Some((name.to_string(), lineno, false));
            } else {
                in_dep_table = is_dep_section(trimmed);
            }
            continue;
        }
        if let Some((_, _, vendored)) = &mut open_subsection {
            if trimmed.starts_with("path") || trimmed.contains("workspace = true") {
                *vendored = true;
            }
            continue;
        }
        if in_dep_table {
            if let Some((key, value)) = trimmed.split_once('=') {
                let key = key.trim();
                // `foo.workspace = true` is already vendored by inheritance.
                let inherits = key.ends_with(".workspace");
                if !inherits && !value_is_vendored(value) {
                    let name = key.split('.').next().unwrap_or(key);
                    report.diagnostics.push(Diagnostic::new(
                        "L003",
                        Severity::Error,
                        format!(
                            "dependency `{name}` is not vendored: declare it with a \
                             `path` or `workspace = true` (no crates.io access)"
                        ),
                        format!("{rel}:{lineno}"),
                    ));
                }
            }
        }
    }
    flush(&mut open_subsection, &mut report.diagnostics);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_tree(name: &str, files: &[(&str, &str)]) -> SrcLintReport {
        let dir = std::env::temp_dir().join(format!("srclint-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for (rel, content) in files {
            let path = dir.join(rel);
            fs::create_dir_all(path.parent().expect("parent")).expect("temp tree");
            fs::write(&path, content).expect("write fixture");
        }
        let report = lint_workspace(&dir).expect("scan");
        fs::remove_dir_all(&dir).expect("cleanup");
        report
    }

    fn codes(report: &SrcLintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn dep_section_recognition() {
        assert!(is_dep_section("[dependencies]"));
        assert!(is_dep_section("[dev-dependencies]"));
        assert!(is_dep_section("[workspace.dependencies]"));
        assert!(is_dep_section("[target.'cfg(unix)'.dependencies]"));
        assert!(!is_dep_section("[package]"));
        assert!(!is_dep_section("[profile.release]"));
    }

    #[test]
    fn subsection_recognition() {
        assert_eq!(dep_subsection("[dependencies.serde]"), Some("serde"));
        assert_eq!(dep_subsection("[dev-dependencies.rand]"), Some("rand"));
        assert_eq!(dep_subsection("[package]"), None);
        assert_eq!(dep_subsection("[dependencies]"), None);
    }

    #[test]
    fn vendored_values() {
        assert!(value_is_vendored(" { path = \"crates/rand\" }"));
        assert!(value_is_vendored(" { workspace = true }"));
        assert!(!value_is_vendored(" \"1.0\""));
        assert!(!value_is_vendored(
            " { version = \"1.0\", features = [\"x\"] }"
        ));
    }

    #[test]
    fn l005_flags_clock_access_in_telemetry_sources() {
        let report = scan_tree(
            "l005",
            &[(
                "crates/telemetry/src/lib.rs",
                "use std::time::Instant;\nfn now() -> Instant { Instant::now() }\n",
            )],
        );
        let n = codes(&report).iter().filter(|c| **c == "L005").count();
        assert!(n >= 2, "expected L005 on import and call: {report:?}");
    }

    #[test]
    fn l006_flags_threads_channels_and_clocks_in_service_sources() {
        let report = scan_tree(
            "l006",
            &[(
                "crates/service/src/lib.rs",
                "use std::sync::mpsc;\n\
                 use std::thread;\n\
                 use std::sync::Mutex;\n\
                 use std::time::Instant;\n\
                 fn now() -> Instant { Instant::now() }\n",
            )],
        );
        let n = codes(&report).iter().filter(|c| **c == "L006").count();
        assert!(n >= 5, "expected L006 x5: {report:?}");
    }

    #[test]
    fn l007_flags_rung_writes_outside_the_governor() {
        let report = scan_tree(
            "l007",
            &[
                (
                    "crates/core/src/governor.rs",
                    "pub fn stamp(d: &mut D) { d.ladder_rung = 1; }\n",
                ),
                (
                    "crates/core/src/scheduler.rs",
                    "fn sneak(d: &mut D) { d.ladder_rung = 3; }\n",
                ),
            ],
        );
        let l007: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L007")
            .collect();
        assert_eq!(l007.len(), 1, "exactly the scheduler line: {l007:?}");
        assert!(l007[0].context.contains("scheduler.rs"));
    }

    #[test]
    fn l002_covers_the_service_crate() {
        assert!(NO_UNWRAP_PREFIXES.contains(&"crates/service/src/"));
        let report = scan_tree(
            "l002-svc",
            &[(
                "crates/service/src/lib.rs",
                "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            )],
        );
        assert!(codes(&report).contains(&"L002"), "{report:?}");
    }

    #[test]
    fn needles_in_strings_and_comments_do_not_fire() {
        let report = scan_tree(
            "strings",
            &[(
                "crates/core/src/lib.rs",
                "fn f() {\n\
                     let a = \"Instant::now() and .unwrap() and HashMap\";\n\
                     // Instant::now() .unwrap() HashMap ladder_rung\n\
                     /* nested /* SystemTime std::sync Mutex */ still */\n\
                     let b = r#\"static mut AtomicUsize\"#;\n\
                     print(a, b);\n\
                 }\n",
            )],
        );
        assert!(report.diagnostics.is_empty(), "{report:?}");
    }

    #[test]
    fn l010_flags_concurrency_outside_the_seam_only() {
        let report = scan_tree(
            "l010",
            &[
                (
                    "crates/sim/src/worker.rs",
                    "use std::thread;\nstatic mut COUNTER: u64 = 0;\n\
                     fn go(a: &AtomicUsize) { thread::spawn(|| {}); }\n",
                ),
                (
                    "crates/parallel/src/lib.rs",
                    "use std::thread;\nuse std::sync::Mutex;\n",
                ),
            ],
        );
        let l010: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L010")
            .collect();
        assert!(l010.len() >= 4, "thread/static-mut/atomic/spawn: {l010:?}");
        assert!(
            l010.iter().all(|d| d.context.contains("sim")),
            "the parallel seam is allowlisted: {l010:?}"
        );
    }
}
