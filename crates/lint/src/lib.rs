//! `tetrisched-lint`: static analysis for the TetriSched workspace.
//!
//! Two analysis engines share one structured [`Diagnostic`] type:
//!
//! 1. **Model analysis** — semantic passes over STRL expressions
//!    ([`lint_expr`], codes `S001`–`S009`) and compiled MILP models
//!    ([`lint_model`], codes `M001`–`M007`; the MILP passes live in
//!    `tetrisched_milp::lint` so the solver can run them without a
//!    dependency cycle, and are re-exported here). Error-severity MILP
//!    findings carry machine-checkable infeasibility [`Certificate`]s.
//! 2. **Source analysis** — [`lint_workspace`] (and the `srclint` binary)
//!    lexes every workspace `.rs` file into a token stream ([`lexer`]),
//!    parses it into an item-level source model ([`source_model`]), and
//!    enforces repo invariants over it: no wall-clock reads outside an
//!    allowlist (`L001`), no `unwrap()` in scheduler/ledger/simulator hot
//!    paths (`L002`), no non-vendored external dependency in any manifest
//!    (`L003`), no hash-based collections in solver-adjacent crates
//!    (`L004`), injected-clock and single-threaded crate contracts
//!    (`L005`/`L006`), ladder-rung ownership (`L007`), call-graph
//!    panic-reachability from the scheduler hot path (`L008`),
//!    float-determinism in solver crates (`L009`), a single audited
//!    concurrency seam (`L010`), and dead-knob detection (`L011`).
//!
//! A third engine, [`certify`], verifies proof-carrying solver outcomes
//! (codes `C001`–`C003`, re-exported from `tetrisched_milp::certify`) and
//! validates the STRL→MILP translation end-to-end (`C004`).
//!
//! Findings render as pretty text ([`render_pretty`]) or JSON
//! ([`render_json`]). The full diagnostic-code table lives in DESIGN.md.

pub mod certify;
pub mod lexer;
pub mod render;
pub mod source_model;
pub mod src_lint;
pub mod strl_lint;

pub use certify::{certify_solution, check_solution, validate_translation, CertifyReport};
pub use lexer::{lex, num_is_float, Token, TokenKind};
pub use render::{render_json, render_pretty};
pub use source_model::{Annotation, CallSite, FnItem, SourceFile, StructItem};
pub use src_lint::{lint_workspace, SrcLintReport};
pub use strl_lint::{lint_expr, StrlLintContext};
pub use tetrisched_milp::lint::{
    debug_precheck, has_errors, lint_model, propagate_bounds, CertTerm, Certificate, Diagnostic,
    Propagation, Severity,
};
