//! `tetrisched-lint`: static analysis for the TetriSched workspace.
//!
//! Two analysis engines share one structured [`Diagnostic`] type:
//!
//! 1. **Model analysis** — semantic passes over STRL expressions
//!    ([`lint_expr`], codes `S001`–`S009`) and compiled MILP models
//!    ([`lint_model`], codes `M001`–`M007`; the MILP passes live in
//!    `tetrisched_milp::lint` so the solver can run them without a
//!    dependency cycle, and are re-exported here). Error-severity MILP
//!    findings carry machine-checkable infeasibility [`Certificate`]s.
//! 2. **Source analysis** — [`lint_workspace`] (and the `srclint` binary)
//!    walks the workspace's `.rs`/`Cargo.toml` files enforcing repo
//!    invariants: no wall-clock reads outside an allowlist (codes `L001`),
//!    no `unwrap()` in scheduler/ledger/simulator hot paths (`L002`), no
//!    non-vendored external dependency in any manifest (`L003`), and no
//!    hash-based collections in solver-adjacent crates (`L004`).
//!
//! A third engine, [`certify`], verifies proof-carrying solver outcomes
//! (codes `C001`–`C003`, re-exported from `tetrisched_milp::certify`) and
//! validates the STRL→MILP translation end-to-end (`C004`).
//!
//! Findings render as pretty text ([`render_pretty`]) or JSON
//! ([`render_json`]). The full diagnostic-code table lives in DESIGN.md.

pub mod certify;
pub mod render;
pub mod src_lint;
pub mod strl_lint;

pub use certify::{certify_solution, check_solution, validate_translation, CertifyReport};
pub use render::{render_json, render_pretty};
pub use src_lint::{lint_workspace, SrcLintReport};
pub use strl_lint::{lint_expr, StrlLintContext};
pub use tetrisched_milp::lint::{
    debug_precheck, has_errors, lint_model, propagate_bounds, CertTerm, Certificate, Diagnostic,
    Propagation, Severity,
};
