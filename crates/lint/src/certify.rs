//! Proof-carrying solve verification, workspace-level layer.
//!
//! The solver-side machinery (primal checks, dual/bound-tree audits,
//! Farkas/ray certificates, codes `C001`–`C003`) lives in
//! [`tetrisched_milp::certify`] and is re-exported here. This module adds
//! the piece the MILP crate cannot see: **translation validation** of the
//! STRL→MILP compilation (code `C004`). The MILP solution is decoded back
//! into STRL space (granted resources per leaf), the *original* expression
//! is evaluated under that placement with
//! [`StrlExpr::placement_value`], and the valuation is compared against
//! the solver's claimed objective — catching compiler bugs end-to-end, in
//! the spirit of translation validation for compilers.

use tetrisched_milp::lint::{Diagnostic, Severity};
use tetrisched_strl::StrlExpr;

pub use tetrisched_milp::certify::{
    certify_solution, check_solution, debug_postcheck, dual_bound, mint_infeasibility_proof,
    verify_farkas, verify_infeasibility_proof, verify_ray, AuditNode, CertifyReport,
    IncumbentSource, InfeasibilityProof, LpCertificate, NodeStatus, SolveAudit, SolveProof,
    DUAL_TOL, PRIMAL_TOL,
};

/// Tolerance for objective/valuation agreement, scaled by magnitude.
pub const TRANSLATION_TOL: f64 = 1e-6;

/// Validates the STRL→MILP translation for one solved expression.
///
/// `granted[i]` is the number of resources the MILP solution awards to
/// the `i`-th leaf of `expr` in pre-order, `objective` is the solver's
/// claimed objective for the compiled model, and `best_bound` its proven
/// dual bound. Invariants checked:
///
/// - the claimed objective never exceeds the STRL valuation of the chosen
///   placement (value cannot appear out of thin air),
/// - for trees without relaxed encodings (`min`/`barrier`), the two agree
///   exactly — the compiled objective *is* the STRL valuation — and the
///   valuation never exceeds the proven dual bound (the same placement
///   re-encoded is a feasible MILP point, so the bound dominates it).
///   Under a relaxed encoding the bound only dominates the *MILP*
///   objective, which may legitimately undervalue the STRL tree, so the
///   bound check is skipped.
///
/// Returns the STRL valuation on success, a `C004` diagnostic on failure.
pub fn validate_translation(
    expr: &StrlExpr,
    granted: &[u32],
    objective: f64,
    best_bound: f64,
) -> Result<f64, Box<Diagnostic>> {
    let valuation = expr.placement_value(granted);
    let tol = TRANSLATION_TOL * (1.0 + valuation.abs().max(objective.abs()));
    let fail = |message: String| {
        Err(Box::new(Diagnostic::new(
            "C004",
            Severity::Error,
            message,
            format!("translation validation over {} leaves", granted.len()),
        )))
    };
    if objective > valuation + tol {
        return fail(format!(
            "MILP objective {objective} exceeds the STRL valuation {valuation} \
             of the chosen placement"
        ));
    }
    if !expr.has_relaxed_encoding() {
        if (objective - valuation).abs() > tol {
            return fail(format!(
                "MILP objective {objective} does not equal the STRL valuation {valuation} \
                 (tree has no relaxed operators)"
            ));
        }
        if valuation > best_bound + tol {
            return fail(format!(
                "STRL valuation {valuation} exceeds the proven solver bound {best_bound}"
            ));
        }
    }
    Ok(valuation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrisched_cluster::{NodeId, NodeSet};

    fn set(ids: &[u32]) -> NodeSet {
        NodeSet::from_ids(8, ids.iter().map(|&i| NodeId(i)))
    }

    fn choice() -> StrlExpr {
        StrlExpr::max([
            StrlExpr::nck(set(&[0, 1]), 2, 0, 2, 4.0),
            StrlExpr::nck(set(&[0, 1, 2, 3]), 2, 0, 3, 3.0),
        ])
    }

    #[test]
    fn faithful_translation_validates() {
        let v = validate_translation(&choice(), &[2, 0], 4.0, 4.0).unwrap();
        assert_eq!(v, 4.0);
    }

    #[test]
    fn inflated_objective_rejected() {
        let err = validate_translation(&choice(), &[0, 2], 4.0, 4.0).unwrap_err();
        assert_eq!(err.code, "C004");
        assert!(err.message.contains("exceeds the STRL valuation"));
    }

    #[test]
    fn deflated_objective_rejected_without_relaxed_ops() {
        let err = validate_translation(&choice(), &[2, 0], 1.0, 4.0).unwrap_err();
        assert_eq!(err.code, "C004");
        assert!(err.message.contains("does not equal"));
    }

    #[test]
    fn deflated_objective_tolerated_under_min() {
        // A min tree may legitimately leave value on the table in the MILP
        // encoding; only the <= direction is enforced.
        let e = StrlExpr::min([choice()]);
        assert!(validate_translation(&e, &[2, 0], 1.0, 4.0).is_ok());
        assert!(validate_translation(&e, &[2, 0], 5.0, 5.0).is_err());
    }

    #[test]
    fn valuation_above_bound_rejected() {
        let err = validate_translation(&choice(), &[2, 0], 4.0, 2.0).unwrap_err();
        assert!(err.message.contains("proven solver bound"));
    }

    #[test]
    fn valuation_above_bound_tolerated_under_min() {
        // The relaxed encoding undervalues the tree, so the solver's bound
        // only dominates the MILP objective, not the STRL valuation.
        let e = StrlExpr::min([choice()]);
        assert!(validate_translation(&e, &[2, 0], 2.0, 2.0).is_ok());
    }

    #[test]
    fn zero_placement_validates_trivially() {
        let v = validate_translation(&choice(), &[0, 0], 0.0, 7.0).unwrap();
        assert_eq!(v, 0.0);
    }
}
