//! Semantic lints over STRL expression trees (codes `S001`–`S009`).
//!
//! These passes catch requests that are structurally valid but semantically
//! dead before they are compiled: leaves that can never be satisfied, dead
//! `max`/`min` branches, starts outside the plan-ahead window, and value
//! plumbing (scale/barrier) that zeroes the upward flow of value.

use tetrisched_milp::lint::{Diagnostic, Severity};
use tetrisched_strl::{StrlExpr, Time};

/// Scheduling-cycle facts the STRL passes check leaves against.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrlLintContext {
    /// Current simulated time; leaf starts must not be in the past.
    pub now: Time,
    /// Exclusive end of the plan-ahead window, when known; leaf starts at
    /// or beyond it can never be chosen by the compiler
    /// (`CompileError::StartBeyondWindow`).
    pub window_end: Option<Time>,
}

/// Render a node for diagnostic context, truncated to keep output readable.
fn node_context(e: &StrlExpr) -> String {
    let s = e.to_string();
    if s.len() > 96 {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take(93)
                .last()
                .map_or(0, |(i, c)| i + c.len_utf8())]
        )
    } else {
        s
    }
}

/// Runs every STRL analysis pass over `expr` and returns the findings.
///
/// Codes emitted here (severity in parentheses):
///
/// - `S001` (Error) — leaf with an empty equivalence set,
/// - `S002` (Error for `nCk`, Warning for `LnCk`) — over-subscribed set,
///   `k > |set|` (`LnCk` still awards partial value),
/// - `S003` (Warning) — zero-duration leaf (holds resources for no time),
/// - `S004` (Error) — leaf start in the past or at/beyond the plan-ahead
///   window end,
/// - `S005` (Warning) — dead `max`/`min` branch: a child whose value upper
///   bound is non-positive,
/// - `S006` (Warning) — non-positive leaf value or `scale` factor,
/// - `S007` (Warning) — barrier misuse: non-positive threshold, or a
///   threshold the child's value can never reach,
/// - `S008` (Warning) — empty `max`/`min`/`sum` operator,
/// - `S009` (Error) — leaf with `k = 0` (awards value for zero resources).
pub fn lint_expr(expr: &StrlExpr, ctx: &StrlLintContext) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    expr.visit(&mut |e| lint_node(e, ctx, &mut diags));
    diags
}

fn lint_node(e: &StrlExpr, ctx: &StrlLintContext, diags: &mut Vec<Diagnostic>) {
    match e {
        StrlExpr::NCk {
            set,
            k,
            start,
            dur,
            value,
        }
        | StrlExpr::LnCk {
            set,
            k,
            start,
            dur,
            value,
        } => {
            let linear = matches!(e, StrlExpr::LnCk { .. });
            if *k == 0 {
                diags.push(Diagnostic::new(
                    "S009",
                    Severity::Error,
                    "leaf requests k = 0 resources; it would award value for nothing",
                    node_context(e),
                ));
            }
            if set.is_empty() {
                diags.push(Diagnostic::new(
                    "S001",
                    Severity::Error,
                    "leaf has an empty equivalence set; it can never be satisfied",
                    node_context(e),
                ));
            } else if (set.len() as u32) < *k {
                // nCk is all-or-nothing, so an over-subscribed set is dead;
                // LnCk still awards value per resource obtained.
                diags.push(Diagnostic::new(
                    "S002",
                    if linear {
                        Severity::Warning
                    } else {
                        Severity::Error
                    },
                    format!(
                        "over-subscribed set: k = {k} exceeds the {} nodes available",
                        set.len()
                    ),
                    node_context(e),
                ));
            }
            if *dur == 0 {
                diags.push(Diagnostic::new(
                    "S003",
                    Severity::Warning,
                    "zero-duration leaf holds resources for no time",
                    node_context(e),
                ));
            }
            if *start < ctx.now {
                diags.push(Diagnostic::new(
                    "S004",
                    Severity::Error,
                    format!("leaf starts in the past ({start} < now {})", ctx.now),
                    node_context(e),
                ));
            } else if let Some(end) = ctx.window_end {
                if *start >= end {
                    diags.push(Diagnostic::new(
                        "S004",
                        Severity::Error,
                        format!(
                            "leaf starts at {start}, beyond the plan-ahead window \
                             ending at {end}"
                        ),
                        node_context(e),
                    ));
                }
            }
            if *value <= 0.0 {
                diags.push(Diagnostic::new(
                    "S006",
                    Severity::Warning,
                    format!("non-positive leaf value {value}; it adds no objective weight"),
                    node_context(e),
                ));
            }
        }
        StrlExpr::Max(children) | StrlExpr::Min(children) => {
            let op = if matches!(e, StrlExpr::Max(_)) {
                "max"
            } else {
                "min"
            };
            if children.is_empty() {
                diags.push(Diagnostic::new(
                    "S008",
                    Severity::Warning,
                    format!("empty `{op}` operator yields no value"),
                    node_context(e),
                ));
            }
            for c in children {
                if c.value_upper_bound() <= 0.0 {
                    diags.push(Diagnostic::new(
                        "S005",
                        Severity::Warning,
                        format!(
                            "dead `{op}` branch: the child's value upper bound is \
                             non-positive, so it can never be chosen usefully"
                        ),
                        node_context(c),
                    ));
                }
            }
        }
        StrlExpr::Sum(children) => {
            if children.is_empty() {
                diags.push(Diagnostic::new(
                    "S008",
                    Severity::Warning,
                    "empty `sum` operator yields no value",
                    node_context(e),
                ));
            }
        }
        StrlExpr::Scale { factor, .. } => {
            if *factor <= 0.0 {
                diags.push(Diagnostic::new(
                    "S006",
                    Severity::Warning,
                    format!("non-positive scale factor {factor} zeroes the child's value"),
                    node_context(e),
                ));
            }
        }
        StrlExpr::Barrier { value, child } => {
            if *value <= 0.0 {
                diags.push(Diagnostic::new(
                    "S007",
                    Severity::Warning,
                    format!("barrier threshold {value} is non-positive"),
                    node_context(e),
                ));
            } else if child.value_upper_bound() < *value {
                diags.push(Diagnostic::new(
                    "S007",
                    Severity::Warning,
                    format!(
                        "unreachable barrier: threshold {value} exceeds the child's \
                         value upper bound {}",
                        child.value_upper_bound()
                    ),
                    node_context(e),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrisched_cluster::{NodeId, NodeSet};

    fn set(ids: &[u32]) -> NodeSet {
        NodeSet::from_ids(8, ids.iter().map(|&i| NodeId(i)))
    }

    fn ctx() -> StrlLintContext {
        StrlLintContext {
            now: 10,
            window_end: Some(100),
        }
    }

    #[test]
    fn healthy_expr_is_clean() {
        let e = StrlExpr::max([
            StrlExpr::nck(set(&[0, 1]), 2, 10, 5, 4.0),
            StrlExpr::nck(set(&[0, 1, 2, 3]), 2, 12, 6, 3.0),
        ]);
        assert!(lint_expr(&e, &ctx()).is_empty());
    }

    #[test]
    fn lnck_oversubscription_is_warning_not_error() {
        let e = StrlExpr::lnck(set(&[0, 1]), 4, 10, 5, 4.0);
        let diags = lint_expr(&e, &ctx());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "S002");
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn long_context_is_truncated() {
        let leaves: Vec<StrlExpr> = (0..20)
            .map(|i| StrlExpr::nck(set(&[0, 1, 2, 3, 4, 5]), 7, 10 + i, 5, 4.0))
            .collect();
        let diags = lint_expr(&StrlExpr::sum(leaves), &ctx());
        assert!(!diags.is_empty());
        for d in &diags {
            assert!(d.context.chars().count() <= 97);
        }
    }
}
