//! A hand-rolled, zero-dependency Rust lexer for the source analyzer.
//!
//! The old `srclint` was a line-substring scanner: it could not tell a
//! needle inside a string literal or a `/* */` block from real code, and
//! its `#[cfg(test)]` handling was "give up at the first marker". This
//! lexer replaces that substrate with a real token stream:
//!
//! - string (`"…"`), raw-string (`r#"…"#`, any hash depth), byte-string
//!   (`b"…"`, `br#"…"#`), and C-string (`c"…"`) literals are single
//!   tokens, so their contents can never match a code pattern;
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* … */ */`) are single trivia tokens;
//! - `'a` lifetimes are distinguished from `'a'` char literals by
//!   lookahead, so generic code does not open a phantom char literal;
//! - numeric literals keep enough shape (`.`-bearing mantissas, exponent,
//!   `f32`/`f64` suffixes) to answer "is this a float?" for the
//!   determinism lints.
//!
//! Two properties the analyzer's tests pin down:
//!
//! 1. **Total**: the lexer never panics, on *any* byte string — including
//!    invalid UTF-8, unterminated literals, and stray quotes. Unterminated
//!    tokens simply extend to end of input.
//! 2. **Lossless**: tokens tile the input exactly — concatenating every
//!    token's byte range reproduces the input byte-for-byte (proptested in
//!    `tests/proptest_lexer.rs`).
//!
//! Operating on raw bytes (not `char`s) keeps the lexer total on arbitrary
//! input: bytes ≥ 0x80 are treated as identifier constituents, which is
//! the right classification for every place they can legally appear in
//! Rust source and a harmless one everywhere else.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Runs of ASCII whitespace.
    Whitespace,
    /// `// …` to (but not including) the newline; covers doc comments.
    LineComment,
    /// `/* … */` with nesting; unterminated comments run to end of input.
    BlockComment,
    /// String-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `c"…"`. The whole literal (prefix, hashes, quotes, body) is one
    /// token, so nothing inside it can match a code pattern.
    Str,
    /// Character or byte-character literal: `'x'`, `'\n'`, `b'\xff'`.
    Char,
    /// Lifetime or loop label: `'a`, `'static`, `'outer`.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Identifier, keyword, or raw identifier (`r#match`).
    Ident,
    /// A single punctuation byte. Multi-byte operators (`::`, `==`, `->`)
    /// are adjacent `Punct` tokens; consumers test span adjacency.
    Punct,
}

/// One token: a classified, line-annotated byte range of the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's bytes within `src` (the input it was lexed from).
    pub fn bytes<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        &src[self.start..self.end]
    }

    /// The token's text, lossily decoded (only used for display and for
    /// ASCII-only pattern matching, where lossy decoding is exact).
    pub fn text<'a>(&self, src: &'a [u8]) -> std::borrow::Cow<'a, str> {
        String::from_utf8_lossy(self.bytes(src))
    }

    /// Whether this token is trivia (whitespace or a comment).
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Whether a `Num` token's text denotes a floating-point literal: it has
/// a fractional part (`1.5`), a decimal exponent (`1e9`), or an explicit
/// float suffix (`1f64`). Hex/octal/binary literals are never floats.
pub fn num_is_float(text: &[u8]) -> bool {
    if text.len() >= 2 && text[0] == b'0' && matches!(text[1], b'x' | b'o' | b'b' | b'X') {
        return false;
    }
    let s = String::from_utf8_lossy(text);
    s.contains('.')
        || s.ends_with("f32")
        || s.ends_with("f64")
        || s.bytes().any(|b| b == b'e' || b == b'E')
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// The lexer: a cursor over raw bytes.
struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances `n` bytes, counting newlines.
    fn bump(&mut self, n: usize) {
        let end = (self.pos + n).min(self.src.len());
        for &b in &self.src[self.pos..end] {
            if b == b'\n' {
                self.line += 1;
            }
        }
        self.pos = end;
    }

    fn bump_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek(0) {
            if pred(b) {
                self.bump(1);
            } else {
                break;
            }
        }
    }

    /// Consumes a double-quoted string body starting *after* the opening
    /// quote, honouring backslash escapes. Unterminated → end of input.
    fn quoted_body(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump(2.min(self.src.len() - self.pos)),
                b'"' => {
                    self.bump(1);
                    return;
                }
                _ => self.bump(1),
            }
        }
    }

    /// Consumes a raw-string body starting at the hashes: `#*"…"#*`.
    /// Returns whether this really was a raw string (it is not when the
    /// hashes are not followed by a quote — that's a raw identifier or
    /// stray punctuation, and the cursor is left untouched).
    fn raw_string_body(&mut self) -> bool {
        let mut hashes = 0;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some(b'"') {
            return false;
        }
        self.bump(hashes + 1);
        // Scan for `"` followed by `hashes` hashes.
        while let Some(b) = self.peek(0) {
            self.bump(1);
            if b == b'"' {
                let mut n = 0;
                while n < hashes && self.peek(n) == Some(b'#') {
                    n += 1;
                }
                if n == hashes {
                    self.bump(hashes);
                    return true;
                }
            }
        }
        true // unterminated: ran to end of input
    }

    /// Consumes a nested block comment starting after the opening `/*`.
    fn block_comment_body(&mut self) {
        let mut depth = 1usize;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                self.bump(2);
                depth += 1;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                self.bump(2);
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump(1);
            }
        }
    }

    /// Consumes a numeric literal. Entered on an ASCII digit.
    fn number(&mut self) {
        if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X')) {
            self.bump(2);
            self.bump_while(|b| b.is_ascii_alphanumeric() || b == b'_');
            return;
        }
        self.bump_while(|b| b.is_ascii_digit() || b == b'_');
        // Fractional part: a `.` counts only when followed by a digit, so
        // ranges (`0..n`) and method calls (`1.max(x)`) stay separate.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump(1);
            self.bump_while(|b| b.is_ascii_digit() || b == b'_');
        } else if self.peek(0) == Some(b'.')
            && !self.peek(1).is_some_and(is_ident_start)
            && self.peek(1) != Some(b'.')
        {
            // Trailing-dot float (`1.`): dot not followed by ident, digit,
            // or another dot.
            self.bump(1);
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = matches!(self.peek(1), Some(b'+' | b'-'));
            let digit_at = if sign { 2 } else { 1 };
            if self.peek(digit_at).is_some_and(|b| b.is_ascii_digit()) {
                self.bump(digit_at);
                self.bump_while(|b| b.is_ascii_digit() || b == b'_');
            }
        }
        // Suffix (`u32`, `f64`, …) glues onto the literal.
        self.bump_while(is_ident_continue);
    }

    /// Lexes one token at the cursor. The cursor is not at end of input.
    fn next_token(&mut self) -> Token {
        let start = self.pos;
        let line = self.line;
        let b = self.src[self.pos];
        let kind = match b {
            _ if b.is_ascii_whitespace() => {
                self.bump_while(|b| b.is_ascii_whitespace());
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                self.bump_while(|b| b != b'\n');
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.bump(2);
                self.block_comment_body();
                TokenKind::BlockComment
            }
            b'"' => {
                self.bump(1);
                self.quoted_body();
                TokenKind::Str
            }
            b'\'' => self.char_or_lifetime(),
            _ if b.is_ascii_digit() => {
                self.number();
                TokenKind::Num
            }
            _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
            _ => {
                self.bump(1);
                TokenKind::Punct
            }
        };
        Token {
            kind,
            start,
            end: self.pos,
            line,
        }
    }

    /// Disambiguates `'a'` / `'\n'` (char literals) from `'a` / `'static`
    /// (lifetimes and labels). Entered on the opening quote.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(1); // the quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume escapes until the close.
                while let Some(b) = self.peek(0) {
                    match b {
                        b'\\' => self.bump(2.min(self.src.len() - self.pos)),
                        b'\'' => {
                            self.bump(1);
                            return TokenKind::Char;
                        }
                        b'\n' => return TokenKind::Char, // unterminated
                        _ => self.bump(1),
                    }
                }
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                // Could be `'x'` (char) or `'ident` (lifetime): scan the
                // identifier run, then look for a closing quote.
                let mut n = 0;
                while self.peek(n).is_some_and(is_ident_continue) {
                    n += 1;
                }
                if self.peek(n) == Some(b'\'') {
                    self.bump(n + 1);
                    TokenKind::Char
                } else {
                    self.bump(n);
                    TokenKind::Lifetime
                }
            }
            Some(b'\'') => {
                // `''` — empty char literal (invalid Rust, but total).
                self.bump(1);
                TokenKind::Char
            }
            Some(c) => {
                // `'('`-style char of one punctuation byte, if closed.
                if self.peek(1) == Some(b'\'') && c != b'\n' {
                    self.bump(2);
                    TokenKind::Char
                } else {
                    TokenKind::Punct // a stray quote
                }
            }
            None => TokenKind::Punct,
        }
    }

    /// Lexes an identifier, checking for string-literal prefixes (`r"`,
    /// `b"`, `br#"`, `c"`, …) and raw identifiers (`r#match`).
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let start = self.pos;
        self.bump_while(is_ident_continue);
        let ident = &self.src[start..self.pos];
        let next = self.peek(0);
        let string_prefix = matches!(ident, b"r" | b"b" | b"br" | b"c" | b"cr" | b"rb");
        if string_prefix && next == Some(b'"') {
            self.bump(1);
            self.quoted_body();
            return TokenKind::Str;
        }
        if string_prefix && next == Some(b'#') {
            // `r#"…"#` raw string or `r#ident` raw identifier.
            if self.raw_string_body() {
                return TokenKind::Str;
            }
            if self.peek(1).is_some_and(is_ident_start) {
                self.bump(1); // the hash
                self.bump_while(is_ident_continue);
                return TokenKind::Ident;
            }
        }
        if ident == b"b" && next == Some(b'\'') {
            // Reuse the char/lifetime disambiguator (it consumes the
            // quote itself); whatever it sees, the `b` prefix makes the
            // whole run a byte-char literal, and an unterminated `b'x`
            // still lexes without panicking.
            self.char_or_lifetime();
            return TokenKind::Char;
        }
        TokenKind::Ident
    }
}

/// Lexes `src` into a complete, lossless token stream: the returned
/// tokens tile `0..src.len()` exactly, in order, and the function is
/// total over arbitrary bytes.
pub fn lex(src: &[u8]) -> Vec<Token> {
    let mut lx = Lexer {
        src,
        pos: 0,
        line: 1,
    };
    let mut out = Vec::with_capacity(src.len() / 4 + 8);
    while lx.pos < src.len() {
        let before = lx.pos;
        let tok = lx.next_token();
        // Totality backstop: every token consumes at least one byte.
        if lx.pos == before {
            lx.bump(1);
            out.push(Token {
                kind: TokenKind::Punct,
                start: before,
                end: lx.pos,
                line: tok.line,
            });
        } else {
            out.push(tok);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src.as_bytes())
            .into_iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    fn sig(src: &str) -> Vec<(TokenKind, String)> {
        kinds(src)
            .into_iter()
            .filter(|(k, _)| {
                !matches!(
                    k,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(k, s)| (k, s.to_string()))
            .collect()
    }

    #[test]
    fn round_trips_basic_source() {
        let src = "fn main() { let x = 1.5; // done\n }";
        let toks = lex(src.as_bytes());
        let rebuilt: Vec<u8> = toks
            .iter()
            .flat_map(|t| src.as_bytes()[t.start..t.end].to_vec())
            .collect();
        assert_eq!(rebuilt, src.as_bytes());
    }

    #[test]
    fn strings_are_single_tokens() {
        let got = sig(r#"let s = "has .unwrap() inside";"#);
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Str && s.contains("unwrap")));
        // No Ident token spells `unwrap`.
        assert!(!got
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "unwrap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let got = sig(r###"let s = r#"Instant::now() "quoted" "#;"###);
        let strs: Vec<_> = got.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("Instant"));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let got = sig("let r#match = 1;");
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "r#match"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let got = kinds(src);
        let comments: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::BlockComment)
            .collect();
        assert_eq!(comments.len(), 1);
        assert!(comments[0].1.contains("inner"));
        let idents: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(idents, ["a", "b"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let got = sig("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Lifetime && s == "'a"));
        assert!(got.iter().any(|(k, s)| *k == TokenKind::Char && s == "'x'"));
        let got = sig("'static loop_label: loop { break 'static2; }");
        assert!(got
            .iter()
            .any(|(k, s)| *k == TokenKind::Lifetime && s == "'static"));
    }

    #[test]
    fn escaped_char_literals() {
        let got = sig(r"let c = '\n'; let q = '\''; let u = '\u{1F600}';");
        let chars: Vec<_> = got.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn float_detection() {
        assert!(num_is_float(b"1.5"));
        assert!(num_is_float(b"1e9"));
        assert!(num_is_float(b"2f64"));
        assert!(num_is_float(b"0.0"));
        assert!(!num_is_float(b"10"));
        assert!(!num_is_float(b"0xff"));
        assert!(!num_is_float(b"1_000u64"));
        assert!(!num_is_float(b"0b1010"));
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let got = sig("for i in 0..n { a[i] }");
        assert!(got.iter().any(|(k, s)| *k == TokenKind::Num && s == "0"));
        assert_eq!(
            got.iter()
                .filter(|(k, s)| *k == TokenKind::Punct && s == ".")
                .count(),
            2
        );
    }

    #[test]
    fn unterminated_inputs_are_total() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed",
            "'",
            "b'",
            "let x = '\\",
            "r#",
        ] {
            let toks = lex(src.as_bytes());
            let total: usize = toks.iter().map(|t| t.end - t.start).sum();
            assert_eq!(total, src.len(), "lossless on {src:?}");
        }
    }

    #[test]
    fn non_utf8_is_total() {
        let src = [0xff, 0xfe, b'f', b'n', 0x80, b'"', 0xc3];
        let toks = lex(&src);
        let total: usize = toks.iter().map(|t| t.end - t.start).sum();
        assert_eq!(total, src.len());
    }

    #[test]
    fn line_numbers() {
        let toks = lex(b"a\nb\n\ncd");
        let lines: Vec<(String, u32)> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| {
                (
                    String::from_utf8_lossy(t.bytes(b"a\nb\n\ncd")).into_owned(),
                    t.line,
                )
            })
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("cd".into(), 4)]
        );
    }
}
