//! Diagnostic renderers: pretty terminal text and line-oriented JSON.
//!
//! JSON is hand-rolled (the workspace vendors no serde); the output is one
//! object per diagnostic inside a top-level array, stable enough for CI to
//! parse with any JSON reader.

use std::fmt::Write as _;

use tetrisched_milp::lint::{Diagnostic, Severity};

/// Renders diagnostics as human-readable lines, one per finding, with a
/// trailing severity tally.
pub fn render_pretty(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
        let _ = writeln!(out, "  --> {}", d.context);
        if let Some(cert) = &d.certificate {
            let _ = writeln!(out, "  certificate: {cert}");
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let _ = writeln!(
        out,
        "{} error{}, {} warning{}",
        errors,
        if errors == 1 { "" } else { "s" },
        warnings,
        if warnings == 1 { "" } else { "s" },
    );
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON array of objects with `code`, `severity`,
/// `message`, `context`, and (when present) a rendered `certificate`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"context\":\"{}\"",
            json_escape(d.code),
            d.severity,
            json_escape(&d.message),
            json_escape(&d.context),
        );
        if let Some(cert) = &d.certificate {
            let _ = write!(
                out,
                ",\"certificate\":\"{}\"",
                json_escape(&cert.to_string())
            );
        }
        out.push('}');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new("S001", Severity::Error, "empty \"set\"", "nCk({}, k=1)"),
            Diagnostic::new("M006", Severity::Warning, "big-M", "row `supply`"),
        ]
    }

    #[test]
    fn pretty_includes_tally() {
        let out = render_pretty(&sample());
        assert!(out.contains("error[S001]"));
        assert!(out.contains("warning[M006]"));
        assert!(out.contains("1 error, 1 warning"));
    }

    #[test]
    fn json_escapes_and_structures() {
        let out = render_json(&sample());
        assert!(out.starts_with('[') && out.ends_with(']'));
        assert!(out.contains("\\\"set\\\""));
        assert!(out.contains("\"severity\":\"error\""));
        // Two objects.
        assert_eq!(out.matches("\"code\"").count(), 2);
    }

    #[test]
    fn json_empty_is_empty_array() {
        assert_eq!(render_json(&[]), "[]");
    }
}
