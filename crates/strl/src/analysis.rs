//! Expression analysis and simplification passes.
//!
//! The STRL Generator "performs many possible optimizations, such as culling
//! the expression growth" (paper Sec. 3.2.1); this module hosts the generic
//! tree-level ones: flattening nested operators, dropping provably worthless
//! branches, and collapsing trivial operators. Smaller expressions compile
//! to smaller MILP problems (Sec. 7.3).

use crate::expr::StrlExpr;

/// Aggregate statistics of an expression tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExprStats {
    /// Total nodes.
    pub nodes: usize,
    /// Leaf primitives (`nCk` / `LnCk`).
    pub leaves: usize,
    /// Tree depth.
    pub depth: usize,
    /// `max` operator nodes.
    pub max_ops: usize,
    /// `min` operator nodes.
    pub min_ops: usize,
    /// `sum` operator nodes.
    pub sum_ops: usize,
}

impl ExprStats {
    /// Computes statistics for an expression.
    pub fn of(expr: &StrlExpr) -> ExprStats {
        let mut s = ExprStats {
            depth: expr.depth(),
            ..Default::default()
        };
        expr.visit(&mut |e| {
            s.nodes += 1;
            match e {
                StrlExpr::NCk { .. } | StrlExpr::LnCk { .. } => s.leaves += 1,
                StrlExpr::Max(_) => s.max_ops += 1,
                StrlExpr::Min(_) => s.min_ops += 1,
                StrlExpr::Sum(_) => s.sum_ops += 1,
                _ => {}
            }
        });
        s
    }
}

/// Simplifies an expression without changing its value semantics:
///
/// - nested `sum`/`max` operators are flattened into their parent,
/// - branches that can never yield positive value are dropped (`max`/`sum`)
///   or poison their parent (`min`),
/// - single-child `max`/`min`/`sum` collapse to the child,
/// - `scale(1, e)` collapses to `e`; non-positive scales drop the branch,
/// - unsatisfiable subtrees normalize to the empty `max()`.
pub fn simplify(expr: StrlExpr) -> StrlExpr {
    match expr {
        leaf @ (StrlExpr::NCk { .. } | StrlExpr::LnCk { .. }) => {
            let worthless = match &leaf {
                StrlExpr::NCk { k, value, .. } | StrlExpr::LnCk { k, value, .. } => {
                    *k == 0 || *value <= 0.0
                }
                _ => unreachable!(),
            };
            // Also unsatisfiable: an `nCk` asking for more nodes than the
            // set holds, or a linear leaf over an empty set.
            let infeasible = match &leaf {
                StrlExpr::NCk { set, k, .. } => (set.len() as u32) < *k,
                StrlExpr::LnCk { set, .. } => set.is_empty(),
                _ => false,
            };
            if worthless || infeasible {
                StrlExpr::Max(Vec::new())
            } else {
                leaf
            }
        }
        StrlExpr::Max(children) => {
            let mut out = Vec::with_capacity(children.len());
            for c in children {
                match simplify(c) {
                    StrlExpr::Max(inner) => out.extend(inner),
                    e if e.value_upper_bound() <= 0.0 => {}
                    e => out.push(e),
                }
            }
            collapse(StrlExpr::Max(out))
        }
        StrlExpr::Sum(children) => {
            let mut out = Vec::with_capacity(children.len());
            for c in children {
                match simplify(c) {
                    StrlExpr::Sum(inner) => out.extend(inner),
                    e if e.value_upper_bound() <= 0.0 => {}
                    e => out.push(e),
                }
            }
            collapse(StrlExpr::Sum(out))
        }
        StrlExpr::Min(children) => {
            let mut out = Vec::with_capacity(children.len());
            for c in children {
                let s = simplify(c);
                if s.value_upper_bound() <= 0.0 {
                    // One unsatisfiable conjunct poisons the whole `min`.
                    return StrlExpr::Max(Vec::new());
                }
                out.push(s);
            }
            collapse(StrlExpr::Min(out))
        }
        StrlExpr::Scale { factor, child } => {
            if factor <= 0.0 {
                return StrlExpr::Max(Vec::new());
            }
            let child = simplify(*child);
            if child.value_upper_bound() <= 0.0 {
                StrlExpr::Max(Vec::new())
            } else if factor == 1.0 {
                child
            } else {
                StrlExpr::scale(factor, child)
            }
        }
        StrlExpr::Barrier { value, child } => {
            let child = simplify(*child);
            if child.value_upper_bound() < value || value <= 0.0 {
                StrlExpr::Max(Vec::new())
            } else {
                StrlExpr::barrier(value, child)
            }
        }
    }
}

/// Collapses a single-child operator to its child; empty `min` (vacuous
/// truth has no value here) normalizes to empty `max`.
fn collapse(expr: StrlExpr) -> StrlExpr {
    match expr {
        StrlExpr::Max(mut c) | StrlExpr::Min(mut c) | StrlExpr::Sum(mut c) if c.len() == 1 => {
            c.pop().expect("length checked")
        }
        StrlExpr::Min(c) if c.is_empty() => StrlExpr::Max(Vec::new()),
        StrlExpr::Sum(c) if c.is_empty() => StrlExpr::Max(Vec::new()),
        e => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrisched_cluster::{NodeId, NodeSet};

    fn set(ids: &[u32]) -> NodeSet {
        NodeSet::from_ids(8, ids.iter().map(|&i| NodeId(i)))
    }

    fn leaf(v: f64) -> StrlExpr {
        StrlExpr::nck(set(&[0, 1]), 1, 0, 1, v)
    }

    #[test]
    fn stats_count_everything() {
        let e = StrlExpr::sum([
            StrlExpr::max([leaf(1.0), leaf(2.0)]),
            StrlExpr::min([leaf(1.0), leaf(1.0)]),
        ]);
        let s = ExprStats::of(&e);
        assert_eq!(s.nodes, 7);
        assert_eq!(s.leaves, 4);
        assert_eq!(s.depth, 3);
        assert_eq!(s.max_ops, 1);
        assert_eq!(s.min_ops, 1);
        assert_eq!(s.sum_ops, 1);
    }

    #[test]
    fn flatten_nested_sum_and_max() {
        let e = StrlExpr::sum([StrlExpr::sum([leaf(1.0), leaf(2.0)]), leaf(3.0)]);
        let s = simplify(e);
        assert!(matches!(&s, StrlExpr::Sum(c) if c.len() == 3));

        let e = StrlExpr::max([StrlExpr::max([leaf(1.0), leaf(2.0)]), leaf(3.0)]);
        let s = simplify(e);
        assert!(matches!(&s, StrlExpr::Max(c) if c.len() == 3));
    }

    #[test]
    fn worthless_branches_dropped() {
        let e = StrlExpr::max([leaf(0.0), leaf(2.0), leaf(-1.0)]);
        // Two worthless options drop; single survivor collapses.
        assert_eq!(simplify(e), leaf(2.0));
    }

    #[test]
    fn infeasible_k_drops() {
        // Ask for 5 nodes out of a 2-node set.
        let e = StrlExpr::nck(set(&[0, 1]), 5, 0, 1, 3.0);
        assert!(matches!(simplify(e), StrlExpr::Max(c) if c.is_empty()));
    }

    #[test]
    fn min_poisoned_by_worthless_child() {
        let e = StrlExpr::min([leaf(1.0), leaf(0.0)]);
        assert!(matches!(simplify(e), StrlExpr::Max(c) if c.is_empty()));
    }

    #[test]
    fn scale_one_collapses() {
        assert_eq!(simplify(StrlExpr::scale(1.0, leaf(2.0))), leaf(2.0));
    }

    #[test]
    fn scale_nonpositive_drops() {
        assert!(matches!(
            simplify(StrlExpr::scale(0.0, leaf(2.0))),
            StrlExpr::Max(c) if c.is_empty()
        ));
    }

    #[test]
    fn barrier_unreachable_drops() {
        assert!(matches!(
            simplify(StrlExpr::barrier(5.0, leaf(2.0))),
            StrlExpr::Max(c) if c.is_empty()
        ));
        // Reachable barrier survives.
        assert!(matches!(
            simplify(StrlExpr::barrier(2.0, leaf(2.0))),
            StrlExpr::Barrier { .. }
        ));
    }

    #[test]
    fn simplify_preserves_upper_bound() {
        let e = StrlExpr::sum([
            StrlExpr::max([leaf(4.0), leaf(3.0), leaf(0.0)]),
            StrlExpr::min([leaf(2.0), leaf(5.0)]),
            StrlExpr::scale(2.0, leaf(1.5)),
        ]);
        let before = e.value_upper_bound();
        let after = simplify(e).value_upper_bound();
        assert_eq!(before, after);
    }
}
