//! The STRL expression tree (paper Sec. 4.1).

use std::fmt;

use tetrisched_cluster::NodeSet;

use crate::Time;

/// A STRL expression.
///
/// Expression trees compose leaves that initiate "the upward flow of value"
/// with operator nodes that multiplex (`max`), enforce uniformity (`min`),
/// cap (`barrier`), scale, or aggregate (`sum`) that flow.
#[derive(Debug, Clone, PartialEq)]
pub enum StrlExpr {
    /// `nCk(equivalence set, k, start, dur, v)`: any `k` resources from
    /// `set`, held from `start` for `dur` seconds, worth `v` when satisfied.
    NCk {
        /// Equivalence set to choose from.
        set: NodeSet,
        /// Number of resources required.
        k: u32,
        /// Allocation start time (absolute).
        start: Time,
        /// Allocation duration in seconds.
        dur: u64,
        /// Value when satisfied.
        value: f64,
    },
    /// Linear `nCk`: up to `k` resources, each contributing `value / k`.
    /// Suppresses enumerating the same option at every quantity (Sec. 4.1).
    LnCk {
        /// Equivalence set to choose from.
        set: NodeSet,
        /// Maximum number of resources.
        k: u32,
        /// Allocation start time (absolute).
        start: Time,
        /// Allocation duration in seconds.
        dur: u64,
        /// Value when all `k` are obtained (scales linearly below that).
        value: f64,
    },
    /// Satisfied if at least one child is; chooses the child of maximum
    /// value ("OR" semantics; soft constraints).
    Max(Vec<StrlExpr>),
    /// Satisfied only if all children are ("AND" semantics; anti-affinity
    /// and gang constraints). Its value is the minimum child value.
    Min(Vec<StrlExpr>),
    /// Aggregates children; the batching operator for global scheduling.
    Sum(Vec<StrlExpr>),
    /// Amplifies the child's value by a scalar.
    Scale {
        /// Multiplier applied to the child's value.
        factor: f64,
        /// Scaled subexpression.
        child: Box<StrlExpr>,
    },
    /// Satisfied if the child is valued at least `value`; returns `value`.
    Barrier {
        /// Threshold (and returned) value.
        value: f64,
        /// Thresholded subexpression.
        child: Box<StrlExpr>,
    },
}

impl StrlExpr {
    /// Builds an `nCk` leaf.
    pub fn nck(set: NodeSet, k: u32, start: Time, dur: u64, value: f64) -> StrlExpr {
        StrlExpr::NCk {
            set,
            k,
            start,
            dur,
            value,
        }
    }

    /// Builds a linear `nCk` leaf.
    pub fn lnck(set: NodeSet, k: u32, start: Time, dur: u64, value: f64) -> StrlExpr {
        StrlExpr::LnCk {
            set,
            k,
            start,
            dur,
            value,
        }
    }

    /// Builds a `max` over children.
    pub fn max(children: impl IntoIterator<Item = StrlExpr>) -> StrlExpr {
        StrlExpr::Max(children.into_iter().collect())
    }

    /// Builds a `min` over children.
    pub fn min(children: impl IntoIterator<Item = StrlExpr>) -> StrlExpr {
        StrlExpr::Min(children.into_iter().collect())
    }

    /// Builds a `sum` over children.
    pub fn sum(children: impl IntoIterator<Item = StrlExpr>) -> StrlExpr {
        StrlExpr::Sum(children.into_iter().collect())
    }

    /// Builds a `scale` node.
    pub fn scale(factor: f64, child: StrlExpr) -> StrlExpr {
        StrlExpr::Scale {
            factor,
            child: Box::new(child),
        }
    }

    /// Builds a `barrier` node.
    pub fn barrier(value: f64, child: StrlExpr) -> StrlExpr {
        StrlExpr::Barrier {
            value,
            child: Box::new(child),
        }
    }

    /// Immediate children of an operator node (empty for leaves).
    pub fn children(&self) -> &[StrlExpr] {
        match self {
            StrlExpr::Max(c) | StrlExpr::Min(c) | StrlExpr::Sum(c) => c,
            StrlExpr::Scale { child, .. } | StrlExpr::Barrier { child, .. } => {
                std::slice::from_ref(child)
            }
            _ => &[],
        }
    }

    /// Whether this node is a leaf primitive.
    pub fn is_leaf(&self) -> bool {
        matches!(self, StrlExpr::NCk { .. } | StrlExpr::LnCk { .. })
    }

    /// Visits every node in the tree, parents before children.
    pub fn visit(&self, f: &mut impl FnMut(&StrlExpr)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Number of leaf primitives.
    pub fn leaf_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if e.is_leaf() {
                n += 1;
            }
        });
        n
    }

    /// Tree depth (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(StrlExpr::depth)
            .max()
            .unwrap_or(0)
    }

    /// Latest end time (`start + dur`) over all leaves, or `None` for an
    /// expression without leaves.
    pub fn horizon(&self) -> Option<Time> {
        let mut h: Option<Time> = None;
        self.visit(&mut |e| {
            if let StrlExpr::NCk { start, dur, .. } | StrlExpr::LnCk { start, dur, .. } = e {
                let end = start + dur;
                h = Some(h.map_or(end, |x| x.max(end)));
            }
        });
        h
    }

    /// Evaluates the expression under a concrete placement: `granted[i]`
    /// is the number of resources awarded to the `i`-th leaf in pre-order
    /// walk order (the order [`StrlExpr::visit`] uses, and the order the
    /// MILP compiler assigns leaf slots in).
    ///
    /// Semantics (paper Sec. 4.1): an `nCk` leaf yields its value iff at
    /// least `k` resources are granted; `LnCk` yields
    /// `value * min(granted, k) / k`; `max`/`min`/`sum` fold their
    /// children; `scale` multiplies; `barrier` yields its value iff the
    /// child valuation reaches the threshold. Missing trailing entries
    /// count as zero grants.
    ///
    /// This is the STRL side of solve certification: the MILP solution,
    /// decoded back to granted-per-leaf counts, must evaluate here to the
    /// claimed objective (exactly when [`StrlExpr::has_relaxed_encoding`]
    /// is false, as a lower bound otherwise).
    pub fn placement_value(&self, granted: &[u32]) -> f64 {
        let mut ix = 0;
        self.placement_value_at(granted, &mut ix)
    }

    fn placement_value_at(&self, granted: &[u32], ix: &mut usize) -> f64 {
        match self {
            StrlExpr::NCk { k, value, .. } => {
                let g = granted.get(*ix).copied().unwrap_or(0);
                *ix += 1;
                if g >= *k {
                    *value
                } else {
                    0.0
                }
            }
            StrlExpr::LnCk { k, value, .. } => {
                let g = granted.get(*ix).copied().unwrap_or(0);
                *ix += 1;
                if *k == 0 {
                    0.0
                } else {
                    value * (g.min(*k) as f64) / (*k as f64)
                }
            }
            StrlExpr::Max(c) => c
                .iter()
                .map(|e| e.placement_value_at(granted, ix))
                .fold(0.0, f64::max),
            StrlExpr::Min(c) => {
                if c.is_empty() {
                    0.0
                } else {
                    c.iter()
                        .map(|e| e.placement_value_at(granted, ix))
                        .fold(f64::INFINITY, f64::min)
                }
            }
            StrlExpr::Sum(c) => c.iter().map(|e| e.placement_value_at(granted, ix)).sum(),
            StrlExpr::Scale { factor, child } => factor * child.placement_value_at(granted, ix),
            StrlExpr::Barrier { value, child } => {
                let v = child.placement_value_at(granted, ix);
                if v >= value - 1e-9 {
                    *value
                } else {
                    0.0
                }
            }
        }
    }

    /// Whether the tree contains operators whose MILP encoding is an
    /// inequality relaxation (`min`, `barrier`). For such trees the
    /// compiled objective under-approximates the STRL valuation of a
    /// placement (the solver is free to leave the coupling variable below
    /// its implied value), so translation validation checks a `<=` bound
    /// instead of exact equality.
    pub fn has_relaxed_encoding(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, StrlExpr::Min(_) | StrlExpr::Barrier { .. }) {
                found = true;
            }
        });
        found
    }

    /// An optimistic upper bound on the value this expression can yield.
    ///
    /// Used for culling: an expression whose bound is not positive can never
    /// be satisfied usefully.
    pub fn value_upper_bound(&self) -> f64 {
        match self {
            // A degenerate leaf (k = 0, or k larger than its set) can never
            // yield useful value: the demand constraint either awards value
            // for zero resources or is unsatisfiable.
            StrlExpr::NCk { set, k, value, .. } => {
                if *k == 0 || (set.len() as u32) < *k {
                    0.0
                } else {
                    value.max(0.0)
                }
            }
            // Linear nCk awards value per resource obtained, so an
            // undersized set caps the achievable fraction.
            StrlExpr::LnCk { set, k, value, .. } => {
                if *k == 0 {
                    0.0
                } else {
                    let frac = (set.len() as f64 / *k as f64).min(1.0);
                    (value * frac).max(0.0)
                }
            }
            StrlExpr::Max(c) => c
                .iter()
                .map(StrlExpr::value_upper_bound)
                .fold(0.0, f64::max),
            StrlExpr::Min(c) => c
                .iter()
                .map(StrlExpr::value_upper_bound)
                .fold(f64::INFINITY, f64::min)
                .max(0.0),
            StrlExpr::Sum(c) => c.iter().map(StrlExpr::value_upper_bound).sum(),
            StrlExpr::Scale { factor, child } => (factor * child.value_upper_bound()).max(0.0),
            StrlExpr::Barrier { value, child } => {
                if child.value_upper_bound() >= *value {
                    value.max(0.0)
                } else {
                    0.0
                }
            }
        }
    }
}

impl fmt::Display for StrlExpr {
    /// Formats in the paper's syntax, e.g.
    /// `nCk({M0, M1}, k=2, s=0, dur=2, v=4)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrlExpr::NCk {
                set,
                k,
                start,
                dur,
                value,
            } => write!(f, "nCk({set}, k={k}, s={start}, dur={dur}, v={value})"),
            StrlExpr::LnCk {
                set,
                k,
                start,
                dur,
                value,
            } => write!(f, "LnCk({set}, k={k}, s={start}, dur={dur}, v={value})"),
            StrlExpr::Max(c) => write_op(f, "max", c),
            StrlExpr::Min(c) => write_op(f, "min", c),
            StrlExpr::Sum(c) => write_op(f, "sum", c),
            StrlExpr::Scale { factor, child } => write!(f, "scale({factor}, {child})"),
            StrlExpr::Barrier { value, child } => write!(f, "barrier({value}, {child})"),
        }
    }
}

fn write_op(f: &mut fmt::Formatter<'_>, name: &str, children: &[StrlExpr]) -> fmt::Result {
    write!(f, "{name}(")?;
    for (i, c) in children.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{c}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrisched_cluster::NodeId;

    fn set(ids: &[u32]) -> NodeSet {
        NodeSet::from_ids(8, ids.iter().map(|&i| NodeId(i)))
    }

    /// The paper's Fig. 3 soft-constraint example.
    fn gpu_choice() -> StrlExpr {
        StrlExpr::max([
            StrlExpr::nck(set(&[0, 1]), 2, 0, 2, 4.0),
            StrlExpr::nck(set(&[0, 1, 2, 3]), 2, 0, 3, 3.0),
        ])
    }

    #[test]
    fn display_matches_paper_syntax() {
        let e = StrlExpr::nck(set(&[0, 1]), 2, 0, 2, 4.0);
        assert_eq!(e.to_string(), "nCk({M0, M1}, k=2, s=0, dur=2, v=4)");
    }

    #[test]
    fn display_nested() {
        let e = gpu_choice();
        assert!(e.to_string().starts_with("max(nCk("));
    }

    #[test]
    fn leaf_count_and_depth() {
        let e = gpu_choice();
        assert_eq!(e.leaf_count(), 2);
        assert_eq!(e.depth(), 2);
        assert_eq!(StrlExpr::scale(2.0, e.clone()).depth(), 3);
    }

    #[test]
    fn horizon_is_latest_leaf_end() {
        let e = gpu_choice();
        assert_eq!(e.horizon(), Some(3));
        assert_eq!(StrlExpr::Max(vec![]).horizon(), None);
    }

    #[test]
    fn value_upper_bound_max() {
        assert_eq!(gpu_choice().value_upper_bound(), 4.0);
    }

    #[test]
    fn value_upper_bound_min_takes_smallest() {
        let e = StrlExpr::min([
            StrlExpr::nck(set(&[0]), 1, 0, 1, 5.0),
            StrlExpr::nck(set(&[1]), 1, 0, 1, 2.0),
        ]);
        assert_eq!(e.value_upper_bound(), 2.0);
    }

    #[test]
    fn value_upper_bound_barrier() {
        let child = StrlExpr::nck(set(&[0]), 1, 0, 1, 5.0);
        assert_eq!(
            StrlExpr::barrier(3.0, child.clone()).value_upper_bound(),
            3.0
        );
        assert_eq!(StrlExpr::barrier(9.0, child).value_upper_bound(), 0.0);
    }

    #[test]
    fn value_upper_bound_scale_and_sum() {
        let leaf = StrlExpr::nck(set(&[0]), 1, 0, 1, 2.0);
        let e = StrlExpr::sum([StrlExpr::scale(3.0, leaf.clone()), leaf]);
        assert_eq!(e.value_upper_bound(), 8.0);
    }

    #[test]
    fn placement_value_nck_threshold() {
        let e = StrlExpr::nck(set(&[0, 1]), 2, 0, 2, 4.0);
        assert_eq!(e.placement_value(&[2]), 4.0);
        assert_eq!(e.placement_value(&[1]), 0.0);
        assert_eq!(e.placement_value(&[]), 0.0);
    }

    #[test]
    fn placement_value_lnck_scales_linearly() {
        let e = StrlExpr::lnck(set(&[0, 1, 2, 3]), 4, 0, 2, 8.0);
        assert_eq!(e.placement_value(&[4]), 8.0);
        assert_eq!(e.placement_value(&[2]), 4.0);
        assert_eq!(e.placement_value(&[6]), 8.0); // capped at k
    }

    #[test]
    fn placement_value_operators() {
        // max(nCk(.., k=2, v=4), nCk(.., k=2, v=3)): leaves consume grant
        // slots in pre-order.
        let e = gpu_choice();
        assert_eq!(e.placement_value(&[2, 0]), 4.0);
        assert_eq!(e.placement_value(&[0, 2]), 3.0);
        assert_eq!(e.placement_value(&[0, 0]), 0.0);
        let s = StrlExpr::sum([gpu_choice(), gpu_choice()]);
        assert_eq!(s.placement_value(&[2, 0, 0, 2]), 7.0);
        let m = StrlExpr::min([
            StrlExpr::nck(set(&[0]), 1, 0, 1, 5.0),
            StrlExpr::nck(set(&[1]), 1, 0, 1, 2.0),
        ]);
        assert_eq!(m.placement_value(&[1, 1]), 2.0);
        assert_eq!(m.placement_value(&[1, 0]), 0.0);
        assert_eq!(StrlExpr::Min(vec![]).placement_value(&[]), 0.0);
    }

    #[test]
    fn placement_value_scale_and_barrier() {
        let leaf = StrlExpr::nck(set(&[0]), 1, 0, 1, 2.0);
        assert_eq!(
            StrlExpr::scale(3.0, leaf.clone()).placement_value(&[1]),
            6.0
        );
        assert_eq!(
            StrlExpr::barrier(2.0, leaf.clone()).placement_value(&[1]),
            2.0
        );
        assert_eq!(StrlExpr::barrier(5.0, leaf).placement_value(&[1]), 0.0);
    }

    #[test]
    fn relaxed_encoding_detection() {
        assert!(!gpu_choice().has_relaxed_encoding());
        assert!(StrlExpr::min([gpu_choice()]).has_relaxed_encoding());
        assert!(StrlExpr::barrier(1.0, gpu_choice()).has_relaxed_encoding());
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let mut count = 0;
        StrlExpr::scale(1.0, gpu_choice()).visit(&mut |_| count += 1);
        assert_eq!(count, 4); // scale, max, two leaves
    }
}
