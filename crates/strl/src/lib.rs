//! Space-Time Request Language (STRL).
//!
//! STRL is the algebraic language TetriSched uses to declare job placement
//! preferences over resource *space-time* (paper Sec. 4). An expression is a
//! function mapping space-time resource shapes to scalar value; positive
//! value means the request is satisfied. The language is built from:
//!
//! - the `nCk` leaf primitive — "any `k` resources out of this equivalence
//!   set, starting at `s` for `dur`, worth `v`" (\[R1\] space-time
//!   constraints, \[R3\] combinatorial constraints via equivalence sets),
//! - `LnCk`, the linear variant that awards partial value per resource
//!   obtained,
//! - `max` — choice among options, i.e. soft constraints (\[R2\]),
//! - `min` — all children must be satisfied (gang/anti-affinity, \[R4\]),
//! - `scale` and `barrier` — value amplification and thresholds,
//! - `sum` — batching all pending jobs for global scheduling (\[R5\]).
//!
//! The crate also provides the paper's value functions (Fig. 5), the RDL
//! reservation types STRL is generated from (Sec. 4.4), a text
//! representation with a parser (round-trip tested), and analysis passes
//! used by the scheduler to cull and simplify expressions.
//!
//! # Examples
//!
//! The Fig. 3 soft constraint — 2 GPU nodes for 2 time units (worth 4), or
//! any 2 nodes for 3 time units (worth 3):
//!
//! ```
//! use tetrisched_cluster::{NodeId, NodeSet};
//! use tetrisched_strl::{parse, StrlExpr};
//!
//! let gpus = NodeSet::from_ids(4, [NodeId(0), NodeId(1)]);
//! let all = NodeSet::full(4);
//! let expr = StrlExpr::max([
//!     StrlExpr::nck(gpus, 2, 0, 2, 4.0),
//!     StrlExpr::nck(all, 2, 0, 3, 3.0),
//! ]);
//! assert_eq!(expr.value_upper_bound(), 4.0);
//!
//! // The textual form round-trips through the parser.
//! let reparsed = parse(&expr.to_string(), 4).unwrap();
//! assert_eq!(reparsed, expr);
//! ```

pub mod analysis;
pub mod expr;
pub mod parser;
pub mod rdl;
pub mod value;

pub use analysis::{simplify, ExprStats};
pub use expr::StrlExpr;
pub use parser::{parse, ParseError};
pub use rdl::{Atom, Window};
pub use value::{JobClass, ValueFn, BE_BASE_VALUE, SLO_ACCEPTED_FACTOR, SLO_NO_RESERVATION_FACTOR};

/// Simulated wall-clock time in seconds (re-exported convention).
pub type Time = tetrisched_cluster::Time;
