//! RDL — the Reservation Definition Language of Rayon (paper Sec. 4.4).
//!
//! TetriSched consumes reservation requests written in a small subset of
//! Rayon's RDL: `Window(s, f, Atom(k, gang, dur))`. The `Atom` asks for a
//! gang of `k` containers for `dur` seconds; the `Window` bounds when that
//! allocation may happen. Container sizing is abstracted to whole node
//! slots, matching the simulator's node-granular resource model.

use crate::Time;

/// A gang resource request: `k` containers held together for `dur` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Atom {
    /// Number of containers (node slots).
    pub k: u32,
    /// Gang size: containers that must be allocated simultaneously. The
    /// paper's examples use `gang == k` (all-or-nothing gangs).
    pub gang: u32,
    /// Duration the gang is held, in seconds.
    pub dur: u64,
}

impl Atom {
    /// Creates an all-or-nothing gang atom (`gang == k`).
    pub fn gang(k: u32, dur: u64) -> Atom {
        Atom { k, gang: k, dur }
    }
}

/// A time-bounded reservation request: the atom must be placed within
/// `[start, finish]` (the allocation must *complete* by `finish`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Earliest allocation start.
    pub start: Time,
    /// Deadline: latest allocation end.
    pub finish: Time,
    /// The gang being reserved.
    pub atom: Atom,
}

impl Window {
    /// Creates a window around an atom.
    pub fn new(start: Time, finish: Time, atom: Atom) -> Window {
        Window {
            start,
            finish,
            atom,
        }
    }

    /// Latest start time at which the atom still completes by the deadline,
    /// or `None` when the window is too short for the atom's duration.
    pub fn latest_start(&self) -> Option<Time> {
        let end = self.start.checked_add(self.atom.dur)?;
        if end > self.finish {
            None
        } else {
            Some(self.finish - self.atom.dur)
        }
    }

    /// Whether an allocation starting at `s` fits in the window.
    pub fn admits_start(&self, s: Time) -> bool {
        s >= self.start && s + self.atom.dur <= self.finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_window() {
        // Sec. 4.4: Window(s=0, f=3, Atom(k=2, gang=2, dur=3)).
        let w = Window::new(0, 3, Atom::gang(2, 3));
        assert_eq!(w.latest_start(), Some(0));
        assert!(w.admits_start(0));
        assert!(!w.admits_start(1));
    }

    #[test]
    fn latest_start_with_slack() {
        let w = Window::new(10, 40, Atom::gang(4, 20));
        assert_eq!(w.latest_start(), Some(20));
        assert!(w.admits_start(10));
        assert!(w.admits_start(20));
        assert!(!w.admits_start(21));
        assert!(!w.admits_start(9));
    }

    #[test]
    fn too_short_window() {
        let w = Window::new(0, 5, Atom::gang(1, 10));
        assert_eq!(w.latest_start(), None);
        assert!(!w.admits_start(0));
    }
}
