//! Text parser for STRL expressions.
//!
//! Accepts the same syntax [`StrlExpr`]'s `Display` implementation emits
//! (the paper's notation), e.g.:
//!
//! ```text
//! max(nCk({M0, M1}, k=2, s=0, dur=2, v=4),
//!     nCk({M0, M1, M2, M3}, k=2, s=0, dur=3, v=3))
//! ```
//!
//! The parser needs the node-universe size to build [`NodeSet`]s.

use std::fmt;

use tetrisched_cluster::{NodeId, NodeSet};

use crate::expr::StrlExpr;

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the failure occurred.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a STRL expression over a universe of `universe` nodes.
pub fn parse(input: &str, universe: usize) -> Result<StrlExpr, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        universe,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    universe: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii")
            .to_string())
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.pos < self.input.len()
            && (self.input[self.pos].is_ascii_digit()
                || self.input[self.pos] == b'.'
                || self.input[self.pos] == b'e'
                || (self.pos > start
                    && self.input[self.pos] == b'-'
                    && self.input[self.pos - 1] == b'e'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn uint(&mut self) -> Result<u64, ParseError> {
        let n = self.number()?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(self.err(format!("expected nonnegative integer, got {n}")));
        }
        Ok(n as u64)
    }

    fn key_number(&mut self, key: &str) -> Result<f64, ParseError> {
        let id = self.ident()?;
        if id != key {
            return Err(self.err(format!("expected `{key}=`, got `{id}`")));
        }
        self.expect(b'=')?;
        self.number()
    }

    fn key_uint(&mut self, key: &str) -> Result<u64, ParseError> {
        let id = self.ident()?;
        if id != key {
            return Err(self.err(format!("expected `{key}=`, got `{id}`")));
        }
        self.expect(b'=')?;
        self.uint()
    }

    fn nodeset(&mut self) -> Result<NodeSet, ParseError> {
        self.expect(b'{')?;
        let mut set = NodeSet::empty(self.universe);
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(set);
        }
        loop {
            let id = self.ident()?;
            let Some(num) = id.strip_prefix('M') else {
                return Err(self.err(format!("expected node id `M<n>`, got `{id}`")));
            };
            // `ident` consumes letters only; digits follow.
            let digits_start = self.pos;
            while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let digits = std::str::from_utf8(&self.input[digits_start..self.pos]).expect("ascii");
            let full = format!("{num}{digits}");
            let n: u32 = full
                .parse()
                .map_err(|_| self.err(format!("bad node id `M{full}`")))?;
            if n as usize >= self.universe {
                return Err(self.err(format!(
                    "node M{n} outside universe of {} nodes",
                    self.universe
                )));
            }
            set.insert(NodeId(n));
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(set);
                }
                _ => return Err(self.err("expected `,` or `}` in node set")),
            }
        }
    }

    fn expr_list(&mut self) -> Result<Vec<StrlExpr>, ParseError> {
        let mut out = Vec::new();
        if self.peek() == Some(b')') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.expr()?);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b')') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected `,` or `)` in argument list")),
            }
        }
    }

    fn leaf_args(&mut self) -> Result<(NodeSet, u32, u64, u64, f64), ParseError> {
        self.expect(b'(')?;
        let set = self.nodeset()?;
        self.expect(b',')?;
        let k = self.key_uint("k")? as u32;
        self.expect(b',')?;
        let s = self.key_uint("s")?;
        self.expect(b',')?;
        let dur = self.key_uint("dur")?;
        self.expect(b',')?;
        let v = self.key_number("v")?;
        self.expect(b')')?;
        Ok((set, k, s, dur, v))
    }

    fn expr(&mut self) -> Result<StrlExpr, ParseError> {
        let id = self.ident()?;
        match id.as_str() {
            "nCk" => {
                let (set, k, s, dur, v) = self.leaf_args()?;
                Ok(StrlExpr::nck(set, k, s, dur, v))
            }
            "LnCk" => {
                let (set, k, s, dur, v) = self.leaf_args()?;
                Ok(StrlExpr::lnck(set, k, s, dur, v))
            }
            "max" => {
                self.expect(b'(')?;
                Ok(StrlExpr::Max(self.expr_list()?))
            }
            "min" => {
                self.expect(b'(')?;
                Ok(StrlExpr::Min(self.expr_list()?))
            }
            "sum" => {
                self.expect(b'(')?;
                Ok(StrlExpr::Sum(self.expr_list()?))
            }
            "scale" => {
                self.expect(b'(')?;
                let factor = self.number()?;
                self.expect(b',')?;
                let child = self.expr()?;
                self.expect(b')')?;
                Ok(StrlExpr::scale(factor, child))
            }
            "barrier" => {
                self.expect(b'(')?;
                let value = self.number()?;
                self.expect(b',')?;
                let child = self.expr()?;
                self.expect(b')')?;
                Ok(StrlExpr::barrier(value, child))
            }
            other => Err(self.err(format!("unknown operator `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_leaf() {
        let e = parse("nCk({M1, M2}, k=2, s=0, dur=2, v=4)", 8).unwrap();
        match e {
            StrlExpr::NCk {
                set,
                k,
                start,
                dur,
                value,
            } => {
                assert_eq!(set.take(8), vec![NodeId(1), NodeId(2)]);
                assert_eq!((k, start, dur), (2, 0, 2));
                assert_eq!(value, 4.0);
            }
            other => panic!("wrong node: {other:?}"),
        }
    }

    #[test]
    fn parse_fig3_soft_constraint() {
        let text = "max(nCk({M0, M1}, k=2, s=0, dur=2, v=4), \
                    nCk({M0, M1, M2, M3}, k=2, s=0, dur=3, v=3))";
        let e = parse(text, 4).unwrap();
        assert_eq!(e.leaf_count(), 2);
        assert_eq!(e.value_upper_bound(), 4.0);
    }

    #[test]
    fn roundtrip_display_parse() {
        let text =
            "sum(max(nCk({M0, M1}, k=2, s=0, dur=2, v=4), LnCk({M2}, k=1, s=1, dur=3, v=2.5)), \
                    min(nCk({M0}, k=1, s=0, dur=3, v=1), nCk({M2, M3}, k=1, s=0, dur=3, v=1)), \
                    scale(2.5, barrier(1, nCk({M3}, k=1, s=2, dur=1, v=1))))";
        let e = parse(text, 4).unwrap();
        let printed = e.to_string();
        let reparsed = parse(&printed, 4).unwrap();
        assert_eq!(e, reparsed);
    }

    #[test]
    fn empty_nodeset_parses() {
        let e = parse("nCk({}, k=0, s=0, dur=1, v=1)", 4).unwrap();
        assert!(matches!(e, StrlExpr::NCk { ref set, .. } if set.is_empty()));
    }

    #[test]
    fn rejects_out_of_universe_node() {
        let err = parse("nCk({M9}, k=1, s=0, dur=1, v=1)", 4).unwrap_err();
        assert!(err.message.contains("outside universe"));
    }

    #[test]
    fn rejects_unknown_operator() {
        let err = parse("frob(1, 2)", 4).unwrap_err();
        assert!(err.message.contains("unknown operator"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse("max() extra", 4).unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn rejects_negative_duration() {
        let err = parse("nCk({M0}, k=1, s=0, dur=-2, v=1)", 4).unwrap_err();
        assert!(err.message.contains("nonnegative"));
    }

    #[test]
    fn scientific_notation_value() {
        let e = parse("nCk({M0}, k=1, s=0, dur=1, v=2.5e-1)", 4).unwrap();
        assert!(matches!(e, StrlExpr::NCk { value, .. } if (value - 0.25).abs() < 1e-12));
    }

    #[test]
    fn whitespace_insensitive() {
        let e = parse("  max (\n nCk( {M0} , k=1, s=0, dur=1, v=1 ) )  ", 4).unwrap();
        assert_eq!(e.leaf_count(), 1);
    }
}
