//! Value functions encoding deadline sensitivity (paper Fig. 5, Sec. 6.2.2).
//!
//! A value function `v(t)` maps a job's *completion time* to scalar value.
//! The paper's experiments use three internal value functions:
//!
//! - **accepted SLO** jobs: a constant worth `1000x` the best-effort base
//!   value up to the deadline, zero after,
//! - **SLO without reservation**: the same shape at `25x`,
//! - **best-effort**: a linearly decaying function starting at the base
//!   value, encoding "prefer to finish sooner".

use crate::Time;

/// Base value of a best-effort job (the paper's `v`).
pub const BE_BASE_VALUE: f64 = 1.0;
/// Multiplier for accepted SLO jobs (paper: `1000v`).
pub const SLO_ACCEPTED_FACTOR: f64 = 1000.0;
/// Multiplier for SLO jobs whose reservation was rejected (paper: `25v`).
pub const SLO_NO_RESERVATION_FACTOR: f64 = 25.0;

/// Job class as seen by the value machinery (paper Sec. 6.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// SLO job whose Rayon reservation was accepted.
    SloAccepted,
    /// SLO job that requested a reservation and was rejected.
    SloNoReservation,
    /// Job that never requested a reservation.
    BestEffort,
}

impl JobClass {
    /// Whether the job carries a deadline SLO.
    pub fn is_slo(self) -> bool {
        !matches!(self, JobClass::BestEffort)
    }
}

/// A value function mapping completion time to value.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueFn {
    /// Constant `value` for completions at or before `deadline`, zero after.
    StepDeadline {
        /// Value while the deadline is met.
        value: f64,
        /// Completion deadline (absolute time).
        deadline: Time,
    },
    /// `start_value * max(0, 1 - (t - submit) / horizon)`: linear decay from
    /// submission, hitting zero at `submit + horizon`.
    LinearDecay {
        /// Value of an instantaneous completion.
        start_value: f64,
        /// Job submission time the decay is anchored at.
        submit: Time,
        /// Time span over which the value decays to zero.
        horizon: u64,
    },
    /// Piecewise-constant table of `(time, value)` breakpoints: the value of
    /// completing at `t` is the value of the last breakpoint at or before
    /// `t` (zero before the first breakpoint).
    Table(Vec<(Time, f64)>),
}

impl ValueFn {
    /// The paper's internal value function for a job of the given class.
    ///
    /// `submit` anchors best-effort decay; `deadline` applies to SLO
    /// classes; `horizon` is the span over which best-effort value decays.
    pub fn internal(class: JobClass, submit: Time, deadline: Time, horizon: u64) -> ValueFn {
        match class {
            JobClass::SloAccepted => ValueFn::StepDeadline {
                value: BE_BASE_VALUE * SLO_ACCEPTED_FACTOR,
                deadline,
            },
            JobClass::SloNoReservation => ValueFn::StepDeadline {
                value: BE_BASE_VALUE * SLO_NO_RESERVATION_FACTOR,
                deadline,
            },
            JobClass::BestEffort => ValueFn::LinearDecay {
                start_value: BE_BASE_VALUE,
                submit,
                horizon: horizon.max(1),
            },
        }
    }

    /// Value of completing at time `t`.
    pub fn at(&self, t: Time) -> f64 {
        match self {
            ValueFn::StepDeadline { value, deadline } => {
                if t <= *deadline {
                    *value
                } else {
                    0.0
                }
            }
            ValueFn::LinearDecay {
                start_value,
                submit,
                horizon,
            } => {
                let elapsed = t.saturating_sub(*submit) as f64;
                (start_value * (1.0 - elapsed / *horizon as f64)).max(0.0)
            }
            ValueFn::Table(points) => points
                .iter()
                .take_while(|(bt, _)| *bt <= t)
                .last()
                .map(|&(_, v)| v)
                .unwrap_or(0.0),
        }
    }

    /// Latest completion time with positive value, if bounded.
    pub fn zero_after(&self) -> Option<Time> {
        match self {
            ValueFn::StepDeadline { deadline, .. } => Some(*deadline),
            ValueFn::LinearDecay {
                submit, horizon, ..
            } => Some(submit + horizon),
            ValueFn::Table(points) => {
                // The function is zero after the last breakpoint only if that
                // breakpoint's value is zero.
                match points.last() {
                    Some(&(t, 0.0)) => Some(t),
                    _ => None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_deadline_shape() {
        let v = ValueFn::StepDeadline {
            value: 1000.0,
            deadline: 50,
        };
        assert_eq!(v.at(0), 1000.0);
        assert_eq!(v.at(50), 1000.0);
        assert_eq!(v.at(51), 0.0);
        assert_eq!(v.zero_after(), Some(50));
    }

    #[test]
    fn linear_decay_shape() {
        let v = ValueFn::LinearDecay {
            start_value: 1.0,
            submit: 100,
            horizon: 200,
        };
        assert_eq!(v.at(100), 1.0);
        assert!((v.at(200) - 0.5).abs() < 1e-12);
        assert_eq!(v.at(300), 0.0);
        assert_eq!(v.at(400), 0.0);
        // Completion "before submission" (clamped) is full value.
        assert_eq!(v.at(0), 1.0);
        assert_eq!(v.zero_after(), Some(300));
    }

    #[test]
    fn internal_matches_fig5_ratios() {
        let slo = ValueFn::internal(JobClass::SloAccepted, 0, 100, 1000);
        let nores = ValueFn::internal(JobClass::SloNoReservation, 0, 100, 1000);
        let be = ValueFn::internal(JobClass::BestEffort, 0, 100, 1000);
        assert_eq!(slo.at(0) / be.at(0), 1000.0);
        assert_eq!(nores.at(0) / be.at(0), 25.0);
        // SLO value collapses past the deadline; BE value only decays.
        assert_eq!(slo.at(101), 0.0);
        assert!(be.at(101) > 0.0);
    }

    #[test]
    fn table_lookup() {
        let v = ValueFn::Table(vec![(10, 5.0), (20, 3.0), (30, 0.0)]);
        assert_eq!(v.at(5), 0.0);
        assert_eq!(v.at(10), 5.0);
        assert_eq!(v.at(19), 5.0);
        assert_eq!(v.at(25), 3.0);
        assert_eq!(v.at(35), 0.0);
        assert_eq!(v.zero_after(), Some(30));
    }

    #[test]
    fn table_without_zero_tail_is_unbounded() {
        let v = ValueFn::Table(vec![(0, 5.0)]);
        assert_eq!(v.zero_after(), None);
    }

    #[test]
    fn job_class_slo_predicate() {
        assert!(JobClass::SloAccepted.is_slo());
        assert!(JobClass::SloNoReservation.is_slo());
        assert!(!JobClass::BestEffort.is_slo());
    }
}
