//! Property tests for STRL: display/parse round-trips and
//! simplification invariants on randomly generated expression trees.

use proptest::prelude::*;
use tetrisched_cluster::{NodeId, NodeSet};
use tetrisched_strl::{parse, simplify, StrlExpr};

const UNIVERSE: usize = 16;

fn arb_nodeset() -> impl Strategy<Value = NodeSet> {
    proptest::collection::btree_set(0u32..UNIVERSE as u32, 0..6)
        .prop_map(|ids| NodeSet::from_ids(UNIVERSE, ids.into_iter().map(NodeId)))
}

fn arb_leaf() -> impl Strategy<Value = StrlExpr> {
    (
        arb_nodeset(),
        0u32..5,
        0u64..20,
        1u64..10,
        // Values with one decimal digit so Display/parse round-trips exactly.
        (0i64..100).prop_map(|v| v as f64 / 2.0),
        prop::bool::ANY,
    )
        .prop_map(|(set, k, s, dur, v, linear)| {
            if linear {
                StrlExpr::lnck(set, k, s, dur, v)
            } else {
                StrlExpr::nck(set, k, s, dur, v)
            }
        })
}

fn arb_expr() -> impl Strategy<Value = StrlExpr> {
    arb_leaf().prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(StrlExpr::Max),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(StrlExpr::Min),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(StrlExpr::Sum),
            ((1i64..8).prop_map(|s| s as f64 / 2.0), inner.clone())
                .prop_map(|(f, c)| StrlExpr::scale(f, c)),
            ((0i64..20).prop_map(|v| v as f64 / 2.0), inner)
                .prop_map(|(v, c)| StrlExpr::barrier(v, c)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_roundtrip(e in arb_expr()) {
        let text = e.to_string();
        let parsed = parse(&text, UNIVERSE).unwrap();
        prop_assert_eq!(e, parsed);
    }

    #[test]
    fn simplify_preserves_value_upper_bound(e in arb_expr()) {
        let before = e.value_upper_bound();
        let after = simplify(e).value_upper_bound();
        prop_assert!((before - after).abs() < 1e-9,
            "bound changed: {} -> {}", before, after);
    }

    #[test]
    fn simplify_never_grows(e in arb_expr()) {
        let before = tetrisched_strl::ExprStats::of(&e).nodes;
        let after = tetrisched_strl::ExprStats::of(&simplify(e)).nodes;
        prop_assert!(after <= before);
    }

    #[test]
    fn simplify_is_idempotent(e in arb_expr()) {
        let once = simplify(e);
        let twice = simplify(once.clone());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn horizon_never_shrinks_value_window(e in arb_expr()) {
        // The horizon (latest leaf end) bounds any completion the
        // expression can describe; simplification may only tighten it.
        if let (Some(h0), Some(h1)) = (e.horizon(), simplify(e.clone()).horizon()) {
            prop_assert!(h1 <= h0);
        }
    }
}
