//! The STRL Generator: expanding jobs into space-time request expressions.
//!
//! Mirrors the paper's Sec. 3.1/4.3–4.4 pipeline: framework-type plugins
//! produce the *placement options* for a job (Unconstrained / GPU / MPI,
//! Sec. 6.2.1), and the generator replicates each option across every
//! candidate start time in the plan-ahead window, valuing each replica by
//! the job's class value function evaluated at its completion time (Fig. 5)
//! and culling replicas that cannot meet the deadline (Sec. 3.2.1).

use tetrisched_cluster::{Attr, Cluster, NodeSet, Time};
use tetrisched_sim::{JobId, JobType, PendingJob};
use tetrisched_strl::{StrlExpr, ValueFn};

use crate::config::TetriSchedConfig;

/// Stable identity of a placement option, used to match choices across
/// cycles for warm starting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptionKey {
    /// Preferred placement anywhere (unconstrained jobs).
    Whole,
    /// Preferred placement on GPU nodes.
    Gpu,
    /// Preferred placement on one rack.
    Rack(u32),
    /// Preferred anti-affine placement, one task per distinct rack
    /// (availability jobs; compiled as a `min` over rack legs).
    Spread,
    /// Slowed fallback placement anywhere.
    Fallback,
}

/// One placement option for a job: an equivalence set plus whether it is
/// the preferred (fast) placement.
#[derive(Debug, Clone)]
pub struct PlacementOption {
    /// Stable identity.
    pub key: OptionKey,
    /// Equivalence set to draw the gang from.
    pub set: NodeSet,
    /// Whether this placement runs at the job's base speed.
    pub preferred: bool,
}

/// Metadata for one generated leaf, parallel (in depth-first order) to the
/// leaves of the expression returned by [`StrlGenerator::job_expr`].
#[derive(Debug, Clone)]
pub struct LeafTag {
    /// The job the leaf belongs to.
    pub job: JobId,
    /// The placement option behind the leaf.
    pub key: OptionKey,
    /// Absolute start time of the replica.
    pub start: Time,
    /// Estimated duration for this placement.
    pub dur: u64,
    /// Whether this placement is preferred.
    pub preferred: bool,
}

/// A job's generated request: the expression plus leaf metadata.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The job.
    pub job: JobId,
    /// `max` over option × start replicas (empty when nothing is feasible).
    pub expr: StrlExpr,
    /// Leaf metadata in the expression's depth-first leaf order.
    pub tags: Vec<LeafTag>,
}

impl JobRequest {
    /// Whether the request has any satisfiable replica.
    pub fn is_schedulable(&self) -> bool {
        !self.tags.is_empty()
    }
}

/// The STRL Generator.
pub struct StrlGenerator<'a> {
    config: &'a TetriSchedConfig,
    cluster: &'a Cluster,
}

impl<'a> StrlGenerator<'a> {
    /// Creates a generator over a cluster.
    pub fn new(config: &'a TetriSchedConfig, cluster: &'a Cluster) -> Self {
        StrlGenerator { config, cluster }
    }

    /// The placement options for a job — the plugin dispatch of Fig. 2.
    ///
    /// `rack_avail` ranks racks for MPI option culling (higher is better);
    /// pass the expected availability of each rack's node set.
    pub fn options(
        &self,
        job_type: JobType,
        k: u32,
        rack_avail: &dyn Fn(&NodeSet) -> usize,
    ) -> Vec<PlacementOption> {
        let whole = self.cluster.all_nodes();
        if !self.config.heterogeneity {
            // TetriSched-NH: a single conservative option over the whole
            // cluster, estimated with the slowdown applied.
            return vec![PlacementOption {
                key: OptionKey::Fallback,
                set: whole,
                preferred: false,
            }];
        }
        match job_type {
            JobType::Unconstrained => vec![PlacementOption {
                key: OptionKey::Whole,
                set: whole,
                preferred: true,
            }],
            JobType::Gpu => {
                let gpus = self.cluster.nodes_with_attr(&Attr::gpu());
                let mut opts = Vec::new();
                if gpus.len() >= k as usize {
                    opts.push(PlacementOption {
                        key: OptionKey::Gpu,
                        set: gpus,
                        preferred: true,
                    });
                }
                opts.push(PlacementOption {
                    key: OptionKey::Fallback,
                    set: whole,
                    preferred: false,
                });
                opts
            }
            // Availability jobs build `min` subtrees in `job_expr`; their
            // simple-option list is just the fallback.
            JobType::Availability => vec![PlacementOption {
                key: OptionKey::Fallback,
                set: whole,
                preferred: false,
            }],
            JobType::Mpi => {
                let mut racks: Vec<(usize, u32)> = (0..self.cluster.num_racks() as u32)
                    .filter_map(|r| {
                        let set = self.cluster.rack_nodes(tetrisched_cluster::RackId(r));
                        if set.len() >= k as usize {
                            Some((rack_avail(set), r))
                        } else {
                            None
                        }
                    })
                    .collect();
                // Highest availability first; rack id breaks ties.
                racks.sort_by_key(|&(avail, r)| (std::cmp::Reverse(avail), r));
                if self.config.max_rack_options > 0 {
                    racks.truncate(self.config.max_rack_options);
                }
                let mut opts: Vec<PlacementOption> = racks
                    .into_iter()
                    .map(|(_, r)| PlacementOption {
                        key: OptionKey::Rack(r),
                        set: self
                            .cluster
                            .rack_nodes(tetrisched_cluster::RackId(r))
                            .clone(),
                        preferred: true,
                    })
                    .collect();
                opts.push(PlacementOption {
                    key: OptionKey::Fallback,
                    set: whole,
                    preferred: false,
                });
                opts
            }
        }
    }

    /// Expands a pending job into its STRL request: a `max` over placement
    /// options × start times in the plan-ahead window.
    pub fn job_expr(
        &self,
        job: &PendingJob,
        now: Time,
        rack_avail: &dyn Fn(&NodeSet) -> usize,
    ) -> JobRequest {
        let spec = &job.spec;
        let value_fn = ValueFn::internal(
            job.class,
            spec.submit,
            spec.deadline.unwrap_or(Time::MAX),
            self.config.be_value_horizon,
        );
        let options = self.options(spec.job_type, spec.k, rack_avail);
        // The anti-affine legs of an availability job (chosen once; their
        // per-start replicas reuse the same racks).
        let spread_legs = self.availability_legs(spec.job_type, spec.k, rack_avail);
        let mut children = Vec::new();
        let mut tags = Vec::new();
        let quantum = self.config.cycle_period.max(1);
        for &offset in &self.config.start_offsets() {
            let start = now + offset;
            // The value of a replica completing at `completion`, with the
            // prefer-earlier-completion tie-break: flat SLO value functions
            // would otherwise leave the solver indifferent between
            // completing now and completing just-in-time, and between fast
            // preferred and slow fallback placements.
            let value_at = |dur: u64| -> Option<f64> {
                let completion = start + dur;
                let mut value = value_fn.at(completion);
                if spec.deadline.is_none() {
                    // Best-effort jobs keep a value floor so fully decayed
                    // jobs still get scheduled eventually.
                    value = value.max(self.config.be_value_floor);
                } else if value <= 0.0 {
                    return None; // Deadline cull (Sec. 3.2.1).
                }
                let quanta = ((completion - now) / quantum) as f64;
                // Fair-share tenancy weight (service mode). Exactly 1.0
                // outside service mode, so the objective is unchanged:
                // `x * 1.0 == x` in IEEE arithmetic.
                Some(job.weight * value * (1.0 - self.config.defer_tiebreak * quanta).max(0.1))
            };
            // The `min`-encoded anti-affine option, when applicable.
            if let Some(legs) = &spread_legs {
                let dur = spec.estimated_runtime_for(true);
                if let Some(value) = value_at(dur) {
                    let leg_exprs: Vec<StrlExpr> = legs
                        .iter()
                        .map(|set| StrlExpr::nck(set.clone(), 1, start, dur, value))
                        .collect();
                    for _ in legs {
                        tags.push(LeafTag {
                            job: spec.id,
                            key: OptionKey::Spread,
                            start,
                            dur,
                            preferred: true,
                        });
                    }
                    children.push(StrlExpr::Min(leg_exprs));
                }
            }
            for opt in &options {
                let dur = spec.estimated_runtime_for(opt.preferred);
                let Some(value) = value_at(dur) else { continue };
                children.push(StrlExpr::nck(opt.set.clone(), spec.k, start, dur, value));
                tags.push(LeafTag {
                    job: spec.id,
                    key: opt.key,
                    start,
                    dur,
                    preferred: opt.preferred,
                });
            }
        }
        // Last-chance replica: when every deadline-valued replica was
        // culled (the estimate says the deadline is unreachable) but an
        // over-estimated runtime could still explain success, run the job
        // at a low value so it consumes only otherwise-spare capacity
        // rather than being dropped on the estimate's word alone.
        if children.is_empty() {
            if let Some(deadline) = spec.deadline {
                let opt = options
                    .iter()
                    .find(|o| o.preferred)
                    .or_else(|| options.first());
                if let Some(opt) = opt {
                    let dur = spec.estimated_runtime_for(opt.preferred);
                    if now + dur.div_ceil(2) <= deadline {
                        let value = job.weight * (self.config.be_value_floor * 2.0).max(0.02);
                        children.push(StrlExpr::nck(opt.set.clone(), spec.k, now, dur, value));
                        tags.push(LeafTag {
                            job: spec.id,
                            key: opt.key,
                            start: now,
                            dur,
                            preferred: opt.preferred,
                        });
                    }
                }
            }
        }
        JobRequest {
            job: spec.id,
            expr: StrlExpr::Max(children),
            tags,
        }
    }

    /// For availability jobs with heterogeneity awareness enabled: the `k`
    /// highest-availability racks, one leg each. `None` for other types,
    /// under `NH`, or when fewer than `k` racks exist.
    fn availability_legs(
        &self,
        job_type: JobType,
        k: u32,
        rack_avail: &dyn Fn(&NodeSet) -> usize,
    ) -> Option<Vec<NodeSet>> {
        if job_type != JobType::Availability || !self.config.heterogeneity {
            return None;
        }
        if (self.cluster.num_racks() as u32) < k {
            return None;
        }
        let mut racks: Vec<(usize, u32)> = (0..self.cluster.num_racks() as u32)
            .map(|r| {
                (
                    rack_avail(self.cluster.rack_nodes(tetrisched_cluster::RackId(r))),
                    r,
                )
            })
            .collect();
        racks.sort_by_key(|&(avail, r)| (std::cmp::Reverse(avail), r));
        Some(
            racks
                .into_iter()
                .take(k as usize)
                .map(|(_, r)| {
                    self.cluster
                        .rack_nodes(tetrisched_cluster::RackId(r))
                        .clone()
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrisched_sim::JobSpec;
    use tetrisched_strl::JobClass;

    fn config(plan_ahead: u64) -> TetriSchedConfig {
        TetriSchedConfig {
            plan_ahead,
            cycle_period: 4,
            max_start_options: 4,
            ..TetriSchedConfig::default()
        }
    }

    fn pending(job_type: JobType, k: u32, deadline: Option<Time>, class: JobClass) -> PendingJob {
        PendingJob {
            spec: JobSpec {
                id: JobId(7),
                submit: 0,
                job_type,
                k,
                base_runtime: 20,
                slowdown: 1.5,
                deadline,
                estimate_error: 0.0,
            },
            class,
            reservation: None,
            preemptions: 0,
            weight: 1.0,
        }
    }

    #[test]
    fn unconstrained_has_single_option() {
        let cfg = config(12);
        let cluster = Cluster::uniform(2, 4, 1);
        let gen = StrlGenerator::new(&cfg, &cluster);
        let opts = gen.options(JobType::Unconstrained, 2, &|s| s.len());
        assert_eq!(opts.len(), 1);
        assert!(opts[0].preferred);
        assert_eq!(opts[0].set.len(), 8);
    }

    #[test]
    fn gpu_job_gets_gpu_and_fallback() {
        let cfg = config(12);
        let cluster = Cluster::uniform(2, 4, 1);
        let gen = StrlGenerator::new(&cfg, &cluster);
        let opts = gen.options(JobType::Gpu, 2, &|s| s.len());
        assert_eq!(opts.len(), 2);
        assert_eq!(opts[0].key, OptionKey::Gpu);
        assert_eq!(opts[0].set.len(), 4);
        assert_eq!(opts[1].key, OptionKey::Fallback);
    }

    #[test]
    fn gpu_option_dropped_when_too_few_gpus() {
        let cfg = config(12);
        let cluster = Cluster::uniform(2, 4, 1); // 4 GPU nodes
        let gen = StrlGenerator::new(&cfg, &cluster);
        let opts = gen.options(JobType::Gpu, 6, &|s| s.len());
        assert_eq!(opts.len(), 1);
        assert_eq!(opts[0].key, OptionKey::Fallback);
    }

    #[test]
    fn mpi_rack_options_ranked_and_capped() {
        let mut cfg = config(12);
        cfg.max_rack_options = 2;
        let cluster = Cluster::uniform(4, 4, 0);
        let gen = StrlGenerator::new(&cfg, &cluster);
        // Rank rack 2 highest, then rack 0.
        let avail = |s: &NodeSet| {
            if s.contains(tetrisched_cluster::NodeId(8)) {
                4
            } else if s.contains(tetrisched_cluster::NodeId(0)) {
                3
            } else {
                1
            }
        };
        let opts = gen.options(JobType::Mpi, 2, &avail);
        assert_eq!(opts.len(), 3); // 2 racks + fallback
        assert_eq!(opts[0].key, OptionKey::Rack(2));
        assert_eq!(opts[1].key, OptionKey::Rack(0));
        assert_eq!(opts[2].key, OptionKey::Fallback);
    }

    #[test]
    fn mpi_skips_undersized_racks() {
        let cfg = config(12);
        let cluster = Cluster::uniform(2, 2, 0);
        let gen = StrlGenerator::new(&cfg, &cluster);
        let opts = gen.options(JobType::Mpi, 3, &|s| s.len());
        // No rack holds 3 nodes: only the fallback remains.
        assert_eq!(opts.len(), 1);
        assert_eq!(opts[0].key, OptionKey::Fallback);
    }

    #[test]
    fn nh_collapses_to_conservative_fallback() {
        let mut cfg = config(12);
        cfg.heterogeneity = false;
        let cluster = Cluster::uniform(2, 4, 1);
        let gen = StrlGenerator::new(&cfg, &cluster);
        for jt in [JobType::Unconstrained, JobType::Gpu, JobType::Mpi] {
            let opts = gen.options(jt, 2, &|s| s.len());
            assert_eq!(opts.len(), 1);
            assert_eq!(opts[0].key, OptionKey::Fallback);
            assert!(!opts[0].preferred);
        }
    }

    #[test]
    fn availability_job_builds_min_legs() {
        let cfg = config(8); // starts 0, 4, 8
        let cluster = Cluster::uniform(4, 2, 0);
        let gen = StrlGenerator::new(&cfg, &cluster);
        let job = pending(JobType::Availability, 3, Some(1000), JobClass::SloAccepted);
        let req = gen.job_expr(&job, 0, &|s| s.len());
        // Each start yields a Min over 3 rack legs plus the fallback leaf:
        // 3 starts x (3 + 1) = 12 leaves / tags.
        assert_eq!(req.tags.len(), 12);
        assert_eq!(req.expr.leaf_count(), 12);
        let StrlExpr::Max(children) = &req.expr else {
            panic!("max expected")
        };
        // Children alternate Min(spread) then fallback per start.
        assert!(matches!(&children[0], StrlExpr::Min(legs) if legs.len() == 3));
        assert!(matches!(&children[1], StrlExpr::NCk { .. }));
        // Spread tags are preferred; fallback tags are not.
        assert!(req.tags[0].preferred && req.tags[0].key == OptionKey::Spread);
        assert!(!req.tags[3].preferred && req.tags[3].key == OptionKey::Fallback);
    }

    #[test]
    fn availability_without_enough_racks_falls_back_only() {
        let cfg = config(8);
        let cluster = Cluster::uniform(2, 4, 0);
        let gen = StrlGenerator::new(&cfg, &cluster);
        let job = pending(JobType::Availability, 3, Some(1000), JobClass::SloAccepted);
        let req = gen.job_expr(&job, 0, &|s| s.len());
        assert!(req.tags.iter().all(|t| t.key == OptionKey::Fallback));
    }

    #[test]
    fn job_expr_replicates_over_starts() {
        let cfg = config(12); // offsets 0,4,8,12
        let cluster = Cluster::uniform(2, 4, 1);
        let gen = StrlGenerator::new(&cfg, &cluster);
        let job = pending(JobType::Gpu, 2, Some(1000), JobClass::SloAccepted);
        let req = gen.job_expr(&job, 100, &|s| s.len());
        // 4 starts x 2 options.
        assert_eq!(req.tags.len(), 8);
        assert_eq!(req.expr.leaf_count(), 8);
        assert_eq!(req.tags[0].start, 100);
        assert_eq!(req.tags.last().unwrap().start, 112);
        // Preferred option estimates 20s, fallback 30s.
        assert_eq!(req.tags[0].dur, 20);
        assert_eq!(req.tags[1].dur, 30);
    }

    #[test]
    fn deadline_culls_late_replicas() {
        let cfg = config(12);
        let cluster = Cluster::uniform(2, 4, 1);
        let gen = StrlGenerator::new(&cfg, &cluster);
        // Deadline at 126: start 100 fast (done 120) fits; start 100 slow
        // (130) does not; start 104 fast (124) fits; start 108 fast =
        // 128 does not.
        let job = pending(JobType::Gpu, 2, Some(126), JobClass::SloAccepted);
        let req = gen.job_expr(&job, 100, &|s| s.len());
        let starts: Vec<(Time, bool)> = req.tags.iter().map(|t| (t.start, t.preferred)).collect();
        assert_eq!(starts, vec![(100, true), (104, true)]);
    }

    #[test]
    fn hopeless_slo_job_yields_empty_request() {
        // Deadline 105 at now=100: even a 2x over-estimate (10 s true
        // runtime) cannot fit, so no replica at all.
        let cfg = config(12);
        let cluster = Cluster::uniform(2, 4, 1);
        let gen = StrlGenerator::new(&cfg, &cluster);
        let job = pending(JobType::Gpu, 2, Some(105), JobClass::SloAccepted);
        let req = gen.job_expr(&job, 100, &|s| s.len());
        assert!(!req.is_schedulable());
    }

    #[test]
    fn estimate_infeasible_job_gets_last_chance_replica() {
        // Deadline 112 at now=100 with estimate 20: the estimate says the
        // deadline is unreachable, but if the estimate is 2x inflated the
        // true 10 s runtime fits. A single low-value start-now replica on
        // the preferred placement survives.
        let cfg = config(12);
        let cluster = Cluster::uniform(2, 4, 1);
        let gen = StrlGenerator::new(&cfg, &cluster);
        let job = pending(JobType::Gpu, 2, Some(112), JobClass::SloAccepted);
        let req = gen.job_expr(&job, 100, &|s| s.len());
        assert_eq!(req.tags.len(), 1);
        let tag = &req.tags[0];
        assert_eq!(tag.start, 100);
        assert!(tag.preferred);
        // Its value is far below a live SLO replica's.
        assert!(req.expr.value_upper_bound() < 1.0);
    }

    #[test]
    fn best_effort_value_decays_but_never_zeroes() {
        let mut cfg = config(12);
        cfg.be_value_horizon = 50; // decays fast
        let cluster = Cluster::uniform(2, 4, 1);
        let gen = StrlGenerator::new(&cfg, &cluster);
        let job = pending(JobType::Unconstrained, 2, None, JobClass::BestEffort);
        // Far past the decay horizon.
        let req = gen.job_expr(&job, 10_000, &|s| s.len());
        assert!(req.is_schedulable());
        let values: Vec<f64> = req
            .expr
            .children()
            .iter()
            .map(|l| match l {
                StrlExpr::NCk { value, .. } => *value,
                _ => panic!("leaf expected"),
            })
            .collect();
        for v in values {
            assert!(v > 0.0 && v <= cfg.be_value_floor);
        }
    }

    #[test]
    fn earlier_start_worth_slightly_more() {
        let cfg = config(12);
        let cluster = Cluster::uniform(2, 4, 1);
        let gen = StrlGenerator::new(&cfg, &cluster);
        let job = pending(
            JobType::Unconstrained,
            2,
            Some(10_000),
            JobClass::SloAccepted,
        );
        let req = gen.job_expr(&job, 0, &|s| s.len());
        let values: Vec<f64> = req
            .expr
            .children()
            .iter()
            .map(|l| match l {
                StrlExpr::NCk { value, .. } => *value,
                _ => panic!("leaf expected"),
            })
            .collect();
        for w in values.windows(2) {
            assert!(w[0] > w[1], "deferral must cost value: {w:?}");
        }
    }
}
