//! TetriSched configuration, including the Table 2 ablation variants.

use std::time::Duration;

use crate::governor::GovernorConfig;

/// Tunable parameters of the TetriSched scheduler.
#[derive(Debug, Clone)]
pub struct TetriSchedConfig {
    /// Plan-ahead window in seconds: how far into the future deferred
    /// placements are considered (paper Sec. 3.2.1; swept in Fig. 11).
    /// Zero disables plan-ahead (the `TetriSched-NP` / alsched behaviour).
    pub plan_ahead: u64,
    /// Scheduling cycle period in seconds (paper: 4 s); also the
    /// time-slice quantum for supply constraints.
    pub cycle_period: u64,
    /// Maximum number of candidate start times per placement option. Start
    /// times are spread over the plan-ahead window at multiples of the
    /// quantum; capping them caps MILP growth (a STRL Generator culling
    /// optimization, Sec. 3.2.1).
    pub max_start_options: usize,
    /// Global scheduling: batch all pending jobs into one MILP. When false
    /// the scheduler runs the greedy `TetriSched-NG` policy — same MILP
    /// machinery, one job at a time from three priority FIFOs (Sec. 6.3).
    pub global: bool,
    /// Heterogeneity (soft-constraint) awareness. When false, the
    /// `TetriSched-NH` policy: every job draws from the whole cluster and
    /// its runtime is conservatively estimated with the slowdown applied.
    pub heterogeneity: bool,
    /// Cap on jobs considered per cycle (the paper notes TetriSched "has
    /// the flexibility of aggregating a subset of the pending jobs to
    /// reduce the scheduling complexity", Sec. 5). Excess jobs wait.
    pub max_batch: usize,
    /// Wall-clock budget for the MILP solver per cycle (Sec. 3.2.2).
    pub solver_time_limit: Duration,
    /// Relative MILP optimality gap (paper: 10%).
    pub solver_gap: f64,
    /// Horizon over which a best-effort job's value decays to zero.
    pub be_value_horizon: u64,
    /// Floor for best-effort value so fully decayed jobs still schedule.
    pub be_value_floor: f64,
    /// Relative bump applied to a running job's remaining-time estimate
    /// when it overruns its expected completion (under-estimate handling,
    /// Sec. 7.1). The bump is at least one cycle period.
    pub estimate_bump: f64,
    /// Per-quantum-of-deferral multiplicative value penalty used to break
    /// ties among equally valued start times in favour of starting earlier.
    pub defer_tiebreak: f64,
    /// Warm-start each solve from the previous cycle's choices
    /// (Sec. 3.2.2).
    pub warm_start: bool,
    /// For MPI-style rack options, consider only this many of the
    /// highest-availability racks (generator culling; 0 = all racks).
    pub max_rack_options: usize,
    /// Use the pure LP-dive heuristic MILP backend instead of
    /// branch-and-bound — the quality-scale tradeoff the paper's Sec. 7.3
    /// closes on. Near-constant solve time, no optimality proof.
    pub solver_heuristic: bool,
    /// Preemption of best-effort gangs for urgent accepted-SLO jobs. The
    /// paper's TetriSched never preempts and names this as future work
    /// (Sec. 7.2); this implements it as an opt-in extension. Victims lose
    /// all progress, exactly as under the baseline.
    pub preemption: bool,
    /// Cap on preemptions per cycle when `preemption` is enabled.
    pub max_preemptions_per_cycle: usize,
    /// Quarantine threshold: a job whose STRL expression fails to compile
    /// this many times is abandoned instead of poisoning every future
    /// cycle's aggregate model.
    pub max_compile_failures: u32,
    /// Chaos knob for robustness testing: 1-based indices of global MILP
    /// solves that are forced to fail (as if the solver errored). The
    /// affected cycle must degrade to the greedy placer rather than drop
    /// work. Empty in production configurations.
    pub chaos_global_solve_failures: Vec<u64>,
    /// Run the `tetrisched-lint` model analyses inside every cycle:
    /// generated STRL expressions and compiled MILP models with
    /// Error-severity diagnostics are rejected before the solver sees them
    /// (jobs are quarantined via the compile-failure machinery; a bad
    /// aggregate degrades the cycle to greedy). Off by default: the
    /// compiler is expected to emit lint-clean models, and the sweep costs
    /// a pass over every model.
    pub lint_models: bool,
    /// Proof-carrying solves: make every MILP backend emit and self-verify
    /// optimality/feasibility certificates (primal re-check, dual bounds,
    /// bound-tree audit replay — codes `C001`–`C003`), and validate the
    /// STRL→MILP translation by re-evaluating the original expression
    /// under the chosen placement (`C004`). A failed certificate is
    /// treated like a solver error: the global cycle degrades to greedy,
    /// and a greedy job is skipped with a quarantine strike. Off by
    /// default: certification replays the whole solve audit.
    pub certify_solves: bool,
    /// The anytime degradation ladder and its cycle-budget governor
    /// ([`crate::governor`]). Disabled by default: without it the global
    /// path keeps the pre-ladder binary global-or-greedy fallback.
    pub governor: GovernorConfig,
}

impl Default for TetriSchedConfig {
    fn default() -> Self {
        TetriSchedConfig {
            plan_ahead: 96,
            cycle_period: 4,
            max_start_options: 8,
            global: true,
            heterogeneity: true,
            max_batch: 16,
            solver_time_limit: Duration::from_millis(300),
            solver_gap: 0.10,
            be_value_horizon: 3600,
            be_value_floor: 0.01,
            estimate_bump: 0.10,
            defer_tiebreak: 0.002,
            warm_start: true,
            max_rack_options: 4,
            solver_heuristic: false,
            preemption: false,
            max_preemptions_per_cycle: 4,
            max_compile_failures: 8,
            chaos_global_solve_failures: Vec::new(),
            lint_models: false,
            certify_solves: false,
            governor: GovernorConfig::disabled(),
        }
    }
}

impl TetriSchedConfig {
    /// Full TetriSched with the given plan-ahead window (Table 2, row 1).
    pub fn full(plan_ahead: u64) -> Self {
        TetriSchedConfig {
            plan_ahead,
            ..Self::default()
        }
    }

    /// `TetriSched-NH`: soft-constraint awareness disabled (Table 2).
    pub fn no_heterogeneity(plan_ahead: u64) -> Self {
        TetriSchedConfig {
            heterogeneity: false,
            ..Self::full(plan_ahead)
        }
    }

    /// `TetriSched-NG`: greedy job-at-a-time scheduling (Table 2).
    pub fn no_global(plan_ahead: u64) -> Self {
        TetriSchedConfig {
            global: false,
            ..Self::full(plan_ahead)
        }
    }

    /// `TetriSched-NP`: plan-ahead disabled; emulates alsched (Table 2,
    /// Sec. 7.2).
    pub fn no_plan_ahead() -> Self {
        Self::full(0)
    }

    /// Number of discrete time slices in the plan-ahead window (always at
    /// least one: the current cycle).
    pub fn n_slices(&self) -> usize {
        (self.plan_ahead / self.cycle_period.max(1)) as usize + 1
    }

    /// The candidate start offsets (relative to now) implied by the window
    /// and the start-option cap: always includes 0, spread across the
    /// window at quantum multiples.
    pub fn start_offsets(&self) -> Vec<u64> {
        let q = self.cycle_period.max(1);
        let slices = (self.plan_ahead / q) as usize;
        if slices == 0 || self.max_start_options <= 1 {
            return vec![0];
        }
        let take = self.max_start_options.min(slices + 1);
        // Spread `take` offsets over [0, plan_ahead], snapped to quanta.
        (0..take)
            .map(|i| {
                let frac = i as f64 / (take - 1) as f64;
                let t = (frac * self.plan_ahead as f64).round() as u64;
                (t / q) * q
            })
            .collect()
    }

    /// Configuration name for reports, Table 2 style.
    pub fn variant_name(&self) -> &'static str {
        match (self.global, self.heterogeneity, self.plan_ahead) {
            (_, _, 0) => "tetrisched-np",
            (false, _, _) => "tetrisched-ng",
            (_, false, _) => "tetrisched-nh",
            _ => "tetrisched",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_match_table2() {
        assert_eq!(TetriSchedConfig::full(96).variant_name(), "tetrisched");
        assert_eq!(
            TetriSchedConfig::no_heterogeneity(96).variant_name(),
            "tetrisched-nh"
        );
        assert_eq!(
            TetriSchedConfig::no_global(96).variant_name(),
            "tetrisched-ng"
        );
        assert_eq!(
            TetriSchedConfig::no_plan_ahead().variant_name(),
            "tetrisched-np"
        );
    }

    #[test]
    fn slices_cover_window() {
        let c = TetriSchedConfig {
            plan_ahead: 96,
            cycle_period: 4,
            ..Default::default()
        };
        assert_eq!(c.n_slices(), 25);
        assert_eq!(TetriSchedConfig::no_plan_ahead().n_slices(), 1);
    }

    #[test]
    fn start_offsets_include_now_and_respect_cap() {
        let c = TetriSchedConfig {
            plan_ahead: 96,
            cycle_period: 4,
            max_start_options: 8,
            ..Default::default()
        };
        let offs = c.start_offsets();
        assert_eq!(offs.len(), 8);
        assert_eq!(offs[0], 0);
        assert_eq!(*offs.last().unwrap(), 96);
        // Snapped to quanta and strictly increasing.
        for w in offs.windows(2) {
            assert!(w[0] < w[1]);
            assert_eq!(w[1] % 4, 0);
        }
    }

    #[test]
    fn zero_plan_ahead_single_start() {
        assert_eq!(TetriSchedConfig::no_plan_ahead().start_offsets(), vec![0]);
    }

    #[test]
    fn small_window_fewer_options_than_cap() {
        let c = TetriSchedConfig {
            plan_ahead: 8,
            cycle_period: 4,
            max_start_options: 8,
            ..Default::default()
        };
        assert_eq!(c.start_offsets(), vec![0, 4, 8]);
    }
}
