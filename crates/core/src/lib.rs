//! The TetriSched scheduler core — the paper's primary contribution.
//!
//! On every scheduling cycle TetriSched:
//!
//! 1. observes running jobs and **bumps under-estimated completion times**
//!    upward (Sec. 7.1), keeping its availability view honest,
//! 2. expands every pending job into a STRL expression — a `max` over
//!    placement options × candidate start times within the **plan-ahead
//!    window** (Sec. 3.2.1), valued by the job's class value function
//!    (Fig. 5) and culled against its deadline,
//! 3. aggregates the batch with a STRL `sum` for **global scheduling**
//!    (Sec. 2.4), refines the referenced equivalence sets into the minimal
//!    **partition** classes (Sec. 7.3), and compiles the whole thing into a
//!    MILP via Algorithm 1 ([`compiler`]),
//! 4. solves with a bounded, gap-tolerant branch-and-bound seeded by the
//!    **previous cycle's choices** (Sec. 3.2.2), and
//! 5. launches exactly the gangs chosen to start *now*; deferred placements
//!    are only plans and are re-evaluated from scratch next cycle
//!    (**adaptive re-planning**, Sec. 2.3.3).
//!
//! The ablation configurations of Table 2 — `TetriSched-NH` (no
//! heterogeneity awareness), `TetriSched-NG` (greedy job-at-a-time instead
//! of global), and `TetriSched-NP` (no plan-ahead, ≙ alsched) — are all
//! expressible through [`TetriSchedConfig`].

pub mod compiler;
pub mod config;
pub mod generator;
pub mod governor;
pub mod scheduler;

pub use compiler::{compile, ChosenAlloc, CompileInput, CompiledModel};
pub use config::TetriSchedConfig;
pub use generator::{JobRequest, PlacementOption, StrlGenerator};
pub use governor::{Governor, GovernorConfig, LadderRung};
pub use scheduler::TetriSched;
