//! The anytime degradation ladder and its cycle-budget governor.
//!
//! Pre-ladder TetriSched had a binary failure response: when the global
//! MILP path failed, the whole cycle fell back to the greedy placer —
//! losing both global optimization and plan-ahead in one step. The ladder
//! replaces that cliff with four rungs of graceful degradation:
//!
//! | rung | mode             | what is traded away                      |
//! |------|------------------|------------------------------------------|
//! | 0    | full MILP        | nothing                                  |
//! | 1    | reduced horizon  | plan-ahead depth (smaller model)         |
//! | 2    | anytime solve    | optimality proof (budget-expired         |
//! |      |                  | incumbent returned with its `best_bound` |
//! |      |                  | and certificate)                         |
//! | 3    | greedy           | global optimization                      |
//!
//! Rung changes are driven by a **cycle-budget governor**. Its load signal
//! is deliberately *not* wall-clock time: the same seed must produce the
//! same schedule on a fast and a slow machine, so the governor consumes
//! deterministic **solver work units** — branch-and-bound nodes plus
//! simplex iterations — which are pure functions of the model and the
//! solver configuration. (The PR 5 phase histograms remain the operator's
//! view of real latency; the governor is the control loop's view.)
//!
//! Transitions are hysteresis-governed so the ladder cannot flap:
//!
//! - **Demote** one rung when a cycle overruns its work budget or the
//!   primary solve path fails outright.
//! - **Promote** one rung only after `promote_streak` consecutive cycles
//!   comfortably under budget (below `promote_fraction` of it).
//! - Either way, at most **one rung change per `hysteresis_cycles`
//!   window** — a change starts a cooldown during which the rung is
//!   pinned, no matter what the load signal does.
//!
//! The governor is the *only* writer of the cycle's ladder rung: srclint
//! L007 rejects any other mention of the field inside `crates/core`, so
//! every transition is forced through [`Governor::observe`] and every
//! stamp through [`Governor::stamp`].

use tetrisched_sim::CycleDecisions;

/// One rung of the degradation ladder, cheapest-to-run last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderRung {
    /// Full global MILP over the whole plan-ahead window.
    Full,
    /// Global MILP over a reduced plan-ahead horizon (smaller model).
    ReducedHorizon,
    /// Incumbent-only anytime solve: tight node budget, diving on; the
    /// budget-expired incumbent is returned with its bound + certificate.
    Anytime,
    /// Greedy job-at-a-time placement (the old fallback, now the floor).
    Greedy,
}

impl LadderRung {
    /// Numeric encoding used in metrics and telemetry (0 = full MILP).
    pub fn as_u8(self) -> u8 {
        match self {
            LadderRung::Full => 0,
            LadderRung::ReducedHorizon => 1,
            LadderRung::Anytime => 2,
            LadderRung::Greedy => 3,
        }
    }

    /// The next-cheaper rung (saturating at greedy).
    fn demoted(self, binary: bool) -> LadderRung {
        if binary {
            return LadderRung::Greedy;
        }
        match self {
            LadderRung::Full => LadderRung::ReducedHorizon,
            LadderRung::ReducedHorizon => LadderRung::Anytime,
            LadderRung::Anytime | LadderRung::Greedy => LadderRung::Greedy,
        }
    }

    /// The next-richer rung (saturating at the full MILP).
    fn promoted(self, binary: bool) -> LadderRung {
        if binary {
            return LadderRung::Full;
        }
        match self {
            LadderRung::Greedy => LadderRung::Anytime,
            LadderRung::Anytime => LadderRung::ReducedHorizon,
            LadderRung::ReducedHorizon | LadderRung::Full => LadderRung::Full,
        }
    }
}

/// Knobs of the cycle-budget governor. Disabled by default: with the
/// governor off the scheduler keeps the pre-ladder binary
/// global-or-greedy behavior byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorConfig {
    /// Master switch for the ladder.
    pub enabled: bool,
    /// Per-cycle solver work budget in deterministic work units
    /// (branch-and-bound nodes + simplex iterations across the cycle's
    /// solves). A cycle above this budget votes to demote.
    pub work_budget: u64,
    /// A cycle below `promote_fraction * work_budget` votes to promote;
    /// between the two thresholds the governor holds its rung.
    pub promote_fraction: f64,
    /// Consecutive promote votes required before actually promoting.
    pub promote_streak: u32,
    /// Minimum cycles between any two rung changes (the anti-flap
    /// window). A change — in either direction, forced or not — pins the
    /// rung for this many cycles.
    pub hysteresis_cycles: u32,
    /// Fraction of the full plan-ahead window used on the reduced-horizon
    /// rung (floored at one cycle period).
    pub reduced_horizon_fraction: f64,
    /// Branch-and-bound node budget of the anytime rung's solves.
    pub anytime_node_limit: usize,
    /// Binary mode: the ladder collapses to {full, greedy}, reproducing
    /// the pre-ladder cliff under the *same* governor signal. Kept so the
    /// ladder-vs-binary comparison differs only in the intermediate rungs.
    pub binary: bool,
}

impl GovernorConfig {
    /// The ladder off; scheduling behaves exactly as before the ladder.
    pub fn disabled() -> Self {
        GovernorConfig {
            enabled: false,
            ..Self::defaults()
        }
    }

    /// The ladder on with default thresholds.
    pub fn defaults() -> Self {
        GovernorConfig {
            enabled: true,
            work_budget: 50_000,
            promote_fraction: 0.5,
            promote_streak: 3,
            hysteresis_cycles: 4,
            reduced_horizon_fraction: 0.25,
            anytime_node_limit: 64,
            binary: false,
        }
    }

    /// Binary-cliff mode under the default governor signal (comparison
    /// baseline for the ladder).
    pub fn binary_fallback() -> Self {
        GovernorConfig {
            binary: true,
            ..Self::defaults()
        }
    }
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig::disabled()
    }
}

/// The governor's mutable state: current rung, anti-flap cooldown, and
/// the promote streak. Pure state machine — no clocks, no randomness.
#[derive(Debug, Clone)]
pub struct Governor {
    config: GovernorConfig,
    rung: LadderRung,
    /// Cycles since the last rung change (saturating).
    since_change: u32,
    /// Consecutive under-budget cycles observed.
    streak: u32,
    /// Total rung changes performed (telemetry).
    changes: u64,
}

impl Governor {
    /// A governor at the top rung.
    pub fn new(config: GovernorConfig) -> Self {
        Governor {
            config,
            rung: LadderRung::Full,
            // A fresh governor may demote immediately: the anti-flap
            // window constrains the spacing *between* changes.
            since_change: u32::MAX,
            streak: 0,
            changes: 0,
        }
    }

    /// Whether the ladder is active at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The ladder configuration.
    pub fn config(&self) -> &GovernorConfig {
        &self.config
    }

    /// The rung the next cycle should run at.
    pub fn rung(&self) -> LadderRung {
        if self.config.enabled {
            self.rung
        } else {
            LadderRung::Full
        }
    }

    /// Total rung changes performed so far.
    pub fn changes(&self) -> u64 {
        self.changes
    }

    /// The plan-ahead horizon for the reduced-horizon rung, given the
    /// configured full horizon and the cycle quantum.
    pub fn reduced_horizon(&self, plan_ahead: u64, cycle_period: u64) -> u64 {
        let reduced = (plan_ahead as f64 * self.config.reduced_horizon_fraction).floor() as u64;
        let q = cycle_period.max(1);
        (reduced / q) * q
    }

    /// Feeds one cycle's outcome into the state machine: the cycle's
    /// deterministic solver work units and whether the primary (non-greedy)
    /// path failed outright. At most one rung change per hysteresis
    /// window, in either direction.
    pub fn observe(&mut self, work_units: u64, primary_failed: bool) {
        if !self.config.enabled {
            return;
        }
        self.since_change = self.since_change.saturating_add(1);
        let over_budget = primary_failed || work_units > self.config.work_budget;
        let promote_cut = (self.config.work_budget as f64 * self.config.promote_fraction) as u64;
        if over_budget {
            self.streak = 0;
            let next = self.rung.demoted(self.config.binary);
            if next != self.rung && self.since_change >= self.config.hysteresis_cycles {
                self.rung = next;
                self.since_change = 0;
                self.changes += 1;
            }
        } else if work_units <= promote_cut {
            self.streak = self.streak.saturating_add(1);
            let next = self.rung.promoted(self.config.binary);
            if next != self.rung
                && self.streak >= self.config.promote_streak
                && self.since_change >= self.config.hysteresis_cycles
            {
                self.rung = next;
                self.since_change = 0;
                self.streak = 0;
                self.changes += 1;
            }
        } else {
            self.streak = 0;
        }
    }

    /// Stamps the cycle's decisions with the rung they ran at. This is
    /// the single authorized write of the rung field (srclint L007).
    pub fn stamp(&self, d: &mut CycleDecisions) {
        d.ladder_rung = self.rung().as_u8();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov(overrides: impl FnOnce(&mut GovernorConfig)) -> Governor {
        let mut cfg = GovernorConfig::defaults();
        cfg.work_budget = 100;
        cfg.promote_fraction = 0.5;
        cfg.promote_streak = 2;
        cfg.hysteresis_cycles = 3;
        overrides(&mut cfg);
        Governor::new(cfg)
    }

    #[test]
    fn disabled_governor_is_pinned_to_full() {
        let mut g = Governor::new(GovernorConfig::disabled());
        for _ in 0..10 {
            g.observe(u64::MAX, true);
        }
        assert_eq!(g.rung(), LadderRung::Full);
        assert_eq!(g.changes(), 0);
    }

    #[test]
    fn over_budget_demotes_one_rung_at_a_time() {
        let mut g = gov(|_| {});
        g.observe(200, false);
        assert_eq!(g.rung(), LadderRung::ReducedHorizon);
        // Cooldown: further overruns are absorbed for the window.
        g.observe(200, false);
        g.observe(200, false);
        assert_eq!(g.rung(), LadderRung::ReducedHorizon);
        g.observe(200, false);
        assert_eq!(g.rung(), LadderRung::Anytime);
    }

    #[test]
    fn primary_failure_forces_a_demotion_vote() {
        let mut g = gov(|_| {});
        g.observe(1, true);
        assert_eq!(g.rung(), LadderRung::ReducedHorizon);
    }

    #[test]
    fn recovery_requires_a_streak_and_respects_cooldown() {
        let mut g = gov(|_| {});
        g.observe(200, false); // -> reduced horizon, cooldown starts
        g.observe(10, false); // streak 1, cooling down
        g.observe(10, false); // streak 2, cooling down
        assert_eq!(g.rung(), LadderRung::ReducedHorizon);
        g.observe(10, false); // streak 3 and window elapsed -> promote
        assert_eq!(g.rung(), LadderRung::Full);
    }

    #[test]
    fn mid_band_cycles_reset_the_promote_streak() {
        let mut g = gov(|_| {});
        g.observe(200, false); // -> reduced horizon
        g.observe(10, false);
        g.observe(10, false);
        g.observe(80, false); // between cut and budget: hold, reset streak
        g.observe(10, false);
        assert_eq!(g.rung(), LadderRung::ReducedHorizon);
        g.observe(10, false);
        assert_eq!(g.rung(), LadderRung::Full);
    }

    #[test]
    fn ladder_never_flaps_within_the_hysteresis_window() {
        // Adversarial alternating load: changes must still be spaced by
        // at least the window.
        let mut g = gov(|c| c.hysteresis_cycles = 5);
        let mut last_change_at: Option<usize> = None;
        let mut prev = g.rung();
        for i in 0..200 {
            let work = if i % 2 == 0 { 1_000 } else { 0 };
            g.observe(work, false);
            if g.rung() != prev {
                if let Some(at) = last_change_at {
                    assert!(i - at >= 5, "changes at {at} and {i} are too close");
                }
                last_change_at = Some(i);
                prev = g.rung();
            }
        }
    }

    #[test]
    fn binary_mode_jumps_straight_to_greedy_and_back() {
        let mut g = gov(|c| c.binary = true);
        g.observe(200, false);
        assert_eq!(g.rung(), LadderRung::Greedy);
        g.observe(10, false);
        g.observe(10, false);
        g.observe(10, false);
        assert_eq!(g.rung(), LadderRung::Full);
    }

    #[test]
    fn greedy_is_the_floor_full_is_the_ceiling() {
        let mut g = gov(|c| c.hysteresis_cycles = 0);
        for _ in 0..10 {
            g.observe(1_000, false);
        }
        assert_eq!(g.rung(), LadderRung::Greedy);
        for _ in 0..20 {
            g.observe(0, false);
        }
        assert_eq!(g.rung(), LadderRung::Full);
    }

    #[test]
    fn reduced_horizon_is_quantized() {
        let g = gov(|c| c.reduced_horizon_fraction = 0.25);
        assert_eq!(g.reduced_horizon(96, 4), 24);
        assert_eq!(g.reduced_horizon(10, 4), 0); // floors to a quantum multiple
        assert_eq!(g.reduced_horizon(0, 4), 0);
    }

    #[test]
    fn stamp_writes_the_current_rung() {
        let mut g = gov(|_| {});
        let mut d = CycleDecisions::default();
        g.stamp(&mut d);
        assert_eq!(d.ladder_rung, 0);
        g.observe(200, false);
        g.stamp(&mut d);
        assert_eq!(d.ladder_rung, 1);
    }

    #[test]
    fn rung_encoding_is_stable() {
        assert_eq!(LadderRung::Full.as_u8(), 0);
        assert_eq!(LadderRung::ReducedHorizon.as_u8(), 1);
        assert_eq!(LadderRung::Anytime.as_u8(), 2);
        assert_eq!(LadderRung::Greedy.as_u8(), 3);
    }
}
