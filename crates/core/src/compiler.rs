//! STRL → MILP compilation (Algorithm 1 of the paper).
//!
//! The compiler walks a STRL expression tree with a single recursive
//! function `gen(expr, I)` where `I` is the binary *indicator variable*
//! stating whether the solver assigns resources to that subexpression. Three
//! ideas from the paper shape the output:
//!
//! 1. **indicator variables** per subexpression, with `max` constraining the
//!    sum of child indicators to at most its own (`or` semantics) and `sum`
//!    to at most `n` of them,
//! 2. the recursion **returns the objective expression** of the subtree; at
//!    the root it becomes the MILP objective, and inside `min`/`barrier`
//!    nodes it feeds constraints implementing `and`/threshold semantics,
//! 3. **equivalence sets** become integer *partition variables*: a leaf
//!    creates one `P_x` per partition class it draws from, demand
//!    constraints tie `sum(P_x) = k * I`, and per-(class, time-slice)
//!    supply constraints cap total use at expected availability.
//!
//! Time is discretized into `quantum`-sized slices across the plan-ahead
//! window; a leaf occupies every slice its `[start, start+dur)` interval
//! intersects.

use std::collections::BTreeMap;
use std::fmt;

use tetrisched_cluster::{NodeSet, PartitionSet, Time};
use tetrisched_milp::{LinExpr, Model, Sense, Solution, VarId, VarKind};
use tetrisched_strl::StrlExpr;

/// Compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A leaf's equivalence set is not a union of partition classes; the
    /// partition set must be refined against every leaf set.
    UnalignedSet {
        /// Offending partition class index.
        class: usize,
    },
    /// A leaf starts before `now`.
    StartInPast {
        /// The leaf's start time.
        start: Time,
        /// The compile-time `now`.
        now: Time,
    },
    /// A leaf starts beyond the plan-ahead window.
    StartBeyondWindow {
        /// The leaf's start time.
        start: Time,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnalignedSet { class } => {
                write!(f, "leaf set not aligned with partition class {class}")
            }
            CompileError::StartInPast { start, now } => {
                write!(f, "leaf start {start} is before now {now}")
            }
            CompileError::StartBeyondWindow { start } => {
                write!(f, "leaf start {start} is beyond the plan-ahead window")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compilation parameters.
#[derive(Debug)]
pub struct CompileInput<'a> {
    /// The (usually aggregated) STRL expression.
    pub expr: &'a StrlExpr,
    /// Partition classes refined against every leaf equivalence set.
    pub partitions: &'a PartitionSet,
    /// Current time; all leaf starts must be `>= now`.
    pub now: Time,
    /// Time-slice width in seconds.
    pub quantum: u64,
    /// Number of slices in the plan-ahead window (>= 1).
    pub n_slices: usize,
}

/// Metadata for one compiled leaf, in depth-first order of the input
/// expression (callers rely on this order to map leaves back to jobs).
#[derive(Debug, Clone)]
pub struct LeafInfo {
    /// Leaf start time (absolute).
    pub start: Time,
    /// Leaf duration.
    pub dur: u64,
    /// Requested resource count.
    pub k: u32,
    /// Whether this is a linear (`LnCk`) leaf.
    pub linear: bool,
    /// The leaf's indicator variable.
    pub indicator: VarId,
    /// Partition variables `(class index, var)` created for the leaf.
    pub partition_vars: Vec<(usize, VarId)>,
    /// Indicator chain from the root (exclusive) to the leaf's parent that
    /// must be set for the leaf to be active (used for warm starts).
    pub ancestors: Vec<VarId>,
}

/// One satisfied leaf extracted from a solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChosenAlloc {
    /// Index into [`CompiledModel::leaves`].
    pub leaf: usize,
    /// Node counts drawn from each partition class.
    pub counts: Vec<(usize, u32)>,
}

/// The result of compilation: a MILP model plus the bookkeeping needed to
/// interpret its solutions.
#[derive(Debug)]
pub struct CompiledModel {
    /// The MILP to maximize.
    pub model: Model,
    /// Leaf metadata in depth-first input order.
    pub leaves: Vec<LeafInfo>,
    /// The root indicator (fixed to 1).
    pub root_indicator: VarId,
}

impl CompiledModel {
    /// Extracts the satisfied leaves and their per-class node counts.
    pub fn chosen(&self, sol: &Solution) -> Vec<ChosenAlloc> {
        let mut out = Vec::new();
        for (ix, leaf) in self.leaves.iter().enumerate() {
            if !sol.is_set(leaf.indicator) {
                continue;
            }
            let counts: Vec<(usize, u32)> = leaf
                .partition_vars
                .iter()
                .map(|&(class, v)| (class, sol.int_value(v).max(0) as u32))
                .filter(|&(_, c)| c > 0)
                .collect();
            let total: u32 = counts.iter().map(|&(_, c)| c).sum();
            if leaf.linear && total == 0 {
                continue; // A satisfied linear leaf with nothing allocated.
            }
            out.push(ChosenAlloc { leaf: ix, counts });
        }
        out
    }

    /// Decodes the solution back into STRL space: granted node count per
    /// leaf, in the same depth-first (pre-order) leaf order the expression
    /// uses, for translation validation via
    /// [`tetrisched_strl::StrlExpr::placement_value`]. An unchosen leaf is
    /// granted zero regardless of its partition variables (the demand
    /// constraints force them to zero anyway).
    pub fn granted(&self, sol: &Solution) -> Vec<u32> {
        self.leaves
            .iter()
            .map(|leaf| {
                if !sol.is_set(leaf.indicator) {
                    return 0;
                }
                leaf.partition_vars
                    .iter()
                    .map(|&(_, v)| sol.int_value(v).max(0) as u32)
                    .sum()
            })
            .collect()
    }

    /// Builds a candidate assignment activating the given leaf choices
    /// (with explicit per-class counts), for seeding the solver with the
    /// previous cycle's schedule. The result is *not* guaranteed feasible;
    /// the solver validates and silently discards bad warm starts.
    // srclint: checked-indexing: every VarId written here was minted by
    // this compiled model, and v is allocated with num_vars entries.
    pub fn warm_vector(&self, picks: &[(usize, Vec<(usize, u32)>)]) -> Vec<f64> {
        let mut v = vec![0.0; self.model.num_vars()];
        v[self.root_indicator.index()] = 1.0;
        for (leaf_ix, counts) in picks {
            let Some(leaf) = self.leaves.get(*leaf_ix) else {
                continue;
            };
            v[leaf.indicator.index()] = 1.0;
            for a in &leaf.ancestors {
                v[a.index()] = 1.0;
            }
            for (class, count) in counts {
                if let Some(&(_, var)) = leaf.partition_vars.iter().find(|(c, _)| c == class) {
                    v[var.index()] = *count as f64;
                }
            }
        }
        v
    }
}

/// Compiles a STRL expression into a MILP (Algorithm 1).
///
/// `avail` reports how many nodes of a partition class are expected free at
/// an absolute time (plan-ahead's view of the ledger).
pub fn compile(
    input: &CompileInput<'_>,
    avail: &dyn Fn(&NodeSet, Time) -> usize,
) -> Result<CompiledModel, CompileError> {
    let mut ctx = GenCtx {
        model: Model::maximize(),
        used: BTreeMap::new(),
        leaves: Vec::new(),
        stack: Vec::new(),
        partitions: input.partitions,
        now: input.now,
        quantum: input.quantum.max(1),
        n_slices: input.n_slices.max(1),
    };

    // genAndSolve: a free binary root indicator. It must stay free (not
    // pinned to 1) so that unsatisfiable subtrees — a `min` with a dead leg,
    // a `barrier` whose threshold is unreachable — can settle at zero value
    // instead of making the whole model infeasible; maximization turns it
    // on whenever any value is obtainable.
    let root = ctx.model.add_var("I_root", VarKind::Binary, 0.0, 1.0, 0.0);
    let objective = ctx.gen(input.expr, root)?;
    ctx.model.add_objective_expr(&objective);

    // Supply constraints: per class per slice, usage <= expected free
    // (the ordered map makes constraint order deterministic).
    for (&(class, slice), vars) in &ctx.used {
        let t = input.now + slice as u64 * ctx.quantum;
        let cap = avail(input.partitions.class(class), t);
        ctx.model.add_constraint(
            format!("supply_c{class}_s{slice}"),
            vars.iter().map(|&v| (v, 1.0)),
            Sense::Le,
            cap as f64,
        );
    }

    Ok(CompiledModel {
        model: ctx.model,
        leaves: ctx.leaves,
        root_indicator: root,
    })
}

struct GenCtx<'a> {
    model: Model,
    /// (class, slice) -> partition variables using that capacity.
    used: BTreeMap<(usize, usize), Vec<VarId>>,
    leaves: Vec<LeafInfo>,
    /// Indicator chain from the root to the current node.
    stack: Vec<VarId>,
    partitions: &'a PartitionSet,
    now: Time,
    quantum: u64,
    n_slices: usize,
}

impl GenCtx<'_> {
    /// Algorithm 1's `gen(expr, I)`: returns the subtree's objective.
    fn gen(&mut self, expr: &StrlExpr, indicator: VarId) -> Result<LinExpr, CompileError> {
        match expr {
            StrlExpr::NCk {
                set,
                k,
                start,
                dur,
                value,
            } => self.gen_leaf(set, *k, *start, *dur, *value, indicator, false),
            StrlExpr::LnCk {
                set,
                k,
                start,
                dur,
                value,
            } => self.gen_leaf(set, *k, *start, *dur, *value, indicator, true),
            StrlExpr::Max(children) => {
                let mut objective = LinExpr::new();
                let mut child_terms = Vec::with_capacity(children.len() + 1);
                for (i, child) in children.iter().enumerate() {
                    let ci =
                        self.model
                            .add_var(format!("I_max{i}"), VarKind::Binary, 0.0, 1.0, 0.0);
                    child_terms.push((ci, 1.0));
                    self.stack.push(indicator);
                    let f = self.gen(child, ci)?;
                    self.stack.pop();
                    objective.add_expr(&f);
                }
                // At most one child is chosen (and none when I = 0).
                child_terms.push((indicator, -1.0));
                self.model
                    .add_constraint("max_choice", child_terms, Sense::Le, 0.0);
                Ok(objective)
            }
            StrlExpr::Sum(children) => {
                let mut objective = LinExpr::new();
                let mut child_terms = Vec::with_capacity(children.len() + 1);
                for (i, child) in children.iter().enumerate() {
                    let ci =
                        self.model
                            .add_var(format!("I_sum{i}"), VarKind::Binary, 0.0, 1.0, 0.0);
                    child_terms.push((ci, 1.0));
                    self.stack.push(indicator);
                    let f = self.gen(child, ci)?;
                    self.stack.pop();
                    objective.add_expr(&f);
                }
                let n = children.len() as f64;
                child_terms.push((indicator, -n));
                self.model
                    .add_constraint("sum_gate", child_terms, Sense::Le, 0.0);
                Ok(objective)
            }
            StrlExpr::Min(children) => {
                if children.is_empty() {
                    // A vacuous `min` carries no value (and an unbounded V
                    // variable would make the model unbounded).
                    return Ok(LinExpr::new());
                }
                // V represents the minimum child objective; maximization
                // pushes it up to the true minimum.
                let v = self
                    .model
                    .add_var("V_min", VarKind::Continuous, 0.0, f64::INFINITY, 0.0);
                for child in children {
                    // Children share the parent's indicator (Algorithm 1).
                    let f = self.gen(child, indicator)?;
                    // V <= f  =>  V - f <= f.constant .. move constant right.
                    let mut terms = vec![(v, 1.0)];
                    for &(var, c) in &f.compact().terms {
                        terms.push((var, -c));
                    }
                    self.model
                        .add_constraint("min_bound", terms, Sense::Le, f.constant);
                }
                Ok(LinExpr::term(v, 1.0))
            }
            StrlExpr::Scale { factor, child } => Ok(self.gen(child, indicator)?.scaled(*factor)),
            StrlExpr::Barrier { value, child } => {
                let f = self.gen(child, indicator)?;
                // v * I <= f.
                let mut terms = vec![(indicator, *value)];
                for &(var, c) in &f.compact().terms {
                    terms.push((var, -c));
                }
                self.model
                    .add_constraint("barrier", terms, Sense::Le, f.constant);
                Ok(LinExpr::term(indicator, *value))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn gen_leaf(
        &mut self,
        set: &NodeSet,
        k: u32,
        start: Time,
        dur: u64,
        value: f64,
        indicator: VarId,
        linear: bool,
    ) -> Result<LinExpr, CompileError> {
        if start < self.now {
            return Err(CompileError::StartInPast {
                start,
                now: self.now,
            });
        }
        let rel = start - self.now;
        let first_slice = (rel / self.quantum) as usize;
        if first_slice >= self.n_slices {
            return Err(CompileError::StartBeyondWindow { start });
        }
        let last_slice = ((rel + dur).div_ceil(self.quantum) as usize).min(self.n_slices);

        let classes = self
            .partitions
            .cover(set)
            .map_err(|class| CompileError::UnalignedSet { class })?;
        let mut partition_vars = Vec::with_capacity(classes.len());
        let mut demand_terms = Vec::with_capacity(classes.len() + 1);
        for class in classes {
            let cap = self.partitions.class(class).len().min(k as usize) as f64;
            let p = self.model.add_var(
                format!("P_c{class}_t{start}"),
                VarKind::Integer,
                0.0,
                cap,
                0.0,
            );
            partition_vars.push((class, p));
            demand_terms.push((p, 1.0));
            for slice in first_slice..last_slice {
                self.used.entry((class, slice)).or_default().push(p);
            }
        }

        let objective = if linear {
            // sum(P) <= k * I; objective v/k per node obtained.
            let mut terms = demand_terms.clone();
            terms.push((indicator, -(k as f64)));
            self.model
                .add_constraint("lnck_demand", terms, Sense::Le, 0.0);
            let mut obj = LinExpr::new();
            for &(p, _) in &demand_terms {
                obj.add_term(p, value / k as f64);
            }
            obj
        } else {
            // sum(P) = k * I; objective v when chosen.
            let mut terms = demand_terms;
            terms.push((indicator, -(k as f64)));
            self.model
                .add_constraint("nck_demand", terms, Sense::Eq, 0.0);
            LinExpr::term(indicator, value)
        };

        self.leaves.push(LeafInfo {
            start,
            dur,
            k,
            linear,
            indicator,
            partition_vars,
            ancestors: self.stack.clone(),
        });
        Ok(objective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrisched_cluster::{NodeId, PartitionSet};
    use tetrisched_milp::SolverConfig;

    fn set(cap: usize, ids: &[u32]) -> NodeSet {
        NodeSet::from_ids(cap, ids.iter().map(|&i| NodeId(i)))
    }

    /// Compiles and solves exactly, with constant availability.
    fn solve(
        expr: &StrlExpr,
        partitions: &PartitionSet,
        quantum: u64,
        n_slices: usize,
        cap: usize,
    ) -> (CompiledModel, Solution) {
        let input = CompileInput {
            expr,
            partitions,
            now: 0,
            quantum,
            n_slices,
        };
        let compiled = compile(&input, &move |_, _| cap).expect("compile");
        let sol = compiled.model.solve(&SolverConfig::exact()).expect("solve");
        (compiled, sol)
    }

    /// The paper's Sec. 5.1 example: three jobs, three machines, 10s
    /// quantum. The only schedule meeting all deadlines is job 1 at t=0,
    /// job 3 at t=10, job 2 at t=20 (Fig. 4).
    #[test]
    fn sec51_milp_example_reproduces_fig4() {
        let all = set(3, &[0, 1, 2]);
        let job1 = StrlExpr::nck(all.clone(), 2, 0, 10, 1.0);
        let job2 = StrlExpr::max([
            StrlExpr::nck(all.clone(), 1, 0, 20, 1.0),
            StrlExpr::nck(all.clone(), 1, 10, 20, 1.0),
            StrlExpr::nck(all.clone(), 1, 20, 20, 1.0),
        ]);
        let job3 = StrlExpr::max([
            StrlExpr::nck(all.clone(), 3, 0, 10, 1.0),
            StrlExpr::nck(all.clone(), 3, 10, 10, 1.0),
        ]);
        let expr = StrlExpr::sum([job1, job2, job3]);
        let partitions = PartitionSet::refine(3, &[all]);
        let (compiled, sol) = solve(&expr, &partitions, 10, 4, 3);

        assert!(
            (sol.objective - 3.0).abs() < 1e-6,
            "all three jobs scheduled"
        );
        let chosen = compiled.chosen(&sol);
        assert_eq!(chosen.len(), 3);
        // Leaf DFS order: job1@0; job2@{0,10,20}; job3@{0,10}.
        let starts: Vec<Time> = chosen
            .iter()
            .map(|c| compiled.leaves[c.leaf].start)
            .collect();
        assert_eq!(starts, vec![0, 20, 10], "job1@0, job2@20, job3@10");
    }

    #[test]
    fn gpu_soft_constraint_prefers_fast_option() {
        // Fig. 3: GPU option (v=4) vs anywhere (v=3); GPUs free => fast.
        let gpus = set(4, &[0, 1]);
        let all = set(4, &[0, 1, 2, 3]);
        let expr = StrlExpr::max([
            StrlExpr::nck(gpus.clone(), 2, 0, 2, 4.0),
            StrlExpr::nck(all.clone(), 2, 0, 3, 3.0),
        ]);
        let partitions = PartitionSet::refine(4, &[gpus, all]);
        let (compiled, sol) = solve(&expr, &partitions, 1, 5, 4);
        assert!((sol.objective - 4.0).abs() < 1e-6);
        let chosen = compiled.chosen(&sol);
        assert_eq!(chosen.len(), 1);
        assert_eq!(compiled.leaves[chosen[0].leaf].dur, 2);
    }

    #[test]
    fn gpu_soft_constraint_falls_back_when_gpus_busy() {
        let gpus = set(4, &[0, 1]);
        let all = set(4, &[0, 1, 2, 3]);
        let expr = StrlExpr::max([
            StrlExpr::nck(gpus.clone(), 2, 0, 2, 4.0),
            StrlExpr::nck(all.clone(), 2, 0, 3, 3.0),
        ]);
        let partitions = PartitionSet::refine(4, &[gpus.clone(), all]);
        // GPUs (class containing nodes 0,1) are busy: avail 0 there.
        let input = CompileInput {
            expr: &expr,
            partitions: &partitions,
            now: 0,
            quantum: 1,
            n_slices: 5,
        };
        let gpus_for_avail = gpus.clone();
        let compiled = compile(&input, &move |class: &NodeSet, _| {
            if class.is_subset(&gpus_for_avail) {
                0
            } else {
                class.len()
            }
        })
        .expect("expression is well-formed and inside the window; compile must succeed");
        let sol = compiled
            .model
            .solve(&SolverConfig::exact())
            .expect("compiled models are solver-valid");
        assert!((sol.objective - 3.0).abs() < 1e-6, "fallback option chosen");
        let chosen = compiled.chosen(&sol);
        // The fallback drew its 2 nodes from the non-GPU class only.
        for (class, count) in &chosen[0].counts {
            assert!(partitions.class(*class).is_disjoint(&gpus) || *count == 0);
        }
    }

    #[test]
    fn min_expresses_anti_affinity() {
        // Fig. 1's Availability job: one node on each rack.
        let rack1 = set(4, &[0, 1]);
        let rack2 = set(4, &[2, 3]);
        let expr = StrlExpr::min([
            StrlExpr::nck(rack1.clone(), 1, 0, 3, 2.0),
            StrlExpr::nck(rack2.clone(), 1, 0, 3, 2.0),
        ]);
        let partitions = PartitionSet::refine(4, &[rack1.clone(), rack2.clone()]);
        let (compiled, sol) = solve(&expr, &partitions, 1, 3, 2);
        assert!((sol.objective - 2.0).abs() < 1e-6);
        let chosen = compiled.chosen(&sol);
        assert_eq!(chosen.len(), 2, "both rack legs satisfied");
        let total: u32 = chosen
            .iter()
            .flat_map(|c| c.counts.iter().map(|&(_, n)| n))
            .sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn min_unsatisfiable_leg_yields_zero() {
        let rack1 = set(4, &[0, 1]);
        let rack2 = set(4, &[2, 3]);
        let expr = StrlExpr::min([
            StrlExpr::nck(rack1.clone(), 1, 0, 3, 2.0),
            StrlExpr::nck(rack2.clone(), 1, 0, 3, 2.0),
        ]);
        let partitions = PartitionSet::refine(4, &[rack1.clone(), rack2.clone()]);
        let input = CompileInput {
            expr: &expr,
            partitions: &partitions,
            now: 0,
            quantum: 1,
            n_slices: 3,
        };
        // Rack 2 has no availability.
        let compiled = compile(&input, &move |class: &NodeSet, _| {
            if class.is_subset(&rack2) {
                0
            } else {
                class.len()
            }
        })
        .expect("expression is well-formed and inside the window; compile must succeed");
        let sol = compiled
            .model
            .solve(&SolverConfig::exact())
            .expect("compiled models are solver-valid");
        assert!(sol.objective.abs() < 1e-6, "min collapses to zero value");
    }

    #[test]
    fn supply_constraints_prevent_overcommit() {
        // Two jobs each wanting 2 of 3 machines at t=0: only one fits.
        let all = set(3, &[0, 1, 2]);
        let expr = StrlExpr::sum([
            StrlExpr::nck(all.clone(), 2, 0, 10, 1.0),
            StrlExpr::nck(all.clone(), 2, 0, 10, 1.0),
        ]);
        let partitions = PartitionSet::refine(3, &[all]);
        let (compiled, sol) = solve(&expr, &partitions, 10, 1, 3);
        assert!((sol.objective - 1.0).abs() < 1e-6);
        assert_eq!(compiled.chosen(&sol).len(), 1);
    }

    #[test]
    fn linear_leaf_takes_partial_allocation() {
        // LnCk over 3 machines asking for up to 4, value 4 (1 per node).
        let all = set(3, &[0, 1, 2]);
        let expr = StrlExpr::lnck(all.clone(), 4, 0, 10, 4.0);
        let partitions = PartitionSet::refine(3, &[all]);
        let (compiled, sol) = solve(&expr, &partitions, 10, 1, 3);
        assert!(
            (sol.objective - 3.0).abs() < 1e-6,
            "3 of 4 nodes => 3/4 of value"
        );
        let chosen = compiled.chosen(&sol);
        assert_eq!(chosen.len(), 1);
        let total: u32 = chosen[0].counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn scale_amplifies_and_barrier_gates() {
        let all = set(2, &[0, 1]);
        let partitions = PartitionSet::refine(2, std::slice::from_ref(&all));
        // scale(3, leaf worth 2) = 6.
        let expr = StrlExpr::scale(3.0, StrlExpr::nck(all.clone(), 1, 0, 5, 2.0));
        let (_, sol) = solve(&expr, &partitions, 5, 1, 2);
        assert!((sol.objective - 6.0).abs() < 1e-6);

        // barrier(5, leaf worth 2): unreachable threshold => 0.
        let expr = StrlExpr::barrier(5.0, StrlExpr::nck(all.clone(), 1, 0, 5, 2.0));
        let (_, sol) = solve(&expr, &partitions, 5, 1, 2);
        assert!(sol.objective.abs() < 1e-6);

        // barrier(2, leaf worth 2): met => returns exactly 2.
        let expr = StrlExpr::barrier(2.0, StrlExpr::nck(all, 1, 0, 5, 2.0));
        let (_, sol) = solve(&expr, &partitions, 5, 1, 2);
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn start_in_past_rejected() {
        let all = set(2, &[0, 1]);
        let partitions = PartitionSet::refine(2, std::slice::from_ref(&all));
        let expr = StrlExpr::nck(all, 1, 5, 5, 1.0);
        let input = CompileInput {
            expr: &expr,
            partitions: &partitions,
            now: 10,
            quantum: 5,
            n_slices: 4,
        };
        assert!(matches!(
            compile(&input, &|_, _| 2),
            Err(CompileError::StartInPast { .. })
        ));
    }

    #[test]
    fn start_beyond_window_rejected() {
        let all = set(2, &[0, 1]);
        let partitions = PartitionSet::refine(2, std::slice::from_ref(&all));
        let expr = StrlExpr::nck(all, 1, 100, 5, 1.0);
        let input = CompileInput {
            expr: &expr,
            partitions: &partitions,
            now: 0,
            quantum: 5,
            n_slices: 4,
        };
        assert!(matches!(
            compile(&input, &|_, _| 2),
            Err(CompileError::StartBeyondWindow { .. })
        ));
    }

    #[test]
    fn warm_vector_is_feasible_for_simple_choice() {
        let all = set(3, &[0, 1, 2]);
        let expr = StrlExpr::sum([StrlExpr::max([
            StrlExpr::nck(all.clone(), 2, 0, 10, 1.0),
            StrlExpr::nck(all.clone(), 2, 10, 10, 1.0),
        ])]);
        let partitions = PartitionSet::refine(3, &[all]);
        let input = CompileInput {
            expr: &expr,
            partitions: &partitions,
            now: 0,
            quantum: 10,
            n_slices: 2,
        };
        let compiled = compile(&input, &|_, _| 3)
            .expect("expression is well-formed and inside the window; compile must succeed");
        // Choose the second start with 2 nodes from class 0.
        let class = compiled.leaves[1].partition_vars[0].0;
        let warm = compiled.warm_vector(&[(1, vec![(class, 2)])]);
        assert!(compiled.model.is_feasible(&warm, 1e-6));
        let sol = compiled
            .model
            .solve_warm(&SolverConfig::exact(), &warm)
            .expect("compiled models are solver-valid");
        assert!(sol.stats.warm_start_used);
    }

    #[test]
    fn leaf_order_is_depth_first() {
        let all = set(2, &[0, 1]);
        let expr = StrlExpr::sum([
            StrlExpr::max([
                StrlExpr::nck(all.clone(), 1, 0, 1, 1.0),
                StrlExpr::nck(all.clone(), 1, 1, 1, 1.0),
            ]),
            StrlExpr::nck(all.clone(), 1, 2, 1, 1.0),
        ]);
        let partitions = PartitionSet::refine(2, &[all]);
        let input = CompileInput {
            expr: &expr,
            partitions: &partitions,
            now: 0,
            quantum: 1,
            n_slices: 4,
        };
        let compiled = compile(&input, &|_, _| 2)
            .expect("expression is well-formed and inside the window; compile must succeed");
        let starts: Vec<Time> = compiled.leaves.iter().map(|l| l.start).collect();
        assert_eq!(starts, vec![0, 1, 2]);
        // Nested leaf has two ancestors (sum child, max child excluded —
        // ancestors are the chain above the leaf's own indicator).
        assert_eq!(compiled.leaves[0].ancestors.len(), 2);
        assert_eq!(compiled.leaves[2].ancestors.len(), 1);
    }
}
