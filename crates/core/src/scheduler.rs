//! The TetriSched scheduler: global re-planning with adaptive plan-ahead.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use lint::{
    has_errors, lint_expr, lint_model, validate_translation, Diagnostic, Severity, StrlLintContext,
};
use tetrisched_cluster::{AllocHandle, Ledger, NodeSet, PartitionSet, Time};
use tetrisched_milp::{ExactBackend, HeuristicBackend, MilpBackend, SolveStatus, SolverConfig};
use tetrisched_sim::{
    CycleContext, CycleDecisions, CycleError, JobId, Launch, PendingJob, Scheduler,
};
use tetrisched_strl::{JobClass, StrlExpr};

use crate::compiler::{compile, CompileInput, CompiledModel};
use crate::config::TetriSchedConfig;
use crate::generator::{JobRequest, LeafTag, OptionKey, StrlGenerator};
use crate::governor::{Governor, LadderRung};

/// The TetriSched scheduler (all Table 2 configurations).
pub struct TetriSched {
    config: TetriSchedConfig,
    /// Last cycle's chosen option per job, for warm starting (Sec. 3.2.2).
    choice_cache: BTreeMap<JobId, (OptionKey, Time)>,
    /// Consecutive compile failures per job, for quarantine.
    compile_failures: BTreeMap<JobId, u32>,
    /// Global MILP solves attempted so far (drives the chaos knob).
    global_solves: u64,
    /// The degradation-ladder governor; disabled by default, in which
    /// case the pre-ladder binary global-or-greedy fallback applies.
    governor: Governor,
    /// True while the current global solve runs on the ladder's anytime
    /// rung (tight incumbent-only solver budget).
    anytime_mode: bool,
}

impl TetriSched {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: TetriSchedConfig) -> Self {
        let governor = Governor::new(config.governor.clone());
        TetriSched {
            config,
            choice_cache: BTreeMap::new(),
            compile_failures: BTreeMap::new(),
            global_solves: 0,
            governor,
            anytime_mode: false,
        }
    }

    /// Records a per-job cycle failure (compile error or lint rejection),
    /// abandoning the job once it crosses the quarantine threshold so one
    /// bad job cannot poison every future cycle.
    fn record_job_failure(&mut self, job: JobId, err: CycleError, d: &mut CycleDecisions) {
        record_job_failure_in(
            &mut self.compile_failures,
            &mut self.choice_cache,
            self.config.max_compile_failures,
            job,
            err,
            d,
        );
    }

    /// Full TetriSched with the paper's default plan-ahead.
    pub fn paper_default() -> Self {
        Self::new(TetriSchedConfig::default())
    }

    /// The lint window for generated expressions: leaves must start inside
    /// the plan-ahead window the compiler will discretize.
    fn lint_ctx(&self, now: Time) -> StrlLintContext {
        StrlLintContext {
            now,
            window_end: Some(now + self.config.n_slices() as u64 * self.config.cycle_period),
        }
    }

    fn solver_config(&self) -> SolverConfig {
        let base = if self.anytime_mode {
            SolverConfig::anytime(
                self.config.solver_time_limit,
                self.governor.config().anytime_node_limit,
            )
        } else {
            SolverConfig::online(self.config.solver_time_limit)
        };
        base.with_rel_gap(self.config.solver_gap)
            .with_audit(self.config.certify_solves)
    }

    /// The configured MILP backend (exact branch-and-bound, or the LP-dive
    /// heuristic for the quality-scale tradeoff).
    fn backend(&self) -> Box<dyn MilpBackend> {
        if self.config.solver_heuristic {
            Box::new(HeuristicBackend::new(self.solver_config()))
        } else {
            Box::new(ExactBackend::new(self.solver_config()))
        }
    }

    /// Revises the expected completion of running jobs that overran their
    /// estimate (Sec. 7.1) and returns an adjusted availability view.
    fn adjust_estimates(&self, ctx: &CycleContext<'_>, d: &mut CycleDecisions) -> Ledger {
        let mut view = ctx.ledger.clone();
        for r in ctx.running {
            if r.expected_end <= ctx.now {
                let span = r.expected_end.saturating_sub(r.started).max(1);
                let bump = ((span as f64 * self.config.estimate_bump).ceil() as u64)
                    .max(self.config.cycle_period);
                let new_end = ctx.now + bump;
                d.revised_ends.push((r.id, new_end));
                let _ = view.set_expected_end(AllocHandle(r.id.0), new_end);
            }
        }
        view
    }

    /// Selects the cycle's batch in priority order, abandoning SLO jobs
    /// that can no longer meet their deadline even in the best case.
    fn select_batch<'p>(
        &mut self,
        ctx: &CycleContext<'p>,
        d: &mut CycleDecisions,
    ) -> Vec<&'p PendingJob> {
        let mut batch: Vec<&PendingJob> = Vec::new();
        for p in ctx.pending {
            if let Some(deadline) = p.spec.deadline {
                // Estimates can be wrong in either direction (Sec. 7.1), so
                // a job is only abandoned once even a *heavily
                // over-estimated* runtime (2x the truth) could not fit its
                // deadline. Between the estimate not fitting and this
                // point, the generator emits a low-value "last chance"
                // replica instead of dropping the job.
                let best_dur = p.spec.estimated_runtime_for(self.config.heterogeneity);
                if ctx.now + best_dur.div_ceil(2) > deadline {
                    d.abandons.push(p.spec.id);
                    self.choice_cache.remove(&p.spec.id);
                    continue;
                }
            }
            batch.push(p);
        }
        batch.sort_by_key(|p| class_rank(p.class));
        batch.truncate(self.config.max_batch);
        batch
    }

    /// Global scheduling: one MILP over the whole batch (Sec. 5).
    ///
    /// Returns `false` when the primary path failed (aggregate could not be
    /// compiled, or the solver errored / produced no incumbent) and the
    /// caller should degrade the cycle to the greedy placer. Compile
    /// failures of individual jobs are isolated and quarantined here, not
    /// grounds for degradation.
    // srclint: checked-indexing: leaf indices in ChosenAlloc come from the
    // compiler's own leaves vector, all_tags is built leaf-for-leaf with
    // it, and by_job groups are non-empty by construction.
    fn cycle_global(
        &mut self,
        ctx: &CycleContext<'_>,
        view: &Ledger,
        batch: &[&PendingJob],
        d: &mut CycleDecisions,
    ) -> bool {
        let generator = StrlGenerator::new(&self.config, ctx.cluster);
        let rack_avail = |s: &NodeSet| view.avail_at(s, ctx.now);
        let t_gen = Instant::now();
        let gen_span = ctx.telemetry.span("sched", "strl_gen");
        let mut requests: Vec<JobRequest> = Vec::new();
        for p in batch {
            let req = generator.job_expr(p, ctx.now, &rack_avail);
            if req.is_schedulable() {
                requests.push(req);
            } else if p.spec.deadline.is_some() {
                d.abandons.push(p.spec.id);
                self.choice_cache.remove(&p.spec.id);
            }
        }
        gen_span.arg("requests", requests.len() as u64);
        drop(gen_span);
        ctx.telemetry
            .observe_wall("phase.strl_gen_secs", t_gen.elapsed().as_secs_f64());
        // Optional pre-solver gate: reject (and strike) jobs whose
        // generated STRL fails semantic analysis instead of letting a bad
        // expression reach the compiler or solver.
        if self.config.lint_models {
            let t_lint = Instant::now();
            let _lint_span = ctx.telemetry.span("sched", "lint");
            let lint_ctx = self.lint_ctx(ctx.now);
            requests.retain(|r| {
                let diags = lint_expr(&r.expr, &lint_ctx);
                if has_errors(&diags) {
                    self.record_job_failure(
                        r.job,
                        CycleError::Lint {
                            job: Some(r.job),
                            detail: summarize_errors(&diags),
                        },
                        d,
                    );
                    false
                } else {
                    true
                }
            });
            drop(_lint_span);
            ctx.telemetry
                .observe_wall("phase.lint_secs", t_lint.elapsed().as_secs_f64());
        }
        if requests.is_empty() {
            return true; // Nothing to place is success, not degradation.
        }

        let avail = |set: &NodeSet, t: Time| view.avail_at(set, t);
        // Compile the aggregate; on failure, isolate the offending jobs by
        // compiling each alone, quarantine them, and retry with the rest.
        let t_compile = Instant::now();
        let compile_span = ctx.telemetry.span("sched", "compile");
        let mut active = requests;
        let (compiled, partitions) = loop {
            let leaf_sets = collect_leaf_sets(active.iter().map(|r| &r.expr));
            let partitions = PartitionSet::refine(ctx.cluster.num_nodes(), &leaf_sets);
            let aggregate = StrlExpr::Sum(active.iter().map(|r| r.expr.clone()).collect());
            let input = CompileInput {
                expr: &aggregate,
                partitions: &partitions,
                now: ctx.now,
                quantum: self.config.cycle_period,
                n_slices: self.config.n_slices(),
            };
            match compile(&input, &avail) {
                Ok(c) => break (c, partitions),
                Err(agg_err) => {
                    let mut bad: Vec<(usize, String)> = Vec::new();
                    for (ix, r) in active.iter().enumerate() {
                        let sets = collect_leaf_sets(std::iter::once(&r.expr));
                        let parts = PartitionSet::refine(ctx.cluster.num_nodes(), &sets);
                        let single = CompileInput {
                            expr: &r.expr,
                            partitions: &parts,
                            now: ctx.now,
                            quantum: self.config.cycle_period,
                            n_slices: self.config.n_slices(),
                        };
                        if let Err(e) = compile(&single, &avail) {
                            bad.push((ix, e.to_string()));
                        }
                    }
                    if bad.is_empty() {
                        // Every job compiles alone but the aggregate fails:
                        // nothing to quarantine, give the cycle to greedy.
                        d.errors.push(CycleError::Compile {
                            job: None,
                            detail: agg_err.to_string(),
                        });
                        return false;
                    }
                    for (ix, detail) in bad.into_iter().rev() {
                        let job = active.remove(ix).job;
                        self.record_job_failure(
                            job,
                            CycleError::Compile {
                                job: Some(job),
                                detail,
                            },
                            d,
                        );
                    }
                    if active.is_empty() {
                        return false;
                    }
                }
            }
        };
        compile_span.arg("vars", compiled.model.num_vars() as u64);
        compile_span.arg("constraints", compiled.model.num_constraints() as u64);
        drop(compile_span);
        ctx.telemetry
            .observe_wall("phase.compile_secs", t_compile.elapsed().as_secs_f64());
        // Every surviving job compiled: clear its quarantine strikes.
        for r in &active {
            self.compile_failures.remove(&r.job);
        }
        let all_tags: Vec<LeafTag> = active.iter().flat_map(|r| r.tags.clone()).collect();

        // The compiled aggregate model gets the same treatment: an
        // Error-severity MILP diagnostic means the model is structurally
        // unsound, so degrade to greedy rather than solve it.
        if self.config.lint_models {
            let t_lint = Instant::now();
            let _lint_span = ctx.telemetry.span("sched", "lint");
            let diags = lint_model(&compiled.model);
            let rejected = has_errors(&diags);
            drop(_lint_span);
            ctx.telemetry
                .observe_wall("phase.lint_secs", t_lint.elapsed().as_secs_f64());
            if rejected {
                d.errors.push(CycleError::Lint {
                    job: None,
                    detail: summarize_errors(&diags),
                });
                return false;
            }
        }

        let warm = if self.config.warm_start {
            self.build_warm(&compiled, &all_tags, &partitions, view)
        } else {
            None
        };
        self.global_solves += 1;
        if self
            .config
            .chaos_global_solve_failures
            .contains(&self.global_solves)
        {
            d.errors.push(CycleError::Solver {
                detail: format!(
                    "chaos-injected failure of global solve #{}",
                    self.global_solves
                ),
            });
            return false;
        }
        let solve_span = ctx.telemetry.span("sched", "solve");
        let t0 = Instant::now();
        let sol = self.backend().solve(&compiled.model, warm.as_deref());
        let solve_secs = t0.elapsed();
        d.solver_time += solve_secs;
        ctx.telemetry
            .observe_wall("phase.solve_secs", solve_secs.as_secs_f64());
        let sol = match sol {
            Ok(s) => s,
            Err(e) => {
                d.errors.push(CycleError::Solver {
                    detail: e.to_string(),
                });
                return false;
            }
        };
        solve_span.arg("lp_iterations", sol.stats.lp_iterations as u64);
        solve_span.arg("bb_nodes", sol.stats.nodes as u64);
        solve_span.arg("bb_nodes_pruned", sol.stats.nodes_pruned as u64);
        drop(solve_span);
        account_solve(ctx.telemetry, d, &sol.stats, self.config.warm_start);
        if self.anytime_mode && sol.status == SolveStatus::Feasible {
            // The anytime rung's contract: the budget expired, and the
            // solver handed back its best incumbent together with the
            // dual bound (and, under audit, a feasibility certificate).
            d.anytime_incumbents += 1;
        }
        if sol.stats.presolve_certified {
            d.lint_presolve_rejections += 1;
        }
        // Proof-carrying solve accounting: the backend self-certified its
        // outcome (primal check + bound-tree audit replay). A failed
        // certificate means the claimed schedule cannot be trusted, so the
        // cycle degrades to greedy exactly as on a solver error.
        d.certificates_verified += sol.stats.certificates_verified;
        if sol.stats.certificate_failures > 0 {
            d.certificate_failures += sol.stats.certificate_failures;
            d.errors.push(CycleError::Certificate {
                job: None,
                detail: format!(
                    "global solve failed {} certificate check(s)",
                    sol.stats.certificate_failures
                ),
            });
            return false;
        }
        if !sol.status.has_solution() {
            d.errors.push(CycleError::NoSolution {
                detail: format!("{:?}", sol.status),
            });
            return false;
        }
        // Translation validation (C004): re-evaluate the aggregate STRL
        // expression under the decoded placement; its valuation must match
        // the MILP objective the solver just certified.
        if self.config.certify_solves {
            let t_certify = Instant::now();
            let _certify_span = ctx.telemetry.span("sched", "certify");
            let aggregate = StrlExpr::Sum(active.iter().map(|r| r.expr.clone()).collect());
            let verdict = validate_translation(
                &aggregate,
                &compiled.granted(&sol),
                sol.objective,
                sol.stats.best_bound,
            );
            drop(_certify_span);
            ctx.telemetry
                .observe_wall("phase.certify_secs", t_certify.elapsed().as_secs_f64());
            match verdict {
                Ok(_) => d.certificates_verified += 1,
                Err(diag) => {
                    d.certificate_failures += 1;
                    d.errors.push(CycleError::Certificate {
                        job: None,
                        detail: diag.to_string(),
                    });
                    return false;
                }
            }
        }

        let t_decode = Instant::now();
        let decode_span = ctx.telemetry.span("sched", "decode");
        // Stale cache entries for batch jobs die; chosen ones re-enter.
        for tag in &all_tags {
            self.choice_cache.remove(&tag.job);
        }
        // Group chosen leaves by job: a `min`-encoded option (availability
        // legs) satisfies several leaves that together form one gang.
        let mut by_job: std::collections::BTreeMap<JobId, Vec<crate::compiler::ChosenAlloc>> =
            std::collections::BTreeMap::new();
        for c in compiled.chosen(&sol) {
            by_job.entry(all_tags[c.leaf].job).or_default().push(c);
        }
        let mut assigned = ctx.cluster.empty_set();
        for (job, allocs) in by_job {
            let tag0 = &all_tags[allocs[0].leaf];
            debug_assert!(
                allocs.iter().all(|c| all_tags[c.leaf].start == tag0.start),
                "legs of one option must share a start"
            );
            self.choice_cache.insert(job, (tag0.key, tag0.start));
            if tag0.start != ctx.now {
                continue; // A deferred plan, re-evaluated next cycle.
            }
            // Materialize concrete nodes; the slice-0 supply constraints
            // guarantee per-class counts fit the currently free nodes.
            let mut nodes = Vec::new();
            let mut gang: usize = 0;
            for c in &allocs {
                gang += compiled.leaves[c.leaf].k as usize;
                for (class, count) in &c.counts {
                    let candidates = ctx
                        .ledger
                        .free_nodes()
                        .and(partitions.class(*class))
                        .minus(&assigned);
                    let picked = candidates.take(*count as usize);
                    debug_assert_eq!(picked.len(), *count as usize, "supply violated");
                    for n in &picked {
                        assigned.insert(*n);
                    }
                    nodes.extend(picked);
                }
            }
            if nodes.len() == gang {
                d.launches.push(Launch {
                    job,
                    nodes,
                    expected_end: ctx.now + tag0.dur,
                });
            }
        }
        decode_span.arg("launches", d.launches.len() as u64);
        drop(decode_span);
        ctx.telemetry
            .observe_wall("phase.decode_secs", t_decode.elapsed().as_secs_f64());
        true
    }

    /// Greedy (`TetriSched-NG`) scheduling: one MILP per job in priority
    /// order, committing space-time claims between solves (Sec. 6.3).
    // srclint: checked-indexing: chosen is checked non-empty before
    // chosen[0], and its leaf indices index the same request's tags.
    fn cycle_greedy(
        &mut self,
        ctx: &CycleContext<'_>,
        view: &Ledger,
        batch: &[&PendingJob],
        d: &mut CycleDecisions,
    ) {
        let generator = StrlGenerator::new(&self.config, ctx.cluster);
        let lint_ctx = self.lint_ctx(ctx.now);
        let t_greedy = Instant::now();
        let greedy_span = ctx.telemetry.span("sched", "greedy");
        greedy_span.arg("batch", batch.len() as u64);
        // Concrete future claims committed earlier in this cycle.
        let mut commitments: Vec<(NodeSet, Time, Time)> = Vec::new();
        let mut assigned_now = ctx.cluster.empty_set();

        for p in batch {
            let rack_avail = |s: &NodeSet| view.avail_at(s, ctx.now);
            let req = generator.job_expr(p, ctx.now, &rack_avail);
            if !req.is_schedulable() {
                if p.spec.deadline.is_some() {
                    d.abandons.push(p.spec.id);
                    self.choice_cache.remove(&p.spec.id);
                }
                continue;
            }
            if self.config.lint_models {
                let diags = lint_expr(&req.expr, &lint_ctx);
                if has_errors(&diags) {
                    record_job_failure_in(
                        &mut self.compile_failures,
                        &mut self.choice_cache,
                        self.config.max_compile_failures,
                        p.spec.id,
                        CycleError::Lint {
                            job: Some(p.spec.id),
                            detail: summarize_errors(&diags),
                        },
                        d,
                    );
                    continue;
                }
            }
            let leaf_sets = collect_leaf_sets(std::iter::once(&req.expr));
            let partitions = PartitionSet::refine(ctx.cluster.num_nodes(), &leaf_sets);
            let input = CompileInput {
                expr: &req.expr,
                partitions: &partitions,
                now: ctx.now,
                quantum: self.config.cycle_period,
                n_slices: self.config.n_slices(),
            };
            let commitments_ref = &commitments;
            let avail = move |set: &NodeSet, t: Time| {
                let mut a = view.avail_at(set, t);
                for (nodes, s, e) in commitments_ref {
                    if *s <= t && t < *e {
                        a = a.saturating_sub(nodes.and(set).len());
                    }
                }
                a
            };
            let compiled = match compile(&input, &avail) {
                Ok(c) => c,
                Err(e) => {
                    // Skip just this job (and quarantine repeat offenders);
                    // the rest of the batch still schedules.
                    record_job_failure_in(
                        &mut self.compile_failures,
                        &mut self.choice_cache,
                        self.config.max_compile_failures,
                        p.spec.id,
                        CycleError::Compile {
                            job: Some(p.spec.id),
                            detail: e.to_string(),
                        },
                        d,
                    );
                    continue;
                }
            };
            if self.config.lint_models {
                let diags = lint_model(&compiled.model);
                if has_errors(&diags) {
                    d.errors.push(CycleError::Lint {
                        job: Some(p.spec.id),
                        detail: summarize_errors(&diags),
                    });
                    continue;
                }
            }
            let t0 = Instant::now();
            let sol = self.backend().solve(&compiled.model, None);
            let solve_secs = t0.elapsed();
            d.solver_time += solve_secs;
            ctx.telemetry
                .observe_wall("phase.solve_secs", solve_secs.as_secs_f64());
            let sol = match sol {
                Ok(s) => s,
                Err(e) => {
                    d.errors.push(CycleError::Solver {
                        detail: e.to_string(),
                    });
                    continue;
                }
            };
            account_solve(ctx.telemetry, d, &sol.stats, false);
            if sol.stats.presolve_certified {
                d.lint_presolve_rejections += 1;
            }
            // A failed self-certificate skips just this job (with a
            // quarantine strike); the rest of the batch still schedules.
            d.certificates_verified += sol.stats.certificates_verified;
            if sol.stats.certificate_failures > 0 {
                d.certificate_failures += sol.stats.certificate_failures;
                record_job_failure_in(
                    &mut self.compile_failures,
                    &mut self.choice_cache,
                    self.config.max_compile_failures,
                    p.spec.id,
                    CycleError::Certificate {
                        job: Some(p.spec.id),
                        detail: format!(
                            "per-job solve failed {} certificate check(s)",
                            sol.stats.certificate_failures
                        ),
                    },
                    d,
                );
                continue;
            }
            if !sol.status.has_solution() {
                d.errors.push(CycleError::NoSolution {
                    detail: format!("{:?}", sol.status),
                });
                continue;
            }
            if self.config.certify_solves {
                if let Err(diag) = validate_translation(
                    &req.expr,
                    &compiled.granted(&sol),
                    sol.objective,
                    sol.stats.best_bound,
                ) {
                    d.certificate_failures += 1;
                    record_job_failure_in(
                        &mut self.compile_failures,
                        &mut self.choice_cache,
                        self.config.max_compile_failures,
                        p.spec.id,
                        CycleError::Certificate {
                            job: Some(p.spec.id),
                            detail: diag.to_string(),
                        },
                        d,
                    );
                    continue;
                }
                d.certificates_verified += 1;
            }
            self.compile_failures.remove(&p.spec.id);
            let chosen = compiled.chosen(&sol);
            self.choice_cache.remove(&p.spec.id);
            if chosen.is_empty() {
                continue;
            }
            // All chosen leaves belong to this one job (possibly several
            // `min` legs of an anti-affine option sharing one start).
            let tag = &req.tags[chosen[0].leaf];
            self.choice_cache.insert(tag.job, (tag.key, tag.start));

            // Materialize concrete nodes for the claim.
            let mut nodes = Vec::new();
            for c in &chosen {
                for (class, count) in &c.counts {
                    let mut candidates = view
                        .free_at(partitions.class(*class), tag.start)
                        .minus(&assigned_now);
                    for picked_node in &nodes {
                        candidates.remove(*picked_node);
                    }
                    for (held, s, e) in &commitments {
                        if *s < tag.start + tag.dur && tag.start < *e {
                            candidates = candidates.minus(held);
                        }
                    }
                    let picked = candidates.take(*count as usize);
                    for n in &picked {
                        nodes.push(*n);
                    }
                }
            }
            if nodes.len() != p.spec.k as usize {
                continue; // Claim could not be materialized; re-plan next cycle.
            }
            let held = NodeSet::from_ids(ctx.cluster.num_nodes(), nodes.iter().copied());
            commitments.push((held, tag.start, tag.start + tag.dur));
            if tag.start == ctx.now {
                for &n in &nodes {
                    assigned_now.insert(n);
                }
                d.launches.push(Launch {
                    job: tag.job,
                    nodes,
                    expected_end: ctx.now + tag.dur,
                });
            }
        }
        drop(greedy_span);
        ctx.telemetry
            .observe_wall("phase.greedy_secs", t_greedy.elapsed().as_secs_f64());
    }

    /// Runs one cycle at the governor's current ladder rung, replacing
    /// the binary global-or-greedy cliff with graceful degradation:
    ///
    /// - **Full** — the ordinary global MILP over the whole window.
    /// - **ReducedHorizon** — the global MILP with a shrunken plan-ahead
    ///   window, trading deferred-placement foresight for a smaller model.
    /// - **Anytime** — an incumbent-only solve under a tight node budget;
    ///   the budget-expired incumbent is used *with* its dual bound and
    ///   (under audit) its certificate.
    /// - **Greedy** — job-at-a-time placement, the old fallback floor.
    ///
    /// A rung whose primary path fails outright still falls through to
    /// greedy *within* the cycle, exactly as the binary watchdog did; the
    /// failure then votes for a demotion at the next hysteresis window.
    /// The cycle's deterministic solver work (branch-and-bound nodes +
    /// simplex iterations) feeds back into the governor, never wall-clock
    /// time, so rung trajectories replay identically under the same seed.
    fn cycle_ladder(
        &mut self,
        ctx: &CycleContext<'_>,
        view: &Ledger,
        batch: &[&PendingJob],
        d: &mut CycleDecisions,
    ) {
        let rung = self.governor.rung();
        self.governor.stamp(d);
        let primary_ok = match rung {
            LadderRung::Full => self.cycle_global(ctx, view, batch, d),
            LadderRung::ReducedHorizon => {
                let saved = self.config.plan_ahead;
                self.config.plan_ahead = self
                    .governor
                    .reduced_horizon(saved, self.config.cycle_period);
                let ok = self.cycle_global(ctx, view, batch, d);
                self.config.plan_ahead = saved;
                ok
            }
            LadderRung::Anytime => {
                self.anytime_mode = true;
                let ok = self.cycle_global(ctx, view, batch, d);
                self.anytime_mode = false;
                ok
            }
            LadderRung::Greedy => {
                // The floor rung runs the fallback placer by design; the
                // cycle is degraded but deliberate.
                d.degraded = true;
                self.cycle_greedy(ctx, view, batch, d);
                true
            }
        };
        if !primary_ok {
            d.degraded = true;
            self.cycle_greedy(ctx, view, batch, d);
        }
        self.governor.observe(d.solver_work_units, !primary_ok);
    }

    /// Opt-in extension (the paper's stated future work, Sec. 7.2):
    /// preempt best-effort gangs when an *urgent* accepted-SLO job — one
    /// that must start within the next cycle to meet its deadline — was
    /// left unscheduled for lack of capacity. Victims lose their progress
    /// and requeue; the freed nodes serve the urgent job at the next
    /// cycle's re-plan.
    fn maybe_preempt(
        &mut self,
        ctx: &CycleContext<'_>,
        batch: &[&PendingJob],
        d: &mut CycleDecisions,
    ) {
        let launched: BTreeSet<JobId> = d.launches.iter().map(|l| l.job).collect();
        let launched_nodes: usize = d.launches.iter().map(|l| l.nodes.len()).sum();
        let mut free_remaining = ctx.ledger.free_nodes().len().saturating_sub(launched_nodes);

        // The most urgent unscheduled accepted-SLO job, if any.
        let cycle = self.config.cycle_period;
        let urgent = batch
            .iter()
            .filter(|p| {
                p.class == JobClass::SloAccepted
                    && !launched.contains(&p.spec.id)
                    && !d.abandons.contains(&p.spec.id)
            })
            .filter(|p| {
                let deadline = p.spec.deadline.unwrap_or(Time::MAX);
                let dur = p.spec.estimated_runtime_for(self.config.heterogeneity);
                let latest_start = deadline.saturating_sub(dur);
                // Urgent: waiting two more cycles would blow the deadline —
                // but a launch at the *next* cycle (after this cycle's
                // preemption frees nodes) still makes it.
                latest_start <= ctx.now + 2 * cycle && ctx.now + cycle + dur <= deadline
            })
            .min_by_key(|p| p.spec.deadline);
        let Some(job) = urgent else { return };
        let need = (job.spec.k as usize).saturating_sub(free_remaining);
        if need == 0 {
            return;
        }

        // Victims: best-effort gangs, most recently started first.
        let mut victims: Vec<&tetrisched_sim::RunningJob> = ctx
            .running
            .iter()
            .filter(|r| r.class == JobClass::BestEffort && !d.preemptions.contains(&r.id))
            .collect();
        victims.sort_by_key(|r| (std::cmp::Reverse(r.started), r.id));
        let mut freed = 0usize;
        let mut chosen = Vec::new();
        for v in victims
            .into_iter()
            .take(self.config.max_preemptions_per_cycle)
        {
            if freed >= need {
                break;
            }
            freed += v.nodes.len();
            chosen.push(v.id);
        }
        if freed >= need {
            free_remaining += freed;
            let _ = free_remaining;
            d.preemptions.extend(chosen);
        }
    }

    /// Builds a warm-start vector reactivating last cycle's choices that
    /// are still present in this cycle's model.
    // srclint: checked-indexing: ix enumerates all_tags, which the caller
    // builds with exactly one tag per compiled leaf.
    fn build_warm(
        &self,
        compiled: &CompiledModel,
        all_tags: &[LeafTag],
        partitions: &PartitionSet,
        view: &Ledger,
    ) -> Option<Vec<f64>> {
        let mut picks: Vec<(usize, Vec<(usize, u32)>)> = Vec::new();
        for (ix, tag) in all_tags.iter().enumerate() {
            let Some(&(key, start)) = self.choice_cache.get(&tag.job) else {
                continue;
            };
            if tag.key != key || tag.start != start {
                continue;
            }
            // Greedily distribute k over the leaf's classes by availability.
            let leaf = &compiled.leaves[ix];
            let mut classes: Vec<(usize, usize)> = leaf
                .partition_vars
                .iter()
                .map(|&(c, _)| (view.avail_at(partitions.class(c), start), c))
                .collect();
            classes.sort_by_key(|&(a, c)| (std::cmp::Reverse(a), c));
            let mut remaining = leaf.k;
            let mut counts = Vec::new();
            for (avail, class) in classes {
                if remaining == 0 {
                    break;
                }
                let take = remaining.min(avail as u32);
                if take > 0 {
                    counts.push((class, take));
                    remaining -= take;
                }
            }
            if remaining == 0 {
                picks.push((ix, counts));
            }
        }
        if picks.is_empty() {
            None
        } else {
            Some(compiled.warm_vector(&picks))
        }
    }
}

impl Scheduler for TetriSched {
    fn on_complete(&mut self, job: JobId, _now: Time) {
        self.choice_cache.remove(&job);
        self.compile_failures.remove(&job);
    }

    fn on_evict(&mut self, job: JobId, _now: Time) {
        // The cached choice may point at nodes that are now down; force a
        // fresh plan when the job returns from backoff.
        self.choice_cache.remove(&job);
    }

    fn cycle(&mut self, ctx: &CycleContext<'_>) -> CycleDecisions {
        let mut d = CycleDecisions::default();
        let t_collect = Instant::now();
        let collect_span = ctx.telemetry.span("sched", "collect");
        let view = self.adjust_estimates(ctx, &mut d);
        let batch = self.select_batch(ctx, &mut d);
        collect_span.arg("batch", batch.len() as u64);
        drop(collect_span);
        ctx.telemetry
            .observe_wall("phase.collect_secs", t_collect.elapsed().as_secs_f64());
        if batch.is_empty() {
            if self.config.global && self.governor.enabled() {
                // An idle cycle is a vote of confidence: zero solver work
                // lets the governor climb back toward the full MILP.
                self.governor.stamp(&mut d);
                self.governor.observe(0, false);
            }
            return d;
        }
        if self.config.global {
            if self.governor.enabled() {
                self.cycle_ladder(ctx, &view, &batch, &mut d);
            } else if !self.cycle_global(ctx, &view, &batch, &mut d) {
                // Solver watchdog (pre-ladder binary fallback): the global
                // MILP failed this cycle. Degrade to greedy job-at-a-time
                // placement so the cluster keeps moving instead of idling
                // until the next cycle.
                d.degraded = true;
                self.cycle_greedy(ctx, &view, &batch, &mut d);
            }
        } else {
            self.cycle_greedy(ctx, &view, &batch, &mut d);
        }
        if self.config.preemption {
            self.maybe_preempt(ctx, &batch, &mut d);
        }
        d
    }

    fn name(&self) -> &str {
        self.config.variant_name()
    }
}

/// Field-level body of [`TetriSched::record_job_failure`]; standalone so
/// call sites holding a borrow of `config` (via the STRL generator) can
/// still reach the quarantine state. Compile failures and lint rejections
/// share one strike counter: either way the job's expression cannot be
/// handed to the solver.
fn record_job_failure_in(
    compile_failures: &mut BTreeMap<JobId, u32>,
    choice_cache: &mut BTreeMap<JobId, (OptionKey, Time)>,
    max_compile_failures: u32,
    job: JobId,
    err: CycleError,
    d: &mut CycleDecisions,
) {
    d.errors.push(err);
    let n = compile_failures.entry(job).or_insert(0);
    *n += 1;
    if *n >= max_compile_failures {
        d.abandons.push(job);
        choice_cache.remove(&job);
        compile_failures.remove(&job);
    }
}

/// Publishes one solve's [`tetrisched_milp::SolverStats`] into telemetry
/// counters and the cycle's decision tallies. `warm_configured` is whether
/// the scheduler attempted to warm-start this solve: a hit means the
/// solver accepted the warm incumbent, a miss means warm-starting was on
/// but no warm point survived (none built, or the solver rejected it).
fn account_solve(
    telemetry: &tetrisched_sim::Telemetry,
    d: &mut CycleDecisions,
    stats: &tetrisched_milp::SolverStats,
    warm_configured: bool,
) {
    // The ladder governor's deterministic load signal: solver work in
    // branch-and-bound nodes + simplex iterations (never wall-clock).
    d.solver_work_units += stats.nodes as u64 + stats.lp_iterations as u64;
    telemetry.counter_add("milp.lp_iterations", stats.lp_iterations as u64);
    telemetry.counter_add("milp.lp_solves", stats.lp_solves as u64);
    telemetry.counter_add("milp.refactorizations", stats.refactorizations as u64);
    telemetry.counter_add("milp.bb_nodes", stats.nodes as u64);
    telemetry.counter_add("milp.bb_nodes_pruned", stats.nodes_pruned as u64);
    telemetry.counter_add(
        "milp.presolve_rows_dropped",
        stats.presolve_rows_dropped as u64,
    );
    telemetry.counter_add(
        "milp.presolve_bounds_tightened",
        stats.presolve_bounds_tightened as u64,
    );
    d.presolve_reductions += stats.presolve_rows_dropped + stats.presolve_bounds_tightened;
    if warm_configured {
        if stats.warm_start_used {
            d.warm_start_hits += 1;
            telemetry.counter_add("sched.warm_start_hits", 1);
        } else {
            d.warm_start_misses += 1;
            telemetry.counter_add("sched.warm_start_misses", 1);
        }
    }
}

/// Compact one-line rendering of the Error-severity diagnostics in a lint
/// result, for [`CycleError::Lint`] details.
fn summarize_errors(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .filter(|diag| diag.severity >= Severity::Error)
        .map(|diag| diag.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

/// Priority rank of a job class (lower runs first), mirroring the paper's
/// three priority FIFOs (Sec. 6.3).
fn class_rank(class: JobClass) -> u8 {
    match class {
        JobClass::SloAccepted => 0,
        JobClass::SloNoReservation => 1,
        JobClass::BestEffort => 2,
    }
}

/// Collects every leaf equivalence set from a forest of expressions.
fn collect_leaf_sets<'e>(exprs: impl Iterator<Item = &'e StrlExpr>) -> Vec<NodeSet> {
    let mut sets = Vec::new();
    for e in exprs {
        e.visit(&mut |node| {
            if let StrlExpr::NCk { set, .. } | StrlExpr::LnCk { set, .. } = node {
                sets.push(set.clone());
            }
        });
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrisched_cluster::Cluster;
    use tetrisched_sim::{JobOutcome, JobSpec, JobType, SimConfig, Simulator};

    fn job(
        id: u64,
        submit: Time,
        job_type: JobType,
        k: u32,
        runtime: u64,
        slowdown: f64,
        deadline: Option<Time>,
    ) -> JobSpec {
        JobSpec {
            id: JobId(id),
            submit,
            job_type,
            k,
            base_runtime: runtime,
            slowdown,
            deadline,
            estimate_error: 0.0,
        }
    }

    fn run(
        cluster: Cluster,
        config: TetriSchedConfig,
        jobs: Vec<JobSpec>,
    ) -> tetrisched_sim::SimReport {
        let cycle_period = config.cycle_period;
        Simulator::new(
            cluster,
            TetriSched::new(config),
            SimConfig {
                cycle_period,
                trace: true,
                ..SimConfig::default()
            },
        )
        .run(jobs)
    }

    #[test]
    fn single_unconstrained_job_runs_immediately() {
        let report = run(
            Cluster::uniform(1, 4, 0),
            TetriSchedConfig::full(16),
            vec![job(0, 0, JobType::Unconstrained, 2, 20, 1.0, None)],
        );
        assert_eq!(
            report.outcomes[&JobId(0)],
            JobOutcome::Completed {
                at: 20,
                preferred: true
            }
        );
    }

    #[test]
    fn gpu_job_lands_on_gpu_nodes() {
        // 2 GPU nodes among 8; heterogeneity-aware placement must pick them.
        let report = run(
            Cluster::uniform(4, 2, 1),
            TetriSchedConfig::full(16),
            vec![job(0, 0, JobType::Gpu, 2, 30, 2.0, Some(200))],
        );
        assert_eq!(
            report.outcomes[&JobId(0)],
            JobOutcome::Completed {
                at: 30,
                preferred: true
            }
        );
    }

    #[test]
    fn mpi_job_lands_rack_local() {
        let report = run(
            Cluster::uniform(4, 4, 0),
            TetriSchedConfig::full(16),
            vec![job(0, 0, JobType::Mpi, 3, 30, 2.0, Some(200))],
        );
        assert_eq!(
            report.outcomes[&JobId(0)],
            JobOutcome::Completed {
                at: 30,
                preferred: true
            }
        );
    }

    #[test]
    fn availability_job_spreads_across_racks() {
        // 4 racks x 2; a 3-replica availability job must land on three
        // distinct racks (the `min`-compiled anti-affine option).
        let report = run(
            Cluster::uniform(4, 2, 0),
            TetriSchedConfig::full(16),
            vec![job(0, 0, JobType::Availability, 3, 30, 2.0, Some(200))],
        );
        assert_eq!(
            report.outcomes[&JobId(0)],
            JobOutcome::Completed {
                at: 30,
                preferred: true
            }
        );
    }

    #[test]
    fn availability_job_colocates_when_racks_busy() {
        // Only 2 racks: a 3-replica spread is impossible, so the job falls
        // back to the slowed anywhere-placement.
        let report = run(
            Cluster::uniform(2, 4, 0),
            TetriSchedConfig::full(16),
            vec![job(0, 0, JobType::Availability, 3, 30, 2.0, Some(200))],
        );
        assert_eq!(
            report.outcomes[&JobId(0)],
            JobOutcome::Completed {
                at: 60,
                preferred: false
            }
        );
    }

    #[test]
    fn availability_greedy_variant_also_spreads() {
        let report = run(
            Cluster::uniform(4, 2, 0),
            TetriSchedConfig::no_global(16),
            vec![job(0, 0, JobType::Availability, 3, 30, 2.0, Some(200))],
        );
        assert_eq!(
            report.outcomes[&JobId(0)],
            JobOutcome::Completed {
                at: 30,
                preferred: true
            }
        );
    }

    #[test]
    fn nh_config_ignores_preferences() {
        // Under NH the GPU job draws from the whole cluster with the
        // conservative slowed estimate; with only 2 GPU nodes in 8 and the
        // deterministic lowest-id node pick, the job may or may not land on
        // GPUs, but its *expected* duration is always the slowed one. Here
        // we only assert it completes (placement-agnostic).
        let report = run(
            Cluster::uniform(4, 2, 1),
            TetriSchedConfig::no_heterogeneity(16),
            vec![job(0, 0, JobType::Gpu, 4, 30, 2.0, Some(500))],
        );
        assert!(report.outcomes[&JobId(0)].completion().is_some());
    }

    /// The paper's Sec. 5.1 scenario end-to-end: global + plan-ahead meets
    /// all three deadlines; disabling plan-ahead (NP) misses one.
    #[test]
    fn plan_ahead_meets_sec51_deadlines() {
        let jobs = || {
            vec![
                job(1, 0, JobType::Unconstrained, 2, 10, 1.0, Some(10)),
                job(2, 0, JobType::Unconstrained, 1, 20, 1.0, Some(40)),
                job(3, 0, JobType::Unconstrained, 3, 10, 1.0, Some(20)),
            ]
        };
        let config = TetriSchedConfig {
            plan_ahead: 30,
            cycle_period: 10,
            max_start_options: 4,
            defer_tiebreak: 0.002,
            ..TetriSchedConfig::default()
        };
        let report = run(Cluster::three_machines(), config, jobs());
        assert_eq!(
            report.metrics.accepted_slo_met + report.metrics.nores_slo_met,
            3,
            "global + plan-ahead meets all deadlines: {:?}",
            report.outcomes
        );

        // TetriSched-NP (plan-ahead disabled) cannot satisfy all three.
        let mut np = TetriSchedConfig::no_plan_ahead();
        np.cycle_period = 10;
        let report = run(Cluster::three_machines(), np, jobs());
        assert!(
            report.metrics.accepted_slo_met + report.metrics.nores_slo_met < 3,
            "NP should miss at least one deadline"
        );
    }

    #[test]
    fn hopeless_slo_jobs_are_abandoned() {
        // Deadline 40 < half the 100 s estimate: even a 2x over-estimate
        // cannot explain success, so the job is dropped.
        let report = run(
            Cluster::uniform(1, 2, 0),
            TetriSchedConfig::full(16),
            vec![job(0, 0, JobType::Unconstrained, 2, 100, 1.0, Some(40))],
        );
        assert_eq!(report.metrics.abandoned, 1);
        assert!(matches!(
            report.outcomes[&JobId(0)],
            JobOutcome::Abandoned { .. }
        ));
    }

    #[test]
    fn estimate_infeasible_job_still_runs_last_chance() {
        // Deadline 60: the 100 s estimate cannot fit, but a 2x
        // over-estimate could, so the job runs at low value instead of
        // being abandoned. (Here the estimate was right: it misses.)
        let report = run(
            Cluster::uniform(1, 2, 0),
            TetriSchedConfig::full(16),
            vec![job(0, 0, JobType::Unconstrained, 2, 100, 1.0, Some(60))],
        );
        assert_eq!(report.metrics.abandoned, 0);
        assert_eq!(
            report.outcomes[&JobId(0)],
            JobOutcome::Completed {
                at: 100,
                preferred: true
            }
        );
        assert_eq!(report.metrics.accepted_slo_met, 0);

        // With a genuine 2x over-estimate, the last chance pays off. (The
        // inflated estimate also makes Rayon reject the reservation, so the
        // job counts as SLO-without-reservation.)
        let mut j = job(1, 0, JobType::Unconstrained, 2, 30, 1.0, Some(45));
        j.estimate_error = 1.0; // estimate 60, deadline 45, true 30
        let report = run(
            Cluster::uniform(1, 2, 0),
            TetriSchedConfig::full(16),
            vec![j],
        );
        assert_eq!(report.metrics.nores_slo_met, 1, "{:?}", report.outcomes);
        assert_eq!(report.metrics.total_slo_attainment(), 100.0);
    }

    #[test]
    fn greedy_variant_schedules_work() {
        let report = run(
            Cluster::uniform(1, 4, 0),
            TetriSchedConfig::no_global(16),
            vec![
                job(0, 0, JobType::Unconstrained, 2, 20, 1.0, Some(100)),
                job(1, 0, JobType::Unconstrained, 2, 20, 1.0, None),
            ],
        );
        assert_eq!(report.metrics.accepted_slo_met, 1);
        assert_eq!(report.metrics.be_completed, 1);
    }

    #[test]
    fn underestimated_job_estimate_is_bumped_not_killed() {
        // Estimate 10s, true 40s: TetriSched lets it finish (no preemption)
        // and bumps its expected end so plan-ahead stays honest.
        let mut j = job(0, 0, JobType::Unconstrained, 2, 40, 1.0, Some(200));
        j.estimate_error = -0.75;
        let report = run(
            Cluster::uniform(1, 4, 0),
            TetriSchedConfig::full(16),
            vec![j],
        );
        assert_eq!(report.metrics.preemptions, 0);
        assert_eq!(
            report.outcomes[&JobId(0)],
            JobOutcome::Completed {
                at: 40,
                preferred: true
            }
        );
        assert_eq!(report.metrics.accepted_slo_met, 1);
    }

    #[test]
    fn best_effort_jobs_eventually_run() {
        let report = run(
            Cluster::uniform(1, 2, 0),
            TetriSchedConfig::full(16),
            vec![
                job(0, 0, JobType::Unconstrained, 2, 30, 1.0, None),
                job(1, 0, JobType::Unconstrained, 2, 30, 1.0, None),
                job(2, 0, JobType::Unconstrained, 2, 30, 1.0, None),
            ],
        );
        assert_eq!(report.metrics.be_completed, 3);
    }

    #[test]
    fn preemption_extension_rescues_urgent_slo() {
        // A long BE job holds the whole cluster; an urgent accepted-SLO
        // job arrives. Without preemption the SLO is missed; with the
        // future-work preemption extension it is met.
        let jobs = || {
            vec![
                job(0, 0, JobType::Unconstrained, 4, 300, 1.0, None),
                job(1, 8, JobType::Unconstrained, 4, 30, 1.0, Some(60)),
            ]
        };
        let report = run(
            Cluster::uniform(1, 4, 0),
            TetriSchedConfig::full(16),
            jobs(),
        );
        assert_eq!(
            report.metrics.accepted_slo_met, 0,
            "baseline TetriSched waits"
        );
        assert_eq!(report.metrics.preemptions, 0);

        let mut cfg = TetriSchedConfig::full(16);
        cfg.preemption = true;
        let report = run(Cluster::uniform(1, 4, 0), cfg, jobs());
        assert!(report.metrics.preemptions >= 1);
        assert_eq!(report.metrics.accepted_slo_met, 1, "{:?}", report.outcomes);
        // The preempted BE job restarts and still completes.
        assert_eq!(report.metrics.be_completed, 1);
    }

    #[test]
    fn heuristic_backend_schedules_comparably() {
        let jobs = || {
            vec![
                job(0, 0, JobType::Gpu, 2, 30, 2.0, Some(200)),
                job(1, 0, JobType::Mpi, 3, 30, 2.0, Some(200)),
                job(2, 0, JobType::Unconstrained, 2, 30, 1.0, None),
            ]
        };
        let mut cfg = TetriSchedConfig::full(16);
        cfg.solver_heuristic = true;
        let report = run(Cluster::uniform(4, 4, 1), cfg, jobs());
        // All jobs complete; the heterogeneous SLO jobs land preferred.
        assert_eq!(report.metrics.accepted_slo_met, 2);
        assert_eq!(report.metrics.be_completed, 1);
        assert_eq!(
            report.outcomes[&JobId(0)],
            JobOutcome::Completed {
                at: 30,
                preferred: true
            }
        );
    }

    #[test]
    fn chaos_solver_failure_degrades_single_cycle_to_greedy() {
        // Force the first global MILP solve to fail: that cycle (and only
        // that cycle) must degrade to the greedy placer, the work must
        // still be placed, and the fallback must be counted.
        let mut cfg = TetriSchedConfig::full(16);
        cfg.chaos_global_solve_failures = vec![1];
        let report = run(
            Cluster::uniform(1, 4, 0),
            cfg,
            vec![
                job(0, 0, JobType::Unconstrained, 2, 20, 1.0, Some(100)),
                job(1, 0, JobType::Unconstrained, 2, 20, 1.0, None),
            ],
        );
        assert_eq!(report.metrics.solver_fallbacks, 1);
        assert_eq!(report.metrics.degraded_cycles, 1);
        assert_eq!(report.metrics.solver_errors, 1);
        // The degraded cycle still scheduled everything: both jobs finish
        // as if the failure never happened (greedy places them the same).
        assert_eq!(report.metrics.accepted_slo_met, 1);
        assert_eq!(report.metrics.be_completed, 1);
        assert!(report
            .trace
            .events()
            .iter()
            .any(|e| matches!(e, tetrisched_sim::TraceEvent::CycleDegraded { at: 0, .. })));
    }

    #[test]
    fn chaos_failure_of_later_solve_only_degrades_that_cycle() {
        // Jobs arriving over several cycles; failing solve #2 must not
        // affect cycle 1 or cycles after 2.
        let mut cfg = TetriSchedConfig::full(16);
        cfg.chaos_global_solve_failures = vec![2];
        let report = run(
            Cluster::uniform(1, 4, 0),
            cfg,
            vec![
                job(0, 0, JobType::Unconstrained, 4, 10, 1.0, None),
                job(1, 12, JobType::Unconstrained, 4, 10, 1.0, None),
                job(2, 24, JobType::Unconstrained, 4, 10, 1.0, None),
            ],
        );
        assert_eq!(report.metrics.degraded_cycles, 1);
        assert_eq!(report.metrics.solver_fallbacks, 1);
        assert_eq!(report.metrics.be_completed, 3);
    }

    #[test]
    fn eviction_invalidates_warm_start_cache() {
        // A fault under a running TetriSched gang: on_evict must clear the
        // stale cached choice and the job must complete via its retry.
        use tetrisched_sim::{FaultPlan, FaultScope, FaultScript, RetryPolicy};
        let cluster = Cluster::uniform(1, 4, 0);
        let sim_cfg = SimConfig {
            cycle_period: 4,
            trace: true,
            strict_accounting: true,
            faults: FaultPlan::from_script(
                &cluster,
                &[FaultScript {
                    at: 10,
                    duration: 6,
                    scope: FaultScope::Node(tetrisched_cluster::NodeId(0)),
                }],
            ),
            retry: RetryPolicy {
                max_retries: 3,
                backoff_base: 4,
                backoff_cap: 16,
            },
            ..SimConfig::default()
        };
        let report = Simulator::new(
            cluster,
            TetriSched::new(TetriSchedConfig::full(16)),
            sim_cfg,
        )
        .run(vec![job(0, 0, JobType::Unconstrained, 4, 50, 1.0, None)]);
        assert_eq!(report.metrics.evictions, 1);
        assert_eq!(report.metrics.be_completed, 1);
        let done = report.outcomes[&JobId(0)].completion().unwrap();
        assert!(done > 50, "restart must lose progress (done at {done})");
    }

    #[test]
    fn lint_models_knob_is_clean_on_generated_work() {
        // With the on-cycle linter enabled, generator-emitted expressions
        // and compiler-emitted models must pass at Error severity: the run
        // behaves exactly as with the knob off and counts zero rejections.
        let jobs = || {
            vec![
                job(0, 0, JobType::Gpu, 2, 30, 2.0, Some(200)),
                job(1, 0, JobType::Mpi, 3, 30, 2.0, Some(200)),
                job(2, 0, JobType::Unconstrained, 2, 30, 1.0, None),
            ]
        };
        for cfg in [TetriSchedConfig::full(16), TetriSchedConfig::no_global(16)] {
            let lint_cfg = TetriSchedConfig {
                lint_models: true,
                ..cfg
            };
            let report = run(Cluster::uniform(4, 4, 1), lint_cfg, jobs());
            assert_eq!(report.metrics.lint_errors, 0);
            assert_eq!(report.metrics.lint_presolve_rejections, 0);
            assert_eq!(report.metrics.accepted_slo_met, 2);
            assert_eq!(report.metrics.be_completed, 1);
        }
    }

    #[test]
    fn certify_solves_knob_verifies_every_solve() {
        // With proof-carrying solves enabled, every MILP outcome across
        // the run must carry a verified certificate (primal + audit
        // replay) plus a validated STRL→MILP translation, with zero
        // failures — and scheduling behaves exactly as with the knob off.
        let jobs = || {
            vec![
                job(0, 0, JobType::Gpu, 2, 30, 2.0, Some(200)),
                job(1, 0, JobType::Mpi, 3, 30, 2.0, Some(200)),
                job(2, 0, JobType::Unconstrained, 2, 30, 1.0, None),
            ]
        };
        let heuristic = TetriSchedConfig {
            solver_heuristic: true,
            ..TetriSchedConfig::full(16)
        };
        for cfg in [
            TetriSchedConfig::full(16),
            TetriSchedConfig::no_global(16),
            heuristic,
        ] {
            let certify_cfg = TetriSchedConfig {
                certify_solves: true,
                ..cfg
            };
            let report = run(Cluster::uniform(4, 4, 1), certify_cfg, jobs());
            assert!(
                report.metrics.certificates_verified > 0,
                "certification must have run"
            );
            assert_eq!(report.metrics.certificate_failures, 0);
            assert_eq!(report.metrics.accepted_slo_met, 2);
            assert_eq!(report.metrics.be_completed, 1);
        }
    }

    #[test]
    fn certification_off_reports_no_certificates() {
        let report = run(
            Cluster::uniform(1, 4, 0),
            TetriSchedConfig::full(16),
            vec![job(0, 0, JobType::Unconstrained, 2, 20, 1.0, None)],
        );
        assert_eq!(report.metrics.certificates_verified, 0);
        assert_eq!(report.metrics.certificate_failures, 0);
    }

    #[test]
    fn ladder_demotes_under_chaos_and_recovers() {
        // The ladder replaces the binary cliff: a chaos-failed global
        // solve degrades that one cycle to greedy *and* votes the
        // governor down one rung (reduced horizon, not straight to
        // greedy). Idle under-budget cycles then promote back to Full.
        use crate::governor::GovernorConfig;
        let mut cfg = TetriSchedConfig::full(16);
        cfg.chaos_global_solve_failures = vec![1];
        cfg.governor = GovernorConfig {
            work_budget: 1_000_000,
            promote_streak: 2,
            hysteresis_cycles: 2,
            ..GovernorConfig::defaults()
        };
        let report = run(
            Cluster::uniform(1, 4, 0),
            cfg,
            vec![
                job(0, 0, JobType::Unconstrained, 4, 10, 1.0, None),
                job(1, 24, JobType::Unconstrained, 4, 10, 1.0, None),
                job(2, 48, JobType::Unconstrained, 4, 10, 1.0, None),
            ],
        );
        assert_eq!(report.metrics.be_completed, 3);
        assert_eq!(report.metrics.degraded_cycles, 1, "only the chaos cycle");
        assert_eq!(
            report.metrics.ladder_rung, 1,
            "demotion stops at reduced horizon, not greedy"
        );
        // The rung trajectory is visible in the trace: down to 1, back to 0.
        let rungs: Vec<u8> = report
            .trace
            .events()
            .iter()
            .filter_map(|e| match e {
                tetrisched_sim::TraceEvent::LadderRung { rung, .. } => Some(*rung),
                _ => None,
            })
            .collect();
        assert_eq!(rungs, vec![1, 0], "engage then recover");
    }

    #[test]
    fn ladder_descends_to_greedy_floor_under_zero_budget() {
        // A zero work budget makes every non-idle cycle over budget: the
        // ladder must walk down one rung at a time — full, reduced
        // horizon, anytime, greedy — with every non-greedy solve still
        // carrying a verified certificate, and no work lost on the way.
        use crate::governor::GovernorConfig;
        let mut cfg = TetriSchedConfig::full(16);
        cfg.certify_solves = true;
        cfg.governor = GovernorConfig {
            work_budget: 0,
            promote_streak: 100, // never recover in this test
            hysteresis_cycles: 0,
            ..GovernorConfig::defaults()
        };
        let report = run(
            Cluster::uniform(1, 4, 0),
            cfg,
            vec![
                job(0, 0, JobType::Unconstrained, 4, 10, 1.0, None),
                job(1, 12, JobType::Unconstrained, 4, 10, 1.0, None),
                job(2, 24, JobType::Unconstrained, 4, 10, 1.0, None),
                job(3, 36, JobType::Unconstrained, 4, 10, 1.0, None),
            ],
        );
        assert_eq!(report.metrics.be_completed, 4, "{:?}", report.outcomes);
        assert_eq!(report.metrics.ladder_rung, 3, "reached the greedy floor");
        assert_eq!(report.metrics.certificate_failures, 0);
        assert!(report.metrics.certificates_verified > 0);
        // The greedy-floor cycles are degraded by design; the anytime and
        // reduced-horizon cycles are not.
        assert!(report.metrics.degraded_cycles >= 1);
    }

    #[test]
    fn ladder_binary_mode_reproduces_the_cliff() {
        // Binary mode under the same governor signal collapses the ladder
        // to {full, greedy}: the first demotion lands on the floor.
        use crate::governor::GovernorConfig;
        let mut cfg = TetriSchedConfig::full(16);
        cfg.governor = GovernorConfig {
            work_budget: 0,
            promote_streak: 100,
            hysteresis_cycles: 0,
            binary: true,
            ..GovernorConfig::defaults()
        };
        let report = run(
            Cluster::uniform(1, 4, 0),
            cfg,
            vec![
                job(0, 0, JobType::Unconstrained, 4, 10, 1.0, None),
                job(1, 12, JobType::Unconstrained, 4, 10, 1.0, None),
            ],
        );
        assert_eq!(report.metrics.be_completed, 2);
        assert_eq!(report.metrics.ladder_rung, 3);
        // No intermediate rung ever appears in the trace.
        assert!(report.trace.events().iter().all(|e| !matches!(
            e,
            tetrisched_sim::TraceEvent::LadderRung { rung: 1 | 2, .. }
        )));
    }

    #[test]
    fn batching_cap_defers_excess_jobs() {
        let mut config = TetriSchedConfig::full(16);
        config.max_batch = 1;
        let report = run(
            Cluster::uniform(1, 4, 0),
            config,
            vec![
                job(0, 0, JobType::Unconstrained, 1, 10, 1.0, None),
                job(1, 0, JobType::Unconstrained, 1, 10, 1.0, None),
            ],
        );
        // Both finish; the second just waits an extra cycle.
        assert_eq!(report.metrics.be_completed, 2);
    }
}
