//! Vendored, offline subset of the `rand` crate API.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the handful of `rand` features this workspace uses are implemented here
//! behind the same paths and trait names (`Rng`, `RngExt`, `SeedableRng`,
//! `rngs::StdRng`, `seq::SliceRandom`). Runs are bit-reproducible under a
//! fixed seed, which is all the workloads and tests rely on; the stream is
//! *not* the upstream ChaCha stream, so absolute sampled values differ from
//! a crates.io build. The generator is xoshiro256++, seeded via SplitMix64.

/// A source of random `u64`s.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value of any [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a uniform value in `[0, bound)` without noticeable bias.
    fn random_below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            return 0;
        }
        // Rejection sampling on the top bits.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (deterministic, fast, good statistical quality).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_below(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.random::<u64>() == b.random::<u64>());
        assert_eq!(same.count(), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.random_below(bound) < bound);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And deterministic under the seed.
        let mut w: Vec<u32> = (0..50).collect();
        w.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(v, w);
    }
}
