//! Discrete-event cluster simulator.
//!
//! The paper evaluates TetriSched on real 256- and 80-node clusters; this
//! crate is the simulation substitute. It reproduces everything the
//! evaluation metrics depend on:
//!
//! - gang job execution with **placement-dependent runtimes** (a GPU job
//!   slows down off GPU nodes; an MPI job slows down when its gang spans
//!   racks — paper Sec. 6.2.1),
//! - **runtime mis-estimation**: jobs carry a true base runtime and an
//!   estimate-error knob, and schedulers only ever see the estimate
//!   (Sec. 6.3),
//! - Rayon **reservation admission** at submission time, classifying SLO
//!   jobs into accepted / without-reservation (Sec. 6.2.2),
//! - **preemption** with lost work, and scheduler-driven estimate revision,
//! - the paper's four success metrics plus cycle/solver latency samples
//!   (Sec. 6.3, Fig. 12).
//!
//! Schedulers plug in through the [`Scheduler`] trait; both the TetriSched
//! core and the YARN CapacityScheduler baseline implement it.

pub mod engine;
pub mod event;
pub mod fault;
pub mod gantt;
pub mod job;
pub mod metrics;
pub mod scheduler;
pub mod straggler;
pub mod trace;

pub use engine::{SimConfig, SimReport, Simulator};
pub use fault::{
    FaultConfig, FaultEvent, FaultPlan, FaultScope, FaultScript, PerfFaultConfig, PerfFaultKind,
    PerfFaultPlan, PerfFaultScript, PerfFaultWindow, RetryPolicy,
};
pub use job::{JobId, JobOutcome, JobSpec, JobType};
pub use metrics::{LatencyStats, Metrics};
pub use scheduler::{
    CycleContext, CycleDecisions, CycleError, Launch, PendingJob, RunningJob, Scheduler,
};
pub use straggler::{detect_stragglers, StragglerConfig};
pub use trace::{TraceEvent, TraceLog, DEFAULT_TRACE_CAPACITY};
// Re-exported so engine embedders can configure and read telemetry without
// naming the telemetry crate directly.
pub use tetrisched_telemetry::{
    HistogramSketch, SpanGuard, SpanRecord, Telemetry, TelemetryConfig, TelemetrySnapshot,
    TimeDomain,
};

/// Simulated wall-clock time in seconds (re-exported convention).
pub type Time = tetrisched_cluster::Time;
