//! Deterministic fault injection: node failure/repair plans.
//!
//! The paper's evaluation assumes a static, healthy cluster; real deployments
//! see node churn. This module produces a [`FaultPlan`] — a fully
//! pre-computed, seeded sequence of node down/up transitions — that the
//! simulator replays as [`EventKind::NodeDown`](crate::event::EventKind) /
//! `NodeUp` events. Pre-computing the plan (rather than sampling online)
//! keeps runs bit-for-bit reproducible regardless of how the engine
//! interleaves other events, and lets tests assert on the exact transition
//! sequence.
//!
//! Two sources compose:
//!
//! - **Stochastic churn**: per-node alternating up/down renewal process with
//!   exponentially distributed time-between-failures (MTBF) and
//!   time-to-repair (MTTR), seeded; and
//! - **Scripted outages**: explicit windows taking down a node, a whole
//!   rack, or an arbitrary node set at a fixed time — the correlated-failure
//!   cases (top-of-rack switch loss) stochastic churn cannot express.
//!
//! The module is dependency-free: it carries its own splitmix64 generator so
//! the sim crate's non-test builds stay free of a `rand` dependency.

use tetrisched_cluster::{Cluster, NodeId, RackId};

use crate::Time;

/// One node state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the transition fires.
    pub at: Time,
    /// The node changing state.
    pub node: NodeId,
    /// `true` for repair (node up), `false` for failure (node down).
    pub up: bool,
}

/// Parameters for stochastic per-node churn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// RNG seed; equal seeds yield identical plans.
    pub seed: u64,
    /// Mean time between failures per node, in seconds.
    pub mtbf: f64,
    /// Mean time to repair, in seconds.
    pub mttr: f64,
    /// Transitions are generated in `[0, horizon)`.
    pub horizon: Time,
}

/// Which nodes a scripted outage takes down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultScope {
    /// A single node.
    Node(NodeId),
    /// Every node in a rack (correlated failure, e.g. ToR switch loss).
    Rack(RackId),
    /// An explicit node list.
    Nodes(Vec<NodeId>),
}

/// One scripted outage window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultScript {
    /// Outage start.
    pub at: Time,
    /// Outage length; the repair fires at `at + duration`. A zero duration
    /// is dropped (it would be a no-op: `NodeUp` sorts before `NodeDown` at
    /// equal times).
    pub duration: Time,
    /// Affected nodes.
    pub scope: FaultScope,
}

/// A pre-computed, deterministic sequence of node transitions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a perfectly healthy cluster.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Samples stochastic churn for every node of a `num_nodes` cluster.
    ///
    /// Each node runs an independent renewal process — up for
    /// `Exp(1/mtbf)`, down for `max(1, Exp(1/mttr))` — with its own RNG
    /// stream derived from `config.seed` and the node id, so the plan for
    /// node `k` does not depend on how many other nodes exist.
    pub fn generate(num_nodes: usize, config: &FaultConfig) -> Self {
        let mut events = Vec::new();
        for ix in 0..num_nodes {
            let node = NodeId(ix as u32);
            let mut rng = SplitMix64::new(config.seed ^ splitmix_scramble(ix as u64 + 1));
            let mut t = rng.sample_exp(config.mtbf);
            while t < config.horizon as f64 {
                let down_at = t as Time;
                let repair_at = down_at + (rng.sample_exp(config.mttr) as Time).max(1);
                events.push(FaultEvent {
                    at: down_at,
                    node,
                    up: false,
                });
                if repair_at < config.horizon {
                    events.push(FaultEvent {
                        at: repair_at,
                        node,
                        up: true,
                    });
                }
                t = repair_at as f64 + rng.sample_exp(config.mtbf);
            }
        }
        let mut plan = FaultPlan { events };
        plan.normalize();
        plan
    }

    /// Expands scripted outage windows against a concrete cluster topology.
    pub fn from_script(cluster: &Cluster, scripts: &[FaultScript]) -> Self {
        let mut events = Vec::new();
        for s in scripts {
            if s.duration == 0 {
                continue;
            }
            let nodes: Vec<NodeId> = match &s.scope {
                FaultScope::Node(n) => vec![*n],
                FaultScope::Rack(r) => cluster.rack_nodes(*r).iter().collect(),
                FaultScope::Nodes(ns) => ns.clone(),
            };
            for node in nodes {
                events.push(FaultEvent {
                    at: s.at,
                    node,
                    up: false,
                });
                events.push(FaultEvent {
                    at: s.at + s.duration,
                    node,
                    up: true,
                });
            }
        }
        let mut plan = FaultPlan { events };
        plan.normalize();
        plan
    }

    /// Merges another plan into this one. Overlapping outages of the same
    /// node are legal; the engine refcounts down transitions so a node
    /// only rejoins the free pool once every overlapping outage has ended.
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.events.extend(other.events);
        self.normalize();
        self
    }

    /// The transitions in deterministic firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan contains no transitions.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Highest node index the plan touches, if any (used to validate a plan
    /// against the cluster it is replayed on).
    pub fn max_node(&self) -> Option<NodeId> {
        self.events.iter().map(|e| e.node).max()
    }

    fn normalize(&mut self) {
        // Repairs sort before failures at equal (time, node) so a
        // back-to-back outage pair nets to a state change, matching the
        // event-queue priority order.
        self.events.sort_by_key(|e| (e.at, e.node, !e.up as u8));
    }
}

/// What a performance fault does to its node while the window is active.
///
/// Unlike the fail-stop transitions above, a performance fault leaves the
/// node *up* but degraded: work placed on it proceeds slower. Both kinds
/// reduce to a single deterministic runtime multiplier so the engine can
/// rebase in-flight progress exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerfFaultKind {
    /// Task runtimes on the node stretch by `factor` (slow disk, thermal
    /// throttling, noisy neighbor). Factors below 1 are clamped to 1.
    SlowNode { factor: f64 },
    /// The node's effective capacity shrinks to `fraction` of nominal
    /// (0 < fraction <= 1): work proceeds at `fraction` speed, i.e. a
    /// runtime multiplier of `1 / fraction`.
    DegradedCapacity { fraction: f64 },
}

impl PerfFaultKind {
    /// The runtime multiplier this fault imposes while active (>= 1).
    pub fn slow_factor(&self) -> f64 {
        match *self {
            PerfFaultKind::SlowNode { factor } => factor.max(1.0),
            PerfFaultKind::DegradedCapacity { fraction } => 1.0 / fraction.clamp(0.01, 1.0),
        }
    }
}

/// One performance-degradation window on one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfFaultWindow {
    /// Degradation start.
    pub start: Time,
    /// Degradation end (exclusive); the node recovers at `end`.
    pub end: Time,
    /// The affected node.
    pub node: NodeId,
    /// What the fault does while active.
    pub kind: PerfFaultKind,
    /// Whether the window is announced in advance (scripted maintenance):
    /// announced windows are registered in the ledger's [`NodeHealth`]
    /// before the run starts so plan-ahead can schedule around them.
    /// Stochastic degradation is unannounced — the scheduler only sees its
    /// effects.
    ///
    /// [`NodeHealth`]: tetrisched_cluster::NodeHealth
    pub announced: bool,
}

/// Parameters for stochastic per-node performance degradation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfFaultConfig {
    /// RNG seed; equal seeds yield identical plans. The stream is salted
    /// differently from [`FaultConfig`] so perf and fail-stop plans built
    /// from the same seed do not correlate.
    pub seed: u64,
    /// Mean time between degradation windows per node, in seconds.
    pub mtbf: f64,
    /// Mean window length, in seconds.
    pub duration: f64,
    /// Sampled slowdown factors are uniform in `[factor_min, factor_max]`.
    pub factor_min: f64,
    pub factor_max: f64,
    /// Windows are generated in `[0, horizon)`.
    pub horizon: Time,
}

/// One scripted degradation window (performance analogue of
/// [`FaultScript`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfFaultScript {
    /// Window start.
    pub at: Time,
    /// Window length; the node recovers at `at + duration`. Zero-length
    /// windows are dropped.
    pub duration: Time,
    /// Affected nodes.
    pub scope: FaultScope,
    /// What the fault does while active.
    pub kind: PerfFaultKind,
    /// Whether plan-ahead is told about the window in advance (maintenance
    /// announcements); see [`PerfFaultWindow::announced`].
    pub announced: bool,
}

/// A pre-computed, deterministic set of performance-degradation windows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfFaultPlan {
    windows: Vec<PerfFaultWindow>,
}

/// Salt mixed into the per-node stream key so a perf plan and a fail-stop
/// plan generated from the same seed stay independent.
const PERF_STREAM_SALT: u64 = 0x05ca_1ab1_e0dd_ba11;

impl PerfFaultPlan {
    /// The empty plan: every node at full speed.
    pub fn none() -> Self {
        PerfFaultPlan::default()
    }

    /// Samples stochastic slow-node windows for every node of a
    /// `num_nodes` cluster. Each node runs an independent renewal process
    /// (healthy for `Exp(mtbf)`, degraded for `max(1, Exp(duration))`)
    /// with its own RNG stream derived from the seed and node id, so node
    /// `k`'s windows do not depend on cluster size.
    pub fn generate(num_nodes: usize, config: &PerfFaultConfig) -> Self {
        let mut windows = Vec::new();
        for ix in 0..num_nodes {
            let node = NodeId(ix as u32);
            let mut rng =
                SplitMix64::new(config.seed ^ splitmix_scramble(ix as u64 + 1) ^ PERF_STREAM_SALT);
            let mut t = rng.sample_exp(config.mtbf);
            while t < config.horizon as f64 {
                let start = t as Time;
                let end = start + (rng.sample_exp(config.duration) as Time).max(1);
                let unit = rng.next_unit();
                let factor =
                    config.factor_min + (config.factor_max - config.factor_min) * (1.0 - unit);
                windows.push(PerfFaultWindow {
                    start,
                    end: end.min(config.horizon),
                    node,
                    kind: PerfFaultKind::SlowNode { factor },
                    announced: false,
                });
                t = end as f64 + rng.sample_exp(config.mtbf);
            }
        }
        let mut plan = PerfFaultPlan { windows };
        plan.normalize();
        plan
    }

    /// Expands scripted degradation windows against a cluster topology.
    pub fn from_script(cluster: &Cluster, scripts: &[PerfFaultScript]) -> Self {
        let mut windows = Vec::new();
        for s in scripts {
            if s.duration == 0 {
                continue;
            }
            let nodes: Vec<NodeId> = match &s.scope {
                FaultScope::Node(n) => vec![*n],
                FaultScope::Rack(r) => cluster.rack_nodes(*r).iter().collect(),
                FaultScope::Nodes(ns) => ns.clone(),
            };
            for node in nodes {
                windows.push(PerfFaultWindow {
                    start: s.at,
                    end: s.at + s.duration,
                    node,
                    kind: s.kind,
                    announced: s.announced,
                });
            }
        }
        let mut plan = PerfFaultPlan { windows };
        plan.normalize();
        plan
    }

    /// An announced maintenance window: the nodes run at `fraction`
    /// capacity during `[at, at + duration)` and plan-ahead is told in
    /// advance (the window lands in the ledger's `NodeHealth`).
    pub fn maintenance(cluster: &Cluster, at: Time, duration: Time, scope: FaultScope) -> Self {
        PerfFaultPlan::from_script(
            cluster,
            &[PerfFaultScript {
                at,
                duration,
                scope,
                kind: PerfFaultKind::DegradedCapacity { fraction: 0.25 },
                announced: true,
            }],
        )
    }

    /// Merges another plan into this one. Overlapping windows on the same
    /// node are legal; the engine applies the *maximum* active slowdown.
    pub fn merge(mut self, other: PerfFaultPlan) -> Self {
        self.windows.extend(other.windows);
        self.normalize();
        self
    }

    /// The windows in deterministic order.
    pub fn windows(&self) -> &[PerfFaultWindow] {
        &self.windows
    }

    /// Whether the plan contains no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Highest node index the plan touches, if any.
    pub fn max_node(&self) -> Option<NodeId> {
        self.windows.iter().map(|w| w.node).max()
    }

    fn normalize(&mut self) {
        self.windows.retain(|w| w.end > w.start);
        self.windows.sort_by_key(|w| (w.start, w.node, w.end));
    }
}

/// Capped exponential backoff for evicted jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Evictions a job may survive before it is abandoned. The first
    /// eviction consumes retry 1; a job is abandoned when it would need
    /// retry `max_retries + 1`.
    pub max_retries: u32,
    /// Delay before the first retry, in seconds.
    pub backoff_base: Time,
    /// Upper bound on any retry delay, in seconds.
    pub backoff_cap: Time,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base: 10,
            backoff_cap: 300,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `attempt` (1-based): `base * 2^(attempt-1)`
    /// capped at `backoff_cap`, saturating on overflow.
    pub fn delay(&self, attempt: u32) -> Time {
        let shifted = self
            .backoff_base
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(Time::MAX);
        shifted.min(self.backoff_cap).max(1)
    }
}

/// splitmix64: tiny, high-quality, dependency-free PRNG (public domain
/// reference algorithm by Sebastiano Vigna).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

fn splitmix_scramble(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix_scramble(self.state.wrapping_sub(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform in (0, 1]: never zero, so `ln` below is finite.
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Exponential with the given mean (inverse-CDF sampling).
    fn sample_exp(&mut self, mean: f64) -> f64 {
        -mean * self.next_unit().ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            mtbf: 500.0,
            mttr: 60.0,
            horizon: 10_000,
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = FaultPlan::generate(16, &cfg(7));
        let b = FaultPlan::generate(16, &cfg(7));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn distinct_seeds_differ() {
        let a = FaultPlan::generate(16, &cfg(7));
        let b = FaultPlan::generate(16, &cfg(8));
        assert_ne!(a, b);
    }

    #[test]
    fn node_stream_independent_of_cluster_size() {
        // Node 3's transitions must be identical in an 8- and a 64-node
        // cluster: streams are keyed by node id, not sampled in sequence.
        let small = FaultPlan::generate(8, &cfg(3));
        let big = FaultPlan::generate(64, &cfg(3));
        let pick = |p: &FaultPlan| -> Vec<FaultEvent> {
            p.events()
                .iter()
                .copied()
                .filter(|e| e.node == NodeId(3))
                .collect()
        };
        assert_eq!(pick(&small), pick(&big));
    }

    #[test]
    fn transitions_alternate_per_node() {
        let plan = FaultPlan::generate(8, &cfg(11));
        for ix in 0..8u32 {
            let mut down = false;
            let mut last_at = 0;
            for e in plan.events().iter().filter(|e| e.node == NodeId(ix)) {
                assert_eq!(e.up, down, "node {ix} transition does not alternate");
                assert!(e.at >= last_at);
                down = !e.up;
                last_at = e.at;
            }
        }
    }

    #[test]
    fn events_sorted_and_within_horizon() {
        let plan = FaultPlan::generate(32, &cfg(5));
        let mut prev = 0;
        for e in plan.events() {
            assert!(e.at >= prev);
            assert!(e.at < 10_000);
            prev = e.at;
        }
    }

    #[test]
    fn script_expands_rack_scope() {
        let c = Cluster::uniform(2, 4, 0);
        let plan = FaultPlan::from_script(
            &c,
            &[FaultScript {
                at: 100,
                duration: 50,
                scope: FaultScope::Rack(RackId(1)),
            }],
        );
        // 4 nodes down at 100, 4 back up at 150.
        assert_eq!(plan.events().len(), 8);
        let downs: Vec<_> = plan.events().iter().filter(|e| !e.up).collect();
        assert_eq!(downs.len(), 4);
        assert!(downs.iter().all(|e| e.at == 100));
        assert!(downs.iter().all(|e| c.rack_of(e.node) == RackId(1)));
        assert_eq!(plan.max_node(), Some(NodeId(7)));
    }

    #[test]
    fn zero_duration_script_dropped() {
        let c = Cluster::uniform(1, 2, 0);
        let plan = FaultPlan::from_script(
            &c,
            &[FaultScript {
                at: 5,
                duration: 0,
                scope: FaultScope::Node(NodeId(0)),
            }],
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn merge_interleaves_sorted() {
        let c = Cluster::uniform(1, 4, 0);
        let scripted = FaultPlan::from_script(
            &c,
            &[FaultScript {
                at: 0,
                duration: 10,
                scope: FaultScope::Node(NodeId(2)),
            }],
        );
        let random = FaultPlan::generate(4, &cfg(9));
        let merged = random.clone().merge(scripted.clone());
        assert_eq!(
            merged.events().len(),
            random.events().len() + scripted.events().len()
        );
        let mut prev = 0;
        for e in merged.events() {
            assert!(e.at >= prev);
            prev = e.at;
        }
    }

    #[test]
    fn up_sorts_before_down_at_equal_time() {
        let c = Cluster::uniform(1, 1, 0);
        // Outage [5, 10) followed immediately by outage [10, 20): at t=10
        // the repair must come first so the second failure finds the node
        // up.
        let plan = FaultPlan::from_script(
            &c,
            &[
                FaultScript {
                    at: 5,
                    duration: 5,
                    scope: FaultScope::Node(NodeId(0)),
                },
                FaultScript {
                    at: 10,
                    duration: 10,
                    scope: FaultScope::Node(NodeId(0)),
                },
            ],
        );
        let at_10: Vec<_> = plan.events().iter().filter(|e| e.at == 10).collect();
        assert_eq!(at_10.len(), 2);
        assert!(at_10[0].up && !at_10[1].up);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_retries: 6,
            backoff_base: 10,
            backoff_cap: 100,
        };
        assert_eq!(p.delay(1), 10);
        assert_eq!(p.delay(2), 20);
        assert_eq!(p.delay(3), 40);
        assert_eq!(p.delay(4), 80);
        assert_eq!(p.delay(5), 100);
        assert_eq!(p.delay(200), 100); // saturates, no overflow panic
    }

    #[test]
    fn backoff_never_zero() {
        let p = RetryPolicy {
            max_retries: 1,
            backoff_base: 0,
            backoff_cap: 0,
        };
        assert_eq!(p.delay(1), 1);
    }

    fn perf_cfg(seed: u64) -> PerfFaultConfig {
        PerfFaultConfig {
            seed,
            mtbf: 400.0,
            duration: 80.0,
            factor_min: 2.0,
            factor_max: 6.0,
            horizon: 10_000,
        }
    }

    #[test]
    fn perf_generate_is_deterministic() {
        let a = PerfFaultPlan::generate(16, &perf_cfg(7));
        let b = PerfFaultPlan::generate(16, &perf_cfg(7));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn perf_plan_independent_of_fail_stop_plan() {
        // Same seed must not produce correlated timelines: the perf stream
        // is salted. (If the salts matched, node 0's first perf window and
        // first outage would start at the same instant.)
        let perf = PerfFaultPlan::generate(8, &perf_cfg(7));
        let stop = FaultPlan::generate(8, &cfg(7));
        let first_perf = perf.windows().iter().find(|w| w.node == NodeId(0));
        let first_stop = stop.events().iter().find(|e| e.node == NodeId(0));
        if let (Some(w), Some(e)) = (first_perf, first_stop) {
            assert_ne!(w.start, e.at);
        }
    }

    #[test]
    fn perf_windows_sorted_sane_and_within_horizon() {
        let plan = PerfFaultPlan::generate(32, &perf_cfg(5));
        let mut prev = 0;
        for w in plan.windows() {
            assert!(w.start >= prev);
            assert!(w.end > w.start);
            assert!(w.end <= 10_000);
            assert!(w.kind.slow_factor() >= 2.0 && w.kind.slow_factor() <= 6.0);
            prev = w.start;
        }
    }

    #[test]
    fn perf_stream_independent_of_cluster_size() {
        let small = PerfFaultPlan::generate(8, &perf_cfg(3));
        let big = PerfFaultPlan::generate(64, &perf_cfg(3));
        let pick = |p: &PerfFaultPlan| -> Vec<PerfFaultWindow> {
            p.windows()
                .iter()
                .copied()
                .filter(|w| w.node == NodeId(3))
                .collect()
        };
        assert_eq!(pick(&small), pick(&big));
    }

    #[test]
    fn perf_script_expands_rack_and_keeps_announcement() {
        let c = Cluster::uniform(2, 4, 0);
        let plan = PerfFaultPlan::from_script(
            &c,
            &[PerfFaultScript {
                at: 100,
                duration: 50,
                scope: FaultScope::Rack(RackId(0)),
                kind: PerfFaultKind::SlowNode { factor: 4.0 },
                announced: true,
            }],
        );
        assert_eq!(plan.windows().len(), 4);
        assert!(plan.windows().iter().all(|w| w.announced));
        assert!(plan
            .windows()
            .iter()
            .all(|w| w.start == 100 && w.end == 150));
    }

    #[test]
    fn perf_zero_duration_script_dropped() {
        let c = Cluster::uniform(1, 2, 0);
        let plan = PerfFaultPlan::from_script(
            &c,
            &[PerfFaultScript {
                at: 5,
                duration: 0,
                scope: FaultScope::Node(NodeId(0)),
                kind: PerfFaultKind::SlowNode { factor: 2.0 },
                announced: false,
            }],
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn slow_factor_clamps() {
        assert_eq!(PerfFaultKind::SlowNode { factor: 0.5 }.slow_factor(), 1.0);
        assert_eq!(PerfFaultKind::SlowNode { factor: 3.0 }.slow_factor(), 3.0);
        assert_eq!(
            PerfFaultKind::DegradedCapacity { fraction: 0.5 }.slow_factor(),
            2.0
        );
        // A zero fraction clamps instead of dividing by zero.
        assert!(PerfFaultKind::DegradedCapacity { fraction: 0.0 }
            .slow_factor()
            .is_finite());
    }

    #[test]
    fn maintenance_is_announced_capacity_window() {
        let c = Cluster::uniform(1, 4, 0);
        let plan = PerfFaultPlan::maintenance(&c, 200, 100, FaultScope::Node(NodeId(1)));
        assert_eq!(plan.windows().len(), 1);
        let w = plan.windows()[0];
        assert!(w.announced);
        assert!(matches!(w.kind, PerfFaultKind::DegradedCapacity { .. }));
        assert_eq!((w.start, w.end), (200, 300));
    }
}
