//! The scheduler plug-in interface.

use std::time::Duration;

use tetrisched_cluster::{Cluster, Ledger, NodeId};
use tetrisched_reservation::Reservation;
use tetrisched_strl::JobClass;
use tetrisched_telemetry::Telemetry;

use crate::job::{JobId, JobSpec};
use crate::Time;

/// A pending job as presented to a scheduler at cycle time.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// The job's static spec (schedulers must only consult estimates).
    pub spec: JobSpec,
    /// Value class assigned at admission (paper Sec. 6.2.2).
    pub class: JobClass,
    /// The accepted reservation, when there is one.
    pub reservation: Option<Reservation>,
    /// How many times this job has been preempted and requeued.
    pub preemptions: u32,
    /// Fair-share objective weight from the tenancy layer; exactly `1.0`
    /// when fair-share is disabled (the closed-loop default), so the STRL
    /// objective is unchanged byte-for-byte outside service mode.
    pub weight: f64,
}

/// A running job as presented to a scheduler at cycle time.
#[derive(Debug, Clone)]
pub struct RunningJob {
    /// Job identity.
    pub id: JobId,
    /// Value class.
    pub class: JobClass,
    /// When the current run started.
    pub started: Time,
    /// Nodes held by the gang.
    pub nodes: Vec<NodeId>,
    /// The scheduler-visible expected completion time (estimate-derived;
    /// revisable via [`CycleDecisions::revised_ends`]).
    pub expected_end: Time,
    /// Whether the run is on a preferred placement.
    pub preferred: bool,
    /// The job's deadline, if any.
    pub deadline: Option<Time>,
}

/// Everything a scheduler may observe during one cycle.
#[derive(Debug)]
pub struct CycleContext<'a> {
    /// Current simulated time.
    pub now: Time,
    /// Cluster topology.
    pub cluster: &'a Cluster,
    /// Current allocations and expected future availability.
    pub ledger: &'a Ledger,
    /// Jobs awaiting placement, in submission order.
    pub pending: &'a [PendingJob],
    /// Currently running jobs.
    pub running: &'a [RunningJob],
    /// The engine's telemetry registry. Schedulers open phase spans and
    /// bump counters through it; a disabled registry (the default) makes
    /// every call a no-op, so instrumentation is safe to leave in place.
    pub telemetry: &'a Telemetry,
}

/// A launch decision: start `job` on `nodes` now.
#[derive(Debug, Clone)]
pub struct Launch {
    /// Job to start.
    pub job: JobId,
    /// Concrete gang placement (length must equal the job's `k`).
    pub nodes: Vec<NodeId>,
    /// Scheduler's expected completion time, recorded in the ledger and
    /// used by future plan-ahead queries.
    pub expected_end: Time,
}

/// A non-fatal error a scheduler hit during one cycle.
///
/// Cycles never panic and never silently drop work: compile or solver
/// failures degrade the cycle (skip the job, or fall back to the greedy
/// placer) and are surfaced here so the engine can count and trace them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CycleError {
    /// STRL compilation of one job (or of the cycle aggregate when no
    /// culprit could be isolated) failed.
    Compile {
        /// The offending job, when it could be isolated.
        job: Option<JobId>,
        /// Underlying error rendering.
        detail: String,
    },
    /// The MILP solver returned an error.
    Solver {
        /// Underlying error rendering.
        detail: String,
    },
    /// The solver finished without a usable incumbent (infeasible,
    /// unbounded, or timed out with no feasible point).
    NoSolution {
        /// Solver status rendering.
        detail: String,
    },
    /// Static analysis rejected a generated STRL expression or compiled
    /// MILP model at Error severity before it reached the solver (the
    /// `lint_models` knob).
    Lint {
        /// The offending job, when the finding is per-job; `None` for the
        /// cycle's aggregate model.
        job: Option<JobId>,
        /// Rendered Error-severity diagnostics.
        detail: String,
    },
    /// A proof-carrying solve failed verification (the `certify_solves`
    /// knob): the solver's claimed outcome did not survive its own
    /// certificate check (`C001`–`C003`), or the decoded placement's STRL
    /// valuation disagreed with the MILP objective (`C004`).
    Certificate {
        /// The offending job for per-job solves; `None` for the cycle's
        /// global aggregate solve.
        job: Option<JobId>,
        /// Rendered certificate-failure diagnostics.
        detail: String,
    },
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CycleError::Compile {
                job: Some(j),
                detail,
            } => {
                write!(f, "compile failed for {j:?}: {detail}")
            }
            CycleError::Compile { job: None, detail } => {
                write!(f, "aggregate compile failed: {detail}")
            }
            CycleError::Solver { detail } => write!(f, "solver error: {detail}"),
            CycleError::NoSolution { detail } => write!(f, "no solution: {detail}"),
            CycleError::Lint {
                job: Some(j),
                detail,
            } => {
                write!(f, "lint rejected {j:?}: {detail}")
            }
            CycleError::Lint { job: None, detail } => {
                write!(f, "lint rejected aggregate model: {detail}")
            }
            CycleError::Certificate {
                job: Some(j),
                detail,
            } => {
                write!(f, "certificate failed for {j:?}: {detail}")
            }
            CycleError::Certificate { job: None, detail } => {
                write!(f, "certificate failed for global solve: {detail}")
            }
        }
    }
}

impl std::error::Error for CycleError {}

/// The scheduler's output for one cycle.
///
/// The engine applies preemptions first, then launches, then estimate
/// revisions, then abandons.
#[derive(Debug, Clone, Default)]
pub struct CycleDecisions {
    /// Gangs to start now.
    pub launches: Vec<Launch>,
    /// Running jobs to preempt; they lose all progress and return to the
    /// pending queue.
    pub preemptions: Vec<JobId>,
    /// Revised expected completion times for running jobs (estimate bumps
    /// when an under-estimate is observed, paper Sec. 7.1).
    pub revised_ends: Vec<(JobId, Time)>,
    /// Pending jobs the scheduler permanently gives up on (e.g. SLO jobs
    /// whose deadline can no longer be met).
    pub abandons: Vec<JobId>,
    /// Time spent inside the MILP solver this cycle (zero for schedulers
    /// without one); reported in Fig. 12-style latency metrics.
    pub solver_time: Duration,
    /// Non-fatal errors hit while producing these decisions.
    pub errors: Vec<CycleError>,
    /// Whether the cycle ran in a degraded mode: the primary placement
    /// path failed (solver error / no solution) and a fallback placer
    /// produced the decisions instead. The engine counts degraded cycles
    /// as solver fallbacks.
    pub degraded: bool,
    /// How many solves this cycle were settled by a presolve
    /// infeasibility certificate (lint bound propagation) without
    /// entering simplex.
    pub lint_presolve_rejections: usize,
    /// Solver and translation certificates verified this cycle (the
    /// `certify_solves` knob; zero when certification is off).
    pub certificates_verified: usize,
    /// Certificates that failed verification this cycle. Each failure is
    /// also surfaced as a [`CycleError::Certificate`].
    pub certificate_failures: usize,
    /// Solves this cycle whose warm start was accepted as the incumbent.
    pub warm_start_hits: usize,
    /// Solves this cycle that built a warm start the solver rejected (or
    /// had none to offer while warm-starting was on).
    pub warm_start_misses: usize,
    /// Presolve reductions (constraint rows dropped + variable bounds
    /// tightened) across this cycle's solves.
    pub presolve_reductions: usize,
    /// Degradation-ladder rung the cycle ran at (0 = full MILP; higher
    /// rungs trade solution quality for cycle budget). Schedulers without
    /// a ladder leave it 0. In the TetriSched core this is stamped by the
    /// ladder governor — never assigned directly (srclint L007).
    pub ladder_rung: u8,
    /// Solves this cycle that returned a budget-expired incumbent (with
    /// its best bound and certificate) from the anytime rung.
    pub anytime_incumbents: u64,
    /// Deterministic solver work spent this cycle, in work units
    /// (branch-and-bound nodes + simplex iterations across all solves).
    /// This — not wall-clock time — is the load signal the ladder
    /// governor consumes, so rung decisions replay identically under the
    /// same seed on any machine.
    pub solver_work_units: u64,
}

/// A pluggable cluster scheduler.
///
/// Implementations: the TetriSched core (all four configurations of
/// Table 2) and the Rayon/CapacityScheduler baseline.
pub trait Scheduler {
    /// Called when a job enters the system (after reservation admission).
    fn on_submit(&mut self, job: &PendingJob, now: Time) {
        let _ = (job, now);
    }

    /// Called when a running job completes.
    fn on_complete(&mut self, job: JobId, now: Time) {
        let _ = (job, now);
    }

    /// Called when the engine evicts a running job because a node under
    /// its gang failed. The job returns to the pending queue after a
    /// backoff (or is abandoned once its retry budget is spent); any
    /// cached per-job placement state should be invalidated.
    fn on_evict(&mut self, job: JobId, now: Time) {
        let _ = (job, now);
    }

    /// Called every scheduling cycle; returns the cycle's decisions.
    fn cycle(&mut self, ctx: &CycleContext<'_>) -> CycleDecisions;

    /// Human-readable name for reports.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial scheduler used by engine tests: FIFO onto free nodes.
    pub struct FifoScheduler;

    impl Scheduler for FifoScheduler {
        fn cycle(&mut self, ctx: &CycleContext<'_>) -> CycleDecisions {
            let mut decisions = CycleDecisions::default();
            let mut free: Vec<NodeId> = ctx.ledger.free_nodes().iter().collect();
            for p in ctx.pending {
                let k = p.spec.k as usize;
                if free.len() >= k {
                    let nodes: Vec<NodeId> = free.drain(..k).collect();
                    let preferred = p.spec.placement_preferred(ctx.cluster, &nodes);
                    decisions.launches.push(Launch {
                        job: p.spec.id,
                        nodes,
                        expected_end: ctx.now + p.spec.estimated_runtime_for(preferred),
                    });
                }
            }
            decisions
        }

        fn name(&self) -> &str {
            "fifo-test"
        }
    }

    #[test]
    fn default_hooks_are_noops() {
        // Compile-time check that default trait methods exist.
        let mut s = FifoScheduler;
        s.on_complete(JobId(0), 0);
        s.on_evict(JobId(0), 0);
    }

    #[test]
    fn cycle_error_display() {
        let e = CycleError::Compile {
            job: Some(JobId(3)),
            detail: "bad expr".into(),
        };
        assert!(e.to_string().contains("JobId(3)"));
        assert!(e.to_string().contains("bad expr"));
        let e = CycleError::Compile {
            job: None,
            detail: "x".into(),
        };
        assert!(e.to_string().contains("aggregate"));
        assert!(CycleError::Solver {
            detail: "io".into()
        }
        .to_string()
        .contains("solver error"));
        assert!(CycleError::NoSolution {
            detail: "infeasible".into()
        }
        .to_string()
        .contains("no solution"));
        let e = CycleError::Lint {
            job: Some(JobId(7)),
            detail: "error[S001] empty set".into(),
        };
        assert!(e.to_string().contains("JobId(7)"));
        assert!(e.to_string().contains("S001"));
        let e = CycleError::Lint {
            job: None,
            detail: "error[M004] crossed bounds".into(),
        };
        assert!(e.to_string().contains("aggregate model"));
        let e = CycleError::Certificate {
            job: Some(JobId(9)),
            detail: "error[C001] primal check failed".into(),
        };
        assert!(e.to_string().contains("JobId(9)"));
        assert!(e.to_string().contains("C001"));
        let e = CycleError::Certificate {
            job: None,
            detail: "error[C004] objective mismatch".into(),
        };
        assert!(e.to_string().contains("global solve"));
    }
}
