//! The scheduler plug-in interface.

use std::time::Duration;

use tetrisched_cluster::{Cluster, Ledger, NodeId};
use tetrisched_reservation::Reservation;
use tetrisched_strl::JobClass;

use crate::job::{JobId, JobSpec};
use crate::Time;

/// A pending job as presented to a scheduler at cycle time.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// The job's static spec (schedulers must only consult estimates).
    pub spec: JobSpec,
    /// Value class assigned at admission (paper Sec. 6.2.2).
    pub class: JobClass,
    /// The accepted reservation, when there is one.
    pub reservation: Option<Reservation>,
    /// How many times this job has been preempted and requeued.
    pub preemptions: u32,
}

/// A running job as presented to a scheduler at cycle time.
#[derive(Debug, Clone)]
pub struct RunningJob {
    /// Job identity.
    pub id: JobId,
    /// Value class.
    pub class: JobClass,
    /// When the current run started.
    pub started: Time,
    /// Nodes held by the gang.
    pub nodes: Vec<NodeId>,
    /// The scheduler-visible expected completion time (estimate-derived;
    /// revisable via [`CycleDecisions::revised_ends`]).
    pub expected_end: Time,
    /// Whether the run is on a preferred placement.
    pub preferred: bool,
    /// The job's deadline, if any.
    pub deadline: Option<Time>,
}

/// Everything a scheduler may observe during one cycle.
#[derive(Debug)]
pub struct CycleContext<'a> {
    /// Current simulated time.
    pub now: Time,
    /// Cluster topology.
    pub cluster: &'a Cluster,
    /// Current allocations and expected future availability.
    pub ledger: &'a Ledger,
    /// Jobs awaiting placement, in submission order.
    pub pending: &'a [PendingJob],
    /// Currently running jobs.
    pub running: &'a [RunningJob],
}

/// A launch decision: start `job` on `nodes` now.
#[derive(Debug, Clone)]
pub struct Launch {
    /// Job to start.
    pub job: JobId,
    /// Concrete gang placement (length must equal the job's `k`).
    pub nodes: Vec<NodeId>,
    /// Scheduler's expected completion time, recorded in the ledger and
    /// used by future plan-ahead queries.
    pub expected_end: Time,
}

/// The scheduler's output for one cycle.
///
/// The engine applies preemptions first, then launches, then estimate
/// revisions, then abandons.
#[derive(Debug, Clone, Default)]
pub struct CycleDecisions {
    /// Gangs to start now.
    pub launches: Vec<Launch>,
    /// Running jobs to preempt; they lose all progress and return to the
    /// pending queue.
    pub preemptions: Vec<JobId>,
    /// Revised expected completion times for running jobs (estimate bumps
    /// when an under-estimate is observed, paper Sec. 7.1).
    pub revised_ends: Vec<(JobId, Time)>,
    /// Pending jobs the scheduler permanently gives up on (e.g. SLO jobs
    /// whose deadline can no longer be met).
    pub abandons: Vec<JobId>,
    /// Time spent inside the MILP solver this cycle (zero for schedulers
    /// without one); reported in Fig. 12-style latency metrics.
    pub solver_time: Duration,
}

/// A pluggable cluster scheduler.
///
/// Implementations: the TetriSched core (all four configurations of
/// Table 2) and the Rayon/CapacityScheduler baseline.
pub trait Scheduler {
    /// Called when a job enters the system (after reservation admission).
    fn on_submit(&mut self, job: &PendingJob, now: Time) {
        let _ = (job, now);
    }

    /// Called when a running job completes.
    fn on_complete(&mut self, job: JobId, now: Time) {
        let _ = (job, now);
    }

    /// Called every scheduling cycle; returns the cycle's decisions.
    fn cycle(&mut self, ctx: &CycleContext<'_>) -> CycleDecisions;

    /// Human-readable name for reports.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial scheduler used by engine tests: FIFO onto free nodes.
    pub struct FifoScheduler;

    impl Scheduler for FifoScheduler {
        fn cycle(&mut self, ctx: &CycleContext<'_>) -> CycleDecisions {
            let mut decisions = CycleDecisions::default();
            let mut free: Vec<NodeId> = ctx.ledger.free_nodes().iter().collect();
            for p in ctx.pending {
                let k = p.spec.k as usize;
                if free.len() >= k {
                    let nodes: Vec<NodeId> = free.drain(..k).collect();
                    let preferred = p.spec.placement_preferred(ctx.cluster, &nodes);
                    decisions.launches.push(Launch {
                        job: p.spec.id,
                        nodes,
                        expected_end: ctx.now + p.spec.estimated_runtime_for(preferred),
                    });
                }
            }
            decisions
        }

        fn name(&self) -> &str {
            "fifo-test"
        }
    }

    #[test]
    fn default_hooks_are_noops() {
        // Compile-time check that default trait methods exist.
        let mut s = FifoScheduler;
        s.on_complete(JobId(0), 0);
    }
}
