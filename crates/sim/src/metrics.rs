//! Evaluation metrics (paper Sec. 6.3).
//!
//! Four success metrics drive every figure: accepted-SLO attainment, total
//! SLO attainment, attainment for SLO jobs without reservation, and mean
//! best-effort latency. Fig. 12 additionally reports scheduler cycle and
//! MILP solver latency distributions, which the engine samples in real wall
//! time around each cycle.

/// An accumulating sample set with summary statistics.
///
/// Quantile queries use a lazily maintained sorted cache: the first query
/// after a batch of pushes sorts once, and subsequent queries are O(1)
/// lookups — instead of the previous clone + O(n log n) sort *per call*.
/// The cache lives behind interior mutability so the read-only query
/// signatures are unchanged.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<f64>,
    /// Sorted copy of `samples`, rebuilt lazily when `dirty`.
    sorted: std::cell::RefCell<Vec<f64>>,
    /// Whether `sorted` is stale relative to `samples`.
    dirty: std::cell::Cell<bool>,
}

impl LatencyStats {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
        self.dirty.set(true);
    }

    /// Rebuilds the sorted cache if stale.
    fn ensure_sorted(&self) {
        if self.dirty.get() || self.sorted.borrow().len() != self.samples.len() {
            let mut sorted = self.sorted.borrow_mut();
            sorted.clear();
            sorted.extend_from_slice(&self.samples);
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.dirty.set(false);
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 for an empty set.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum sample, or 0 for an empty set.
    pub fn max(&self) -> f64 {
        self.samples.iter().cloned().fold(0.0, f64::max)
    }

    /// Quantile in `[0, 1]` by nearest-rank, or 0 for an empty set.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let sorted = self.sorted.borrow();
        let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    /// CDF points `(value, cumulative_fraction)` for plotting (Fig. 12(c)).
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let sorted = self.sorted.borrow();
        let n = sorted.len();
        sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Raw samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Aggregate simulation metrics.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Accepted SLO jobs observed / meeting their deadline.
    pub accepted_slo_total: usize,
    /// Accepted SLO jobs that completed by their deadline.
    pub accepted_slo_met: usize,
    /// SLO jobs without reservation observed.
    pub nores_slo_total: usize,
    /// SLO jobs without reservation that met their deadline.
    pub nores_slo_met: usize,
    /// Best-effort jobs observed.
    pub be_total: usize,
    /// Best-effort jobs that completed.
    pub be_completed: usize,
    /// Best-effort completion latency (completion - submission), seconds.
    pub be_latency: LatencyStats,
    /// Wall-clock scheduler cycle latency, seconds (Fig. 12(b)).
    pub cycle_latency: LatencyStats,
    /// Wall-clock MILP solver latency, seconds (Fig. 12(a)).
    pub solver_latency: LatencyStats,
    /// Node-seconds of busy time accumulated by completed/preempted runs.
    pub busy_node_seconds: u64,
    /// Node-seconds available over the simulated span.
    pub total_node_seconds: u64,
    /// Preemption count.
    pub preemptions: usize,
    /// Jobs abandoned by the scheduler.
    pub abandoned: usize,
    /// Jobs not terminal when the simulation ended.
    pub incomplete: usize,
    /// Gangs evicted because a node under them failed.
    pub evictions: usize,
    /// Eviction retries issued (re-queues after backoff).
    pub retries: usize,
    /// Jobs abandoned because their eviction retry budget ran out
    /// (disjoint from scheduler-initiated `abandoned`).
    pub abandoned_after_retries: usize,
    /// Cycles where the primary placement path failed and the scheduler
    /// fell back to a degraded placer.
    pub solver_fallbacks: usize,
    /// Cycles flagged degraded by the scheduler (currently equal to
    /// `solver_fallbacks`; kept separate so future degraded modes that do
    /// not involve a solver fallback stay countable).
    pub degraded_cycles: usize,
    /// STRL compile errors surfaced by cycles.
    pub compile_errors: usize,
    /// Solver errors / no-solution outcomes surfaced by cycles.
    pub solver_errors: usize,
    /// Error-severity lint rejections surfaced by cycles (the
    /// `lint_models` knob).
    pub lint_errors: usize,
    /// Solves settled by a presolve infeasibility certificate without
    /// entering simplex.
    pub lint_presolve_rejections: usize,
    /// Solver and translation certificates verified across all cycles
    /// (the `certify_solves` knob; zero when certification is off).
    pub certificates_verified: usize,
    /// Certificates that failed verification across all cycles.
    pub certificate_failures: usize,
    /// Node-seconds lost to down nodes over the simulated span.
    pub down_node_seconds: u64,
    /// Global solves whose warm start was accepted as the incumbent.
    pub warm_start_hits: usize,
    /// Global solves that built a warm start the solver did not use.
    pub warm_start_misses: usize,
    /// Presolve reductions (rows dropped + bounds tightened) across all
    /// solves.
    pub presolve_reductions: usize,
    /// Trace events evicted by the trace retention bound
    /// ([`crate::TraceLog::dropped`]).
    pub trace_events_dropped: u64,
    /// Jobs the service core handed to the scheduler (equals arrivals in
    /// closed-loop mode, where ingest is a pass-through).
    pub jobs_admitted: u64,
    /// Jobs the service core shed under overload (mailbox overflow plus
    /// queue-depth load shedding; zero in closed-loop mode).
    pub jobs_shed: u64,
    /// Cumulative job-cycles spent deferred in intake queues under
    /// backpressure (each admission cycle adds its leftover backlog).
    pub jobs_deferred: u64,
    /// Intake-shard mailbox overflows (a subset of `jobs_shed`).
    pub intake_overflows: u64,
    /// Distinct nodes that experienced at least one performance-fault
    /// window (slow node, degraded capacity, or maintenance) during the
    /// run.
    pub perf_faulted_nodes: u64,
    /// Straggler-detector flags raised across all cycles (a job can be
    /// flagged in more than one cycle).
    pub stragglers_detected: u64,
    /// Speculative migrations actually performed (bounded by the per-cycle
    /// and per-job migration caps, so at most `stragglers_detected`).
    pub speculative_migrations: u64,
    /// Highest degradation-ladder rung reached during the run (0 = every
    /// cycle ran the full MILP path; see `core`'s ladder governor for the
    /// rung encoding).
    pub ladder_rung: u64,
    /// Anytime solves that returned a budget-expired incumbent (with its
    /// bound and certificate) instead of a proven-optimal solution.
    pub anytime_incumbents: u64,
}

impl Metrics {
    /// Accepted-SLO attainment in percent (metric (a) of Sec. 6.3).
    pub fn accepted_slo_attainment(&self) -> f64 {
        pct(self.accepted_slo_met, self.accepted_slo_total)
    }

    /// Total SLO attainment in percent (metric (b)).
    pub fn total_slo_attainment(&self) -> f64 {
        pct(
            self.accepted_slo_met + self.nores_slo_met,
            self.accepted_slo_total + self.nores_slo_total,
        )
    }

    /// Attainment for SLO jobs without reservation in percent (metric (c)).
    pub fn nores_slo_attainment(&self) -> f64 {
        pct(self.nores_slo_met, self.nores_slo_total)
    }

    /// Mean best-effort latency in seconds (metric (d)).
    pub fn be_mean_latency(&self) -> f64 {
        self.be_latency.mean()
    }

    /// Cluster utilization over the simulated span, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_node_seconds == 0 {
            0.0
        } else {
            self.busy_node_seconds as f64 / self.total_node_seconds as f64
        }
    }

    /// Fraction of node-seconds the cluster was actually up, in `[0, 1]`
    /// (1.0 for a fault-free run).
    pub fn availability(&self) -> f64 {
        if self.total_node_seconds == 0 {
            1.0
        } else {
            1.0 - self.down_node_seconds as f64 / self.total_node_seconds as f64
        }
    }
}

fn pct(num: usize, den: usize) -> f64 {
    if den == 0 {
        100.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_summary() {
        let mut s = LatencyStats::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert_eq!(s.quantile(0.5), 3.0); // nearest rank of 1.5 -> index 2
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert!(s.cdf().is_empty());
    }

    /// Regression for the sorted-cache rewrite: quantiles and CDF must be
    /// identical to the reference clone-and-sort-per-call implementation,
    /// including when queries interleave with pushes.
    #[test]
    fn cached_quantiles_match_reference_implementation() {
        let reference_quantile = |samples: &[f64], q: f64| -> f64 {
            let mut sorted = samples.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
            sorted[rank]
        };
        let mut s = LatencyStats::new();
        let mut pushed = Vec::new();
        // Deterministic pseudo-random-ish stream, interleaving queries so
        // the cache is invalidated and rebuilt repeatedly.
        for i in 0..500u64 {
            let v = ((i * 2_654_435_761) % 1000) as f64 / 7.0;
            s.push(v);
            pushed.push(v);
            if i % 37 == 0 {
                for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    assert_eq!(s.quantile(q), reference_quantile(&pushed, q), "q={q} i={i}");
                }
            }
        }
        for q in [0.0, 0.1, 0.5, 0.95, 1.0] {
            assert_eq!(s.quantile(q), reference_quantile(&pushed, q));
        }
        // CDF agrees with the reference shape.
        let cdf = s.cdf();
        assert_eq!(cdf.len(), pushed.len());
        let mut sorted = pushed.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        for (i, (v, frac)) in cdf.iter().enumerate() {
            assert_eq!(*v, sorted[i]);
            assert!((frac - (i + 1) as f64 / pushed.len() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let mut s = LatencyStats::new();
        for v in [5.0, 1.0, 3.0] {
            s.push(v);
        }
        let cdf = s.cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0], (1.0, 1.0 / 3.0));
        assert_eq!(cdf[2], (5.0, 1.0));
    }

    #[test]
    fn attainment_percentages() {
        let m = Metrics {
            accepted_slo_total: 10,
            accepted_slo_met: 9,
            nores_slo_total: 5,
            nores_slo_met: 1,
            ..Default::default()
        };
        assert_eq!(m.accepted_slo_attainment(), 90.0);
        assert_eq!(m.nores_slo_attainment(), 20.0);
        assert!((m.total_slo_attainment() - 100.0 * 10.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn vacuous_attainment_is_full() {
        let m = Metrics::default();
        assert_eq!(m.accepted_slo_attainment(), 100.0);
        assert_eq!(m.utilization(), 0.0);
    }

    #[test]
    fn utilization_ratio() {
        let m = Metrics {
            busy_node_seconds: 50,
            total_node_seconds: 200,
            ..Default::default()
        };
        assert_eq!(m.utilization(), 0.25);
    }

    #[test]
    fn availability_ratio() {
        let m = Metrics {
            down_node_seconds: 40,
            total_node_seconds: 200,
            ..Default::default()
        };
        assert_eq!(m.availability(), 0.8);
        assert_eq!(Metrics::default().availability(), 1.0);
    }
}
