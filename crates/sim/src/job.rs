//! Job model: specs, placement-dependent runtimes, and outcomes.

use tetrisched_cluster::{Attr, Cluster, NodeId};

use crate::Time;

/// Identifier of a job, unique within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Placement-preference type (paper Sec. 6.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobType {
    /// No preference: any `k` servers are equally good.
    Unconstrained,
    /// Prefers every task on a GPU-labeled node; runs `slowdown` times
    /// slower otherwise (non-combinatorial soft constraint).
    Gpu,
    /// Prefers all tasks on one rack (any rack); runs `slowdown` times
    /// slower when the gang spans racks (combinatorial soft constraint).
    Mpi,
    /// Prefers every task on a *distinct* rack — the paper's Fig. 1
    /// "Availability" job (anti-affinity, expressed in STRL with `min`).
    /// The `slowdown` penalty models degraded service quality when
    /// replicas share a failure domain.
    Availability,
}

/// Static description of one job as submitted.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job identity.
    pub id: JobId,
    /// Submission time.
    pub submit: Time,
    /// Placement preference type.
    pub job_type: JobType,
    /// Gang width: number of nodes held simultaneously.
    pub k: u32,
    /// True runtime on a preferred placement, in seconds.
    pub base_runtime: u64,
    /// Runtime multiplier on a non-preferred placement (>= 1).
    pub slowdown: f64,
    /// Absolute completion deadline; `None` for pure best-effort jobs.
    pub deadline: Option<Time>,
    /// Relative runtime estimate error: the estimate visible to schedulers
    /// and the reservation system is `base_runtime * (1 + estimate_error)`.
    /// Positive is over-estimation (paper Sec. 6.3).
    pub estimate_error: f64,
}

impl JobSpec {
    /// The *estimated* runtime on a preferred placement — the only runtime
    /// figure schedulers may consult.
    pub fn estimated_runtime(&self) -> u64 {
        scaled(self.base_runtime, 1.0 + self.estimate_error)
    }

    /// The estimated runtime for a preferred or fallback placement.
    pub fn estimated_runtime_for(&self, preferred: bool) -> u64 {
        if preferred {
            self.estimated_runtime()
        } else {
            scaled(self.estimated_runtime(), self.slowdown)
        }
    }

    /// The *true* runtime for a placement (simulator internal).
    pub fn true_runtime_for(&self, preferred: bool) -> u64 {
        if preferred {
            self.base_runtime.max(1)
        } else {
            scaled(self.base_runtime, self.slowdown)
        }
    }

    /// Whether a concrete gang placement is "preferred" for this job type.
    pub fn placement_preferred(&self, cluster: &Cluster, nodes: &[NodeId]) -> bool {
        match self.job_type {
            JobType::Unconstrained => true,
            JobType::Gpu => {
                let gpu = Attr::gpu();
                nodes.iter().all(|&n| cluster.node(n).has_attr(&gpu))
            }
            JobType::Mpi => match nodes.first() {
                None => true,
                Some(&first) => {
                    let rack = cluster.rack_of(first);
                    nodes.iter().all(|&n| cluster.rack_of(n) == rack)
                }
            },
            JobType::Availability => {
                let racks: std::collections::HashSet<_> =
                    nodes.iter().map(|&n| cluster.rack_of(n)).collect();
                racks.len() == nodes.len()
            }
        }
    }

    /// Whether the job carries a deadline SLO.
    pub fn is_slo(&self) -> bool {
        self.deadline.is_some()
    }
}

fn scaled(base: u64, factor: f64) -> u64 {
    ((base as f64 * factor).round() as u64).max(1)
}

/// Job ids drive service-core shard routing and tenant assignment.
impl tetrisched_service::ServiceJob for JobSpec {
    fn service_id(&self) -> u64 {
        self.id.0
    }
}

/// Terminal outcome of a job in a finished simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Completed at the given time.
    Completed {
        /// Completion time.
        at: Time,
        /// Whether the final run was on a preferred placement.
        preferred: bool,
    },
    /// Abandoned by the scheduler (e.g. an SLO job that could no longer
    /// meet its deadline).
    Abandoned {
        /// When the scheduler gave up on it.
        at: Time,
    },
    /// Still pending or running when the simulation horizon was reached.
    Incomplete,
    /// Shed by the service core under overload before ever entering the
    /// scheduler (open-loop mode only).
    Shed {
        /// When the service shed it.
        at: Time,
    },
}

impl JobOutcome {
    /// Completion time, if the job completed.
    pub fn completion(&self) -> Option<Time> {
        match self {
            JobOutcome::Completed { at, .. } => Some(*at),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(job_type: JobType, err: f64, slowdown: f64) -> JobSpec {
        JobSpec {
            id: JobId(0),
            submit: 0,
            job_type,
            k: 2,
            base_runtime: 100,
            slowdown,
            deadline: Some(500),
            estimate_error: err,
        }
    }

    #[test]
    fn estimate_error_applies() {
        assert_eq!(
            spec(JobType::Unconstrained, 0.0, 1.5).estimated_runtime(),
            100
        );
        assert_eq!(
            spec(JobType::Unconstrained, 0.5, 1.5).estimated_runtime(),
            150
        );
        assert_eq!(
            spec(JobType::Unconstrained, -0.5, 1.5).estimated_runtime(),
            50
        );
        assert_eq!(
            spec(JobType::Unconstrained, -1.0, 1.5).estimated_runtime(),
            1
        );
    }

    #[test]
    fn slowdown_applies_to_fallback_only() {
        let s = spec(JobType::Gpu, 0.0, 1.5);
        assert_eq!(s.true_runtime_for(true), 100);
        assert_eq!(s.true_runtime_for(false), 150);
        assert_eq!(s.estimated_runtime_for(false), 150);
        // Error and slowdown compose.
        let s = spec(JobType::Gpu, 0.2, 1.5);
        assert_eq!(s.estimated_runtime_for(false), 180);
        assert_eq!(s.true_runtime_for(false), 150);
    }

    #[test]
    fn gpu_preference_checks_attributes() {
        let c = Cluster::fig1_toy(); // M0, M1 have GPUs
        let s = spec(JobType::Gpu, 0.0, 1.5);
        assert!(s.placement_preferred(&c, &[NodeId(0), NodeId(1)]));
        assert!(!s.placement_preferred(&c, &[NodeId(0), NodeId(2)]));
    }

    #[test]
    fn mpi_preference_checks_rack_locality() {
        let c = Cluster::fig1_toy(); // racks {M0,M1} and {M2,M3}
        let s = spec(JobType::Mpi, 0.0, 1.5);
        assert!(s.placement_preferred(&c, &[NodeId(2), NodeId(3)]));
        assert!(!s.placement_preferred(&c, &[NodeId(1), NodeId(2)]));
    }

    #[test]
    fn availability_preference_requires_distinct_racks() {
        let c = Cluster::fig1_toy(); // racks {M0,M1} and {M2,M3}
        let s = spec(JobType::Availability, 0.0, 1.5);
        assert!(s.placement_preferred(&c, &[NodeId(0), NodeId(2)]));
        assert!(s.placement_preferred(&c, &[NodeId(1), NodeId(3)]));
        assert!(!s.placement_preferred(&c, &[NodeId(0), NodeId(1)]));
        assert!(s.placement_preferred(&c, &[]));
    }

    #[test]
    fn unconstrained_always_preferred() {
        let c = Cluster::fig1_toy();
        let s = spec(JobType::Unconstrained, 0.0, 1.0);
        assert!(s.placement_preferred(&c, &[NodeId(1), NodeId(2)]));
    }

    #[test]
    fn outcome_completion_accessor() {
        assert_eq!(
            JobOutcome::Completed {
                at: 10,
                preferred: true
            }
            .completion(),
            Some(10)
        );
        assert_eq!(JobOutcome::Incomplete.completion(), None);
        assert_eq!(JobOutcome::Abandoned { at: 5 }.completion(), None);
    }
}
