//! Simulation event tracing, for debugging and experiment forensics.

use tetrisched_cluster::NodeId;
use tetrisched_strl::JobClass;

use crate::job::JobId;
use crate::Time;

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A job was submitted and classified.
    Submitted {
        /// Job identity.
        job: JobId,
        /// Assigned value class.
        class: JobClass,
        /// Event time.
        at: Time,
    },
    /// A gang was launched.
    Launched {
        /// Job identity.
        job: JobId,
        /// Placement.
        nodes: Vec<NodeId>,
        /// Whether the placement is preferred.
        preferred: bool,
        /// Event time.
        at: Time,
    },
    /// A job completed.
    Completed {
        /// Job identity.
        job: JobId,
        /// Whether the deadline (if any) was met.
        met_deadline: Option<bool>,
        /// Event time.
        at: Time,
    },
    /// A running job was preempted and requeued.
    Preempted {
        /// Job identity.
        job: JobId,
        /// Event time.
        at: Time,
    },
    /// The scheduler abandoned a pending job.
    Abandoned {
        /// Job identity.
        job: JobId,
        /// Event time.
        at: Time,
    },
    /// A node failed.
    NodeDown {
        /// Failed node.
        node: NodeId,
        /// Event time.
        at: Time,
    },
    /// A node was repaired.
    NodeUp {
        /// Repaired node.
        node: NodeId,
        /// Event time.
        at: Time,
    },
    /// A running job lost a node to a failure and was evicted.
    Evicted {
        /// Job identity.
        job: JobId,
        /// The failed node that triggered the eviction.
        node: NodeId,
        /// Retry number this eviction consumes (1-based).
        retry: u32,
        /// Event time.
        at: Time,
    },
    /// An evicted job's backoff expired; it rejoined the pending queue.
    Resubmitted {
        /// Job identity.
        job: JobId,
        /// Event time.
        at: Time,
    },
    /// An evicted job exhausted its retry budget and was abandoned.
    RetriesExhausted {
        /// Job identity.
        job: JobId,
        /// Event time.
        at: Time,
    },
    /// A scheduler cycle ran degraded (primary placement path failed and
    /// a fallback produced the decisions).
    CycleDegraded {
        /// Rendered cycle errors.
        errors: Vec<String>,
        /// Event time.
        at: Time,
    },
    /// The service core shed an arriving job under overload (open-loop
    /// mode only: mailbox overflow or queue-depth load shedding).
    Shed {
        /// Job identity.
        job: JobId,
        /// Event time.
        at: Time,
    },
    /// A performance-fault window began degrading a node (the node stays
    /// up but runs slower).
    PerfDegraded {
        /// Degraded node.
        node: NodeId,
        /// New runtime multiplier, in percent (400 = work takes 4x).
        factor_pct: u32,
        /// Event time.
        at: Time,
    },
    /// All performance-fault windows on a node ended; it runs at nominal
    /// speed again.
    PerfRecovered {
        /// Recovered node.
        node: NodeId,
        /// Event time.
        at: Time,
    },
    /// A running gang's completion was re-derived because the performance
    /// of one of its nodes changed mid-run; progress to date is preserved.
    GangRetimed {
        /// Job identity.
        job: JobId,
        /// New gang runtime multiplier, in percent.
        factor_pct: u32,
        /// Event time.
        at: Time,
    },
    /// The straggler defense speculatively migrated a running gang: its
    /// nodes were released and it rejoined the pending queue with its
    /// progress watermark intact.
    StragglerMigrated {
        /// Job identity.
        job: JobId,
        /// Progress watermark at migration, in percent of total work.
        watermark_pct: u32,
        /// Event time.
        at: Time,
    },
    /// The degradation-ladder governor moved the scheduler to a new rung
    /// (0 = full MILP ... highest = greedy).
    LadderRung {
        /// New rung.
        rung: u8,
        /// Event time.
        at: Time,
    },
}

impl TraceEvent {
    /// Event timestamp.
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Submitted { at, .. }
            | TraceEvent::Launched { at, .. }
            | TraceEvent::Completed { at, .. }
            | TraceEvent::Preempted { at, .. }
            | TraceEvent::Abandoned { at, .. }
            | TraceEvent::NodeDown { at, .. }
            | TraceEvent::NodeUp { at, .. }
            | TraceEvent::Evicted { at, .. }
            | TraceEvent::Resubmitted { at, .. }
            | TraceEvent::RetriesExhausted { at, .. }
            | TraceEvent::CycleDegraded { at, .. }
            | TraceEvent::Shed { at, .. }
            | TraceEvent::PerfDegraded { at, .. }
            | TraceEvent::PerfRecovered { at, .. }
            | TraceEvent::GangRetimed { at, .. }
            | TraceEvent::StragglerMigrated { at, .. }
            | TraceEvent::LadderRung { at, .. } => *at,
        }
    }

    /// The job the event concerns, when it concerns one.
    pub fn job(&self) -> Option<JobId> {
        match self {
            TraceEvent::Submitted { job, .. }
            | TraceEvent::Launched { job, .. }
            | TraceEvent::Completed { job, .. }
            | TraceEvent::Preempted { job, .. }
            | TraceEvent::Abandoned { job, .. }
            | TraceEvent::Evicted { job, .. }
            | TraceEvent::Resubmitted { job, .. }
            | TraceEvent::RetriesExhausted { job, .. }
            | TraceEvent::Shed { job, .. }
            | TraceEvent::GangRetimed { job, .. }
            | TraceEvent::StragglerMigrated { job, .. } => Some(*job),
            TraceEvent::NodeDown { .. }
            | TraceEvent::NodeUp { .. }
            | TraceEvent::CycleDegraded { .. }
            | TraceEvent::PerfDegraded { .. }
            | TraceEvent::PerfRecovered { .. }
            | TraceEvent::LadderRung { .. } => None,
        }
    }
}

/// Default retention bound for [`TraceLog`]: 64k events.
pub const DEFAULT_TRACE_CAPACITY: usize = 64 * 1024;

/// A bounded log of trace events; disabled by default in experiments.
///
/// Retention is ring-buffer-like: only the most recent `capacity` events
/// are kept, and older ones are counted in [`TraceLog::dropped`] instead
/// of growing memory linearly over long churn runs. Eviction is amortized
/// O(1): the backing vector is allowed to grow to `2 * capacity` before
/// the oldest half is drained in one move.
#[derive(Debug, Clone)]
pub struct TraceLog {
    enabled: bool,
    capacity: usize,
    events: Vec<TraceEvent>,
    recorded: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new(false)
    }
}

impl TraceLog {
    /// Creates a log with the default retention bound; when `enabled` is
    /// false, records are dropped.
    pub fn new(enabled: bool) -> Self {
        TraceLog::with_capacity(enabled, DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a log retaining at most `capacity` most-recent events.
    pub fn with_capacity(enabled: bool, capacity: usize) -> Self {
        TraceLog {
            enabled,
            capacity: capacity.max(1),
            events: Vec::new(),
            recorded: 0,
        }
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, e: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity * 2 {
            self.events.drain(..self.capacity);
        }
        self.events.push(e);
        self.recorded += 1;
    }

    /// The most recent events (at most `capacity` of them), in order.
    pub fn events(&self) -> &[TraceEvent] {
        let start = self.events.len().saturating_sub(self.capacity);
        &self.events[start..]
    }

    /// Total events ever recorded, including ones no longer retained.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted by the retention bound.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.events().len() as u64
    }

    /// Retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained events concerning one job, in order.
    pub fn for_job(&self, job: JobId) -> Vec<&TraceEvent> {
        self.events()
            .iter()
            .filter(|e| e.job() == Some(job))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_drops_events() {
        let mut log = TraceLog::new(false);
        log.record(TraceEvent::Abandoned {
            job: JobId(1),
            at: 5,
        });
        assert!(log.events().is_empty());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = TraceLog::new(true);
        log.record(TraceEvent::Submitted {
            job: JobId(1),
            class: JobClass::BestEffort,
            at: 0,
        });
        log.record(TraceEvent::Launched {
            job: JobId(1),
            nodes: vec![NodeId(0)],
            preferred: true,
            at: 4,
        });
        log.record(TraceEvent::Completed {
            job: JobId(1),
            met_deadline: None,
            at: 10,
        });
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.for_job(JobId(1)).len(), 3);
        assert_eq!(log.events()[1].at(), 4);
        assert_eq!(log.events()[2].job(), Some(JobId(1)));
    }

    #[test]
    fn fault_events_have_no_job() {
        let mut log = TraceLog::new(true);
        log.record(TraceEvent::NodeDown {
            node: NodeId(3),
            at: 7,
        });
        log.record(TraceEvent::Evicted {
            job: JobId(2),
            node: NodeId(3),
            retry: 1,
            at: 7,
        });
        log.record(TraceEvent::CycleDegraded {
            errors: vec!["solver error: boom".into()],
            at: 9,
        });
        assert_eq!(log.events()[0].job(), None);
        assert_eq!(log.events()[1].job(), Some(JobId(2)));
        assert_eq!(log.events()[2].at(), 9);
        assert_eq!(log.for_job(JobId(2)).len(), 1);
    }

    #[test]
    fn retention_bound_keeps_most_recent_and_counts_drops() {
        let mut log = TraceLog::with_capacity(true, 4);
        for t in 0..10 {
            log.record(TraceEvent::Resubmitted {
                job: JobId(t),
                at: t,
            });
        }
        assert_eq!(log.recorded(), 10);
        assert_eq!(log.events().len(), 4);
        assert_eq!(log.dropped(), 6);
        // The retained window is the most recent four events, in order.
        let times: Vec<_> = log.events().iter().map(|e| e.at()).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
        assert_eq!(log.for_job(JobId(9)).len(), 1);
        assert!(log.for_job(JobId(0)).is_empty());
    }

    #[test]
    fn under_capacity_log_drops_nothing() {
        let mut log = TraceLog::new(true);
        for t in 0..100 {
            log.record(TraceEvent::Resubmitted {
                job: JobId(1),
                at: t,
            });
        }
        assert_eq!(log.recorded(), 100);
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.events().len(), 100);
    }
}
