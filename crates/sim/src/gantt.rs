//! ASCII Gantt rendering of simulation traces.
//!
//! Renders the machine × time grids the paper uses to illustrate schedules
//! (Figs. 1 and 4): one row per machine, one column per time quantum, each
//! cell showing the job occupying that machine (or `.` when idle).

use std::collections::HashMap;

use crate::job::JobId;
use crate::trace::{TraceEvent, TraceLog};
use crate::Time;

/// Symbol assigned to the `i`-th distinct job in the trace.
fn symbol(i: usize) -> char {
    const SYMS: &[u8] = b"123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    SYMS[i % SYMS.len()] as char
}

/// Renders the schedule recorded in `trace` over `[t0, t1)` at the given
/// time quantum, for a cluster of `num_nodes` machines.
///
/// Returns a multi-line string: a legend mapping symbols to jobs, a header
/// of slice start times, and one row per machine.
pub fn render(trace: &TraceLog, num_nodes: usize, t0: Time, t1: Time, quantum: u64) -> String {
    let quantum = quantum.max(1);
    let slices = ((t1.saturating_sub(t0)) / quantum).max(1) as usize;

    // Reconstruct per-node occupancy intervals from the trace.
    // (job, node) -> start; closed by Completed/Preempted events.
    let mut open: HashMap<JobId, (Time, Vec<u32>)> = HashMap::new();
    let mut intervals: Vec<(u32, Time, Time, JobId)> = Vec::new();
    for e in trace.events() {
        match e {
            TraceEvent::Launched { job, nodes, at, .. } => {
                open.insert(*job, (*at, nodes.iter().map(|n| n.0).collect()));
            }
            TraceEvent::Completed { job, at, .. } | TraceEvent::Preempted { job, at } => {
                if let Some((start, nodes)) = open.remove(job) {
                    for n in nodes {
                        intervals.push((n, start, *at, *job));
                    }
                }
            }
            _ => {}
        }
    }
    // Still-running jobs occupy through the end of the window.
    for (job, (start, nodes)) in open {
        for n in nodes {
            intervals.push((n, start, t1, job));
        }
    }

    // Stable symbols by job id order of first launch.
    let mut jobs: Vec<JobId> = Vec::new();
    for e in trace.events() {
        if let TraceEvent::Launched { job, .. } = e {
            if !jobs.contains(job) {
                jobs.push(*job);
            }
        }
    }
    let sym_of: HashMap<JobId, char> = jobs
        .iter()
        .enumerate()
        .map(|(i, &j)| (j, symbol(i)))
        .collect();

    let mut grid = vec![vec!['.'; slices]; num_nodes];
    for (node, start, end, job) in intervals {
        let sym = sym_of.get(&job).copied().unwrap_or('?');
        for (s, cell_t) in (0..slices).map(|s| (s, t0 + s as u64 * quantum)) {
            if cell_t >= start && cell_t < end {
                grid[node as usize][s] = sym;
            }
        }
    }

    let mut out = String::new();
    out.push_str("legend: ");
    for j in &jobs {
        out.push_str(&format!("{}={:?} ", sym_of[j], j));
    }
    out.push('\n');
    out.push_str("        t=");
    for s in 0..slices {
        out.push_str(&format!("{:<4}", t0 + s as u64 * quantum));
    }
    out.push('\n');
    for (n, row) in grid.iter().enumerate().rev() {
        out.push_str(&format!("  M{n:<3} |  "));
        for &c in row {
            out.push(c);
            out.push_str("   ");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrisched_cluster::NodeId;
    use tetrisched_strl::JobClass;

    fn launched(job: u64, nodes: &[u32], at: Time) -> TraceEvent {
        TraceEvent::Launched {
            job: JobId(job),
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
            preferred: true,
            at,
        }
    }

    #[test]
    fn renders_fig4_like_grid() {
        let mut log = TraceLog::new(true);
        log.record(TraceEvent::Submitted {
            job: JobId(0),
            class: JobClass::SloAccepted,
            at: 0,
        });
        log.record(launched(0, &[1, 2], 0));
        log.record(TraceEvent::Completed {
            job: JobId(0),
            met_deadline: Some(true),
            at: 10,
        });
        log.record(launched(1, &[0, 1, 2], 10));
        log.record(TraceEvent::Completed {
            job: JobId(1),
            met_deadline: Some(true),
            at: 20,
        });
        let g = render(&log, 3, 0, 40, 10);
        // Machine rows are printed top-down M2..M0.
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("legend"));
        assert!(lines[2].contains("M2"));
        // M1 is busy with job 1 in slice 0 and job 2 in slice 1.
        let m1 = lines[3];
        assert!(m1.contains("M1"));
        assert!(m1.contains('1') && m1.contains('2'));
        // M0 idle in slice 0 (job 0 used nodes 1,2).
        let m0 = lines[4];
        assert!(m0.trim_start().starts_with("M0"));
    }

    #[test]
    fn running_job_extends_to_window_end() {
        let mut log = TraceLog::new(true);
        log.record(launched(0, &[0], 5));
        let g = render(&log, 1, 0, 20, 5);
        let m0 = g.lines().last().unwrap();
        // Busy in slices starting at 5, 10, 15; idle at 0.
        let cells: Vec<char> = m0
            .split("|  ")
            .nth(1)
            .unwrap()
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        assert_eq!(cells, vec!['.', '1', '1', '1']);
    }

    #[test]
    fn preemption_frees_the_node() {
        let mut log = TraceLog::new(true);
        log.record(launched(0, &[0], 0));
        log.record(TraceEvent::Preempted {
            job: JobId(0),
            at: 10,
        });
        let g = render(&log, 1, 0, 20, 10);
        let m0 = g.lines().last().unwrap();
        let cells: Vec<char> = m0
            .split("|  ")
            .nth(1)
            .unwrap()
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        assert_eq!(cells, vec!['1', '.']);
    }
}
