//! The discrete-event simulation engine.
//!
//! Drives submissions, scheduler cycles, completions, preemptions, and
//! reservation admission; collects the paper's evaluation metrics.

use std::collections::HashMap;
use std::time::Instant;

use tetrisched_cluster::{AllocHandle, Cluster, Ledger, NodeId, NodeSet};
use tetrisched_reservation::{Reservation, ReservationSystem};
use tetrisched_service::{Ingest, ServiceConfig, ServiceCore, ServiceMode};
use tetrisched_strl::{Atom, JobClass, Window};

use tetrisched_telemetry::{Telemetry, TelemetryConfig};

use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultPlan, PerfFaultPlan, PerfFaultWindow, RetryPolicy};
use crate::job::{JobId, JobOutcome, JobSpec};
use crate::metrics::Metrics;
use crate::scheduler::{CycleContext, CycleError, PendingJob, RunningJob, Scheduler};
use crate::straggler::{detect_stragglers, StragglerConfig};
use crate::trace::{TraceEvent, TraceLog, DEFAULT_TRACE_CAPACITY};
use crate::Time;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scheduler cycle period in simulated seconds (the paper uses 4 s).
    pub cycle_period: u64,
    /// Optional hard stop; jobs not terminal by then count as incomplete.
    pub horizon: Option<Time>,
    /// Whether to record a full event trace.
    pub trace: bool,
    /// Node failure/repair transitions to replay (empty = healthy run).
    pub faults: FaultPlan,
    /// Performance-fault windows to replay (empty = full-speed run):
    /// nodes stay up but run slower, stretching in-flight work
    /// deterministically. Announced windows (scripted maintenance) are
    /// registered with the ledger's [`tetrisched_cluster::NodeHealth`] so
    /// plan-ahead schedules around them.
    pub perf_faults: PerfFaultPlan,
    /// Straggler detection and speculative migration (disabled by
    /// default; a disabled config reproduces pre-straggler runs
    /// byte-for-byte).
    pub stragglers: StragglerConfig,
    /// Backoff and budget applied to jobs evicted by node failures.
    pub retry: RetryPolicy,
    /// When set, the ledger conservation invariant
    /// (`free + allocated + down == total`) is checked after **every**
    /// event even in release builds; debug builds always check.
    pub strict_accounting: bool,
    /// Maximum trace events retained (ring-buffer semantics); older events
    /// are evicted and counted in `Metrics::trace_events_dropped`.
    pub trace_capacity: usize,
    /// Telemetry registry options (disabled by default). Enabling records
    /// spans, counters, and histograms into `SimReport::telemetry` without
    /// changing any scheduling decision.
    pub telemetry: TelemetryConfig,
    /// Service-core configuration. The default ([`ServiceConfig::closed_loop`])
    /// is a pass-through that reproduces the pre-service engine
    /// byte-for-byte; [`tetrisched_service::ServiceMode::Open`] enables
    /// sharded intake, admission batching with backpressure/shedding, and
    /// fair-share tenancy weights.
    pub service: ServiceConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cycle_period: 4,
            horizon: None,
            trace: false,
            faults: FaultPlan::none(),
            perf_faults: PerfFaultPlan::none(),
            stragglers: StragglerConfig::disabled(),
            retry: RetryPolicy::default(),
            strict_accounting: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            telemetry: TelemetryConfig::default(),
            service: ServiceConfig::closed_loop(),
        }
    }
}

/// Final report of one simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Aggregate metrics (Sec. 6.3).
    pub metrics: Metrics,
    /// Per-job outcomes.
    pub outcomes: HashMap<JobId, JobOutcome>,
    /// Per-job assigned classes.
    pub classes: HashMap<JobId, JobClass>,
    /// Event trace (empty unless enabled).
    pub trace: TraceLog,
    /// Scheduler that produced the run.
    pub scheduler_name: String,
    /// Simulated time at which the run ended.
    pub end_time: Time,
    /// Telemetry recorded during the run (empty unless enabled via
    /// [`SimConfig::telemetry`]); export with
    /// [`Telemetry::to_jsonl`] / [`Telemetry::to_chrome_trace`] /
    /// [`Telemetry::to_prometheus`].
    pub telemetry: Telemetry,
}

#[derive(Debug, Clone)]
enum JobState {
    NotArrived,
    Pending,
    Running {
        started: Time,
        nodes: Vec<NodeId>,
        preferred: bool,
    },
    /// Evicted by a node failure; waiting out the retry backoff before
    /// rejoining the pending queue.
    Backoff,
    Terminal,
}

#[derive(Debug)]
struct JobRecord {
    spec: JobSpec,
    class: JobClass,
    reservation: Option<Reservation>,
    state: JobState,
    preemptions: u32,
    generation: u32,
    /// Fault-eviction retries consumed so far.
    retries: u32,
    outcome: Option<JobOutcome>,
    /// Fraction of the job's total work completed so far (the gang's
    /// progress watermark). Preserved across speculative migrations;
    /// reset to 0 by fail-stop evictions and preemptions, which lose all
    /// progress.
    watermark: f64,
    /// Simulated time of the last watermark rebase (work between
    /// `progress_at` and now accrued at rate `1 / (run_total * run_mult)`
    /// per second).
    progress_at: Time,
    /// Runtime multiplier of the current run: the max node-health factor
    /// over the gang (a gang is as slow as its slowest member). 1.0 on a
    /// healthy placement.
    run_mult: f64,
    /// True runtime of the current placement at nominal speed, as f64 for
    /// watermark arithmetic.
    run_total: f64,
    /// Speculative migrations consumed so far (bounded by
    /// [`StragglerConfig::max_migrations_per_job`]).
    migrations: u32,
}

/// The simulator: owns the cluster state, the reservation system, the event
/// queue, and the scheduler under test.
pub struct Simulator<S: Scheduler> {
    cluster: Cluster,
    scheduler: S,
    config: SimConfig,
    /// Ladder rung reported by the previous cycle, for change tracking.
    last_rung: u8,
}

impl<S: Scheduler> Simulator<S> {
    /// Creates a simulator.
    pub fn new(cluster: Cluster, scheduler: S, config: SimConfig) -> Self {
        Simulator {
            cluster,
            scheduler,
            config,
            last_rung: 0,
        }
    }

    /// Runs the workload to completion (or the horizon) and reports.
    pub fn run(mut self, jobs: Vec<JobSpec>) -> SimReport {
        let num_nodes = self.cluster.num_nodes();
        let mut ledger = Ledger::new(num_nodes);
        let mut rs = ReservationSystem::new(num_nodes as u32);
        let mut queue = EventQueue::new();
        let mut trace = TraceLog::with_capacity(self.config.trace, self.config.trace_capacity);
        let mut metrics = Metrics::default();
        let telemetry = Telemetry::new(self.config.telemetry.clone());

        let mut records: HashMap<JobId, JobRecord> = HashMap::new();
        let mut pending_order: Vec<JobId> = Vec::new();
        let mut service: ServiceCore<JobSpec> = ServiceCore::new(self.config.service.clone());
        let mut remaining = jobs.len();
        for spec in jobs {
            queue.push(spec.submit, EventKind::Submit { job: spec.id });
            let id = spec.id;
            records.insert(
                id,
                JobRecord {
                    spec,
                    class: JobClass::BestEffort,
                    reservation: None,
                    state: JobState::NotArrived,
                    preemptions: 0,
                    generation: 0,
                    retries: 0,
                    outcome: None,
                    watermark: 0.0,
                    progress_at: 0,
                    run_mult: 1.0,
                    run_total: 0.0,
                    migrations: 0,
                },
            );
        }
        queue.push(0, EventKind::CycleTick);

        // Replay the fault plan as events. The plan is validated up front
        // so a plan generated for the wrong cluster fails loudly instead of
        // corrupting state mid-run.
        if let Some(max) = self.config.faults.max_node() {
            assert!(
                max.index() < num_nodes,
                "fault plan touches node {max} but the cluster has {num_nodes} nodes"
            );
        }
        for fe in self.config.faults.events().to_vec() {
            let kind = if fe.up {
                EventKind::NodeUp { node: fe.node }
            } else {
                EventKind::NodeDown { node: fe.node }
            };
            queue.push(fe.at, kind);
        }
        // Overlapping outages of one node (stochastic churn merged with a
        // scripted rack outage) are refcounted: the node rejoins the free
        // pool only when every overlapping outage has ended.
        let mut down_depth: Vec<u32> = vec![0; num_nodes];
        let mut down_since: Vec<Option<Time>> = vec![None; num_nodes];

        // Replay the performance-fault plan: each window becomes a
        // start/end event pair, and announced windows (scripted
        // maintenance) are registered with the ledger up front so
        // plan-ahead anticipates them. Overlapping windows on one node
        // compose by max: the node runs at the worst active factor.
        if let Some(max) = self.config.perf_faults.max_node() {
            assert!(
                max.index() < num_nodes,
                "perf-fault plan touches node {max} but the cluster has {num_nodes} nodes"
            );
        }
        let perf_windows: Vec<PerfFaultWindow> = self.config.perf_faults.windows().to_vec();
        for (ix, w) in perf_windows.iter().enumerate() {
            queue.push(w.start, EventKind::PerfFaultStart { ix });
            queue.push(w.end, EventKind::PerfFaultEnd { ix });
            if w.announced {
                ledger.health_mut().announce(w.node, w.start, w.end);
            }
        }
        let mut active_perf: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
        let mut perf_faulted: Vec<bool> = vec![false; num_nodes];

        let mut now: Time = 0;
        while let Some(ev) = queue.pop() {
            now = ev.at;
            if let Some(h) = self.config.horizon {
                if now > h {
                    now = h;
                    break;
                }
            }
            telemetry.advance(now);
            telemetry.counter_add(event_counter(&ev.kind), 1);
            match ev.kind {
                EventKind::Submit { job } => {
                    let rec = records.get_mut(&job).expect("unknown job submitted");
                    match service.ingest(rec.spec.clone()) {
                        // Closed-loop pass-through: admit inline, exactly as
                        // the pre-service engine did.
                        Ingest::Admitted(_) => {
                            let weight = service.fair_share().weight(job.0);
                            admit_job(
                                job,
                                now,
                                weight,
                                rec,
                                &mut rs,
                                &mut pending_order,
                                &mut trace,
                                &mut self.scheduler,
                            );
                        }
                        // Open-loop: queued on an intake shard; reservation
                        // admission and classification happen when a later
                        // admission cycle drains it.
                        Ingest::Queued { .. } => {}
                        // Open-loop: the target shard's mailbox overflowed.
                        Ingest::Shed(_) => {
                            rec.state = JobState::Terminal;
                            rec.outcome = Some(JobOutcome::Shed { at: now });
                            remaining -= 1;
                            trace.record(TraceEvent::Shed { job, at: now });
                        }
                    }
                }
                EventKind::Complete { job, generation } => {
                    let rec = records.get_mut(&job).expect("unknown job completed");
                    if rec.generation != generation {
                        continue; // Stale completion from a preempted run.
                    }
                    let JobState::Running {
                        started,
                        ref nodes,
                        preferred,
                    } = rec.state
                    else {
                        continue;
                    };
                    metrics.busy_node_seconds += (now - started) * nodes.len() as u64;
                    ledger.release(AllocHandle(job.0)).expect("ledger release");
                    if let Some(r) = rec.reservation {
                        rs.release_from(r.id, now);
                    }
                    let met = rec.spec.deadline.map(|d| now <= d);
                    match (rec.class, met) {
                        (JobClass::SloAccepted, Some(true)) => metrics.accepted_slo_met += 1,
                        (JobClass::SloNoReservation, Some(true)) => metrics.nores_slo_met += 1,
                        (JobClass::BestEffort, _) => {
                            metrics.be_completed += 1;
                            metrics.be_latency.push((now - rec.spec.submit) as f64);
                        }
                        _ => {}
                    }
                    rec.state = JobState::Terminal;
                    rec.outcome = Some(JobOutcome::Completed { at: now, preferred });
                    remaining -= 1;
                    trace.record(TraceEvent::Completed {
                        job,
                        met_deadline: met,
                        at: now,
                    });
                    self.scheduler.on_complete(job, now);
                }
                EventKind::NodeDown { node } => {
                    down_depth[node.index()] += 1;
                    if down_depth[node.index()] > 1 {
                        continue; // Nested outage; the node is already down.
                    }
                    down_since[node.index()] = Some(now);
                    if let Some(handle) = ledger.owner_of(node) {
                        // Evict the gang holding the failed node: the run's
                        // progress is lost and its queued Complete event goes
                        // stale via the generation bump.
                        let job = JobId(handle.0);
                        let rec = records
                            .get_mut(&job)
                            .expect("down node held by unknown job");
                        if let JobState::Running {
                            started, ref nodes, ..
                        } = rec.state
                        {
                            metrics.busy_node_seconds += (now - started) * nodes.len() as u64;
                        }
                        ledger.release(handle).expect("ledger release on eviction");
                        rec.generation += 1;
                        rec.retries += 1;
                        // Fail-stop evictions lose all progress (unlike
                        // speculative migrations, which preserve it).
                        rec.watermark = 0.0;
                        rec.run_mult = 1.0;
                        metrics.evictions += 1;
                        trace.record(TraceEvent::Evicted {
                            job,
                            node,
                            retry: rec.retries,
                            at: now,
                        });
                        self.scheduler.on_evict(job, now);
                        if rec.retries > self.config.retry.max_retries {
                            rec.state = JobState::Terminal;
                            rec.outcome = Some(JobOutcome::Abandoned { at: now });
                            metrics.abandoned_after_retries += 1;
                            remaining -= 1;
                            trace.record(TraceEvent::RetriesExhausted { job, at: now });
                        } else {
                            rec.state = JobState::Backoff;
                            metrics.retries += 1;
                            queue.push(
                                now + self.config.retry.delay(rec.retries),
                                EventKind::Resubmit { job },
                            );
                        }
                    }
                    ledger
                        .mark_down(node)
                        .expect("mark_down after owner eviction");
                    trace.record(TraceEvent::NodeDown { node, at: now });
                }
                EventKind::NodeUp { node } => {
                    if down_depth[node.index()] == 0 {
                        continue; // Repair without a matching failure.
                    }
                    down_depth[node.index()] -= 1;
                    if down_depth[node.index()] == 0 {
                        ledger.mark_up(node);
                        if let Some(since) = down_since[node.index()].take() {
                            metrics.down_node_seconds += now - since;
                        }
                        trace.record(TraceEvent::NodeUp { node, at: now });
                    }
                }
                EventKind::PerfFaultStart { ix } => {
                    let w = perf_windows[ix];
                    let nix = w.node.index();
                    active_perf[nix].push(ix);
                    if !perf_faulted[nix] {
                        perf_faulted[nix] = true;
                        metrics.perf_faulted_nodes += 1;
                    }
                    let factor = node_perf_factor(&perf_windows, &active_perf[nix]);
                    ledger.health_mut().set_factor(w.node, factor);
                    telemetry.counter_add("degraded.perf_fault_windows", 1);
                    trace.record(TraceEvent::PerfDegraded {
                        node: w.node,
                        factor_pct: (factor * 100.0).round() as u32,
                        at: now,
                    });
                    retime_gang_on(w.node, now, &mut records, &ledger, &mut queue, &mut trace);
                }
                EventKind::PerfFaultEnd { ix } => {
                    let w = perf_windows[ix];
                    let nix = w.node.index();
                    active_perf[nix].retain(|&other| other != ix);
                    let factor = node_perf_factor(&perf_windows, &active_perf[nix]);
                    ledger.health_mut().set_factor(w.node, factor);
                    if factor <= 1.0 {
                        trace.record(TraceEvent::PerfRecovered {
                            node: w.node,
                            at: now,
                        });
                    }
                    retime_gang_on(w.node, now, &mut records, &ledger, &mut queue, &mut trace);
                }
                EventKind::Resubmit { job } => {
                    let rec = records.get_mut(&job).expect("resubmit of unknown job");
                    // A Resubmit can only find the job in Backoff: evictions
                    // out of Backoff are impossible (the job holds no nodes).
                    if matches!(rec.state, JobState::Backoff) {
                        rec.state = JobState::Pending;
                        pending_order.push(job);
                        trace.record(TraceEvent::Resubmitted { job, at: now });
                    }
                }
                EventKind::CycleTick => {
                    // Admission cycle first (open mode only): drain a batch
                    // of queued arrivals under backpressure, then shed the
                    // excess past the queue-depth bound. The previous
                    // cycle's degradation-ladder rung tightens admission so
                    // the service sheds earlier while the scheduler is
                    // operating degraded (rung 0 is byte-identical).
                    if service.mode() == ServiceMode::Open {
                        let backlog = records
                            .values()
                            .filter(|r| matches!(r.state, JobState::Pending))
                            .count();
                        let batch = service.drain_cycle_with(backlog, self.last_rung);
                        for spec in batch.admitted {
                            let job = spec.id;
                            let weight = service.fair_share().weight(job.0);
                            let rec = records.get_mut(&job).expect("admitted unknown job");
                            admit_job(
                                job,
                                now,
                                weight,
                                rec,
                                &mut rs,
                                &mut pending_order,
                                &mut trace,
                                &mut self.scheduler,
                            );
                        }
                        for spec in batch.shed {
                            let job = spec.id;
                            let rec = records.get_mut(&job).expect("shed unknown job");
                            rec.state = JobState::Terminal;
                            rec.outcome = Some(JobOutcome::Shed { at: now });
                            remaining -= 1;
                            trace.record(TraceEvent::Shed { job, at: now });
                        }
                        telemetry.observe_sim("service.intake_backlog", batch.deferred as f64);
                        if let Err(e) = service.validate() {
                            panic!("at t={now}: {e}");
                        }
                    }
                    self.run_cycle(
                        now,
                        &mut records,
                        &mut pending_order,
                        &mut ledger,
                        &mut queue,
                        &mut metrics,
                        &mut trace,
                        &telemetry,
                        &mut remaining,
                        &mut service,
                    );
                    if remaining > 0 {
                        queue.push(now + self.config.cycle_period, EventKind::CycleTick);
                    }
                }
            }
            // Conservation invariant after every state-mutating event:
            // free + allocated + down == total. Debug builds always check;
            // strict_accounting extends the check to release builds.
            if self.config.strict_accounting || cfg!(debug_assertions) {
                if let Err(e) = ledger.validate() {
                    panic!("ledger invariant violated at t={now}: {e}");
                }
            }
            if remaining == 0 {
                // All jobs terminal: stop instead of draining whatever
                // fault-plan events remain past the workload's end.
                break;
            }
        }

        // Finalize: account for jobs that never became terminal.
        let mut outcomes = HashMap::new();
        let mut classes = HashMap::new();
        for (id, rec) in &mut records {
            match rec.state {
                JobState::Running {
                    started, ref nodes, ..
                } => {
                    metrics.busy_node_seconds += now.saturating_sub(started) * nodes.len() as u64;
                    metrics.incomplete += 1;
                    rec.outcome = Some(JobOutcome::Incomplete);
                }
                JobState::Pending | JobState::Backoff | JobState::NotArrived => {
                    if rec.outcome.is_none() {
                        metrics.incomplete += 1;
                        rec.outcome = Some(JobOutcome::Incomplete);
                    }
                }
                JobState::Terminal => {}
            }
            // Class totals cover every job that entered the system. Shed
            // jobs never did: the service rejected them before admission,
            // so they carry no class.
            if !matches!(rec.state, JobState::NotArrived)
                && !matches!(rec.outcome, Some(JobOutcome::Shed { .. }))
            {
                match rec.class {
                    JobClass::SloAccepted => metrics.accepted_slo_total += 1,
                    JobClass::SloNoReservation => metrics.nores_slo_total += 1,
                    JobClass::BestEffort => metrics.be_total += 1,
                }
            }
            outcomes.insert(*id, rec.outcome.unwrap_or(JobOutcome::Incomplete));
            classes.insert(*id, rec.class);
        }
        metrics.total_node_seconds = num_nodes as u64 * now;
        // Close out outages still open when the run ended.
        for since in down_since.iter().flatten() {
            metrics.down_node_seconds += now.saturating_sub(*since);
        }
        metrics.trace_events_dropped = trace.dropped();
        telemetry.counter_add("sim.trace_events_dropped", trace.dropped());
        telemetry.counter_add("degraded.perf_faulted_nodes", metrics.perf_faulted_nodes);
        // Service-core accounting: conserved (admitted + shed + backlog ==
        // arrivals) by construction; surfaced in metrics and telemetry so
        // open-loop overload behavior is observable.
        let service_stats = service.stats();
        metrics.jobs_admitted = service_stats.admitted;
        metrics.jobs_shed = service_stats.shed;
        metrics.jobs_deferred = service_stats.deferred;
        metrics.intake_overflows = service_stats.mailbox_overflows;
        telemetry.counter_add("service.jobs_admitted", service_stats.admitted);
        telemetry.counter_add("service.jobs_shed", service_stats.shed);
        telemetry.counter_add("service.jobs_deferred", service_stats.deferred);
        telemetry.counter_add("service.intake_overflows", service_stats.mailbox_overflows);
        if let Err(e) = service.validate() {
            panic!("at end of run: {e}");
        }

        SimReport {
            metrics,
            outcomes,
            classes,
            trace,
            scheduler_name: self.scheduler.name().to_string(),
            end_time: now,
            telemetry,
        }
    }

    /// Runs one scheduler cycle and applies its decisions.
    #[allow(clippy::too_many_arguments)]
    fn run_cycle(
        &mut self,
        now: Time,
        records: &mut HashMap<JobId, JobRecord>,
        pending_order: &mut Vec<JobId>,
        ledger: &mut Ledger,
        queue: &mut EventQueue,
        metrics: &mut Metrics,
        trace: &mut TraceLog,
        telemetry: &Telemetry,
        remaining: &mut usize,
        service: &mut ServiceCore<JobSpec>,
    ) {
        // The cycle span wraps view building, the scheduler call (whose
        // phase spans nest under it), and decision application.
        let cycle_span = telemetry.span("sim", "cycle");
        cycle_span.arg("cycle", metrics.cycle_latency.count() as u64);

        // Straggler defense: compare each running gang's observed runtime
        // to its own estimate, flag the ones that have outgrown the cohort
        // median, and speculatively migrate the worst offenders back
        // through the normal placement path. Progress is preserved via the
        // watermark; the stale completion dies by the same generation bump
        // that guards fail-stop evictions.
        if self.config.stragglers.enabled {
            let mut cohort: Vec<(JobId, f64)> = Vec::new();
            for rec in records.values() {
                if let JobState::Running {
                    started, preferred, ..
                } = rec.state
                {
                    let est = rec.spec.estimated_runtime_for(preferred).max(1) as f64;
                    cohort.push((rec.spec.id, now.saturating_sub(started) as f64 / est));
                }
            }
            cohort.sort_by_key(|&(id, _)| id);
            let flagged = detect_stragglers(&cohort, &self.config.stragglers);
            metrics.stragglers_detected += flagged.len() as u64;
            telemetry.counter_add("degraded.stragglers_detected", flagged.len() as u64);
            let mut migrated = 0usize;
            for job in flagged {
                if migrated >= self.config.stragglers.max_migrations_per_cycle {
                    break;
                }
                let rec = records.get_mut(&job).expect("flagged unknown job");
                if rec.migrations >= self.config.stragglers.max_migrations_per_job {
                    continue;
                }
                let (started, width) = match rec.state {
                    JobState::Running {
                        started, ref nodes, ..
                    } => (started, nodes.len() as u64),
                    _ => continue,
                };
                rebase_progress(rec, now);
                metrics.busy_node_seconds += (now - started) * width;
                ledger
                    .release(AllocHandle(job.0))
                    .expect("ledger release on migration");
                rec.generation += 1;
                rec.migrations += 1;
                rec.state = JobState::Pending;
                pending_order.push(job);
                migrated += 1;
                metrics.speculative_migrations += 1;
                telemetry.counter_add("degraded.speculative_migrations", 1);
                trace.record(TraceEvent::StragglerMigrated {
                    job,
                    watermark_pct: (rec.watermark * 100.0).round() as u32,
                    at: now,
                });
                self.scheduler.on_evict(job, now);
            }
        }

        // Build the scheduler's views.
        pending_order.retain(|id| matches!(records[id].state, JobState::Pending));
        // Rebuild the fair-share book from ground truth each cycle (held
        // nodes of running gangs, demand of pending gangs) so tenancy
        // weights can never drift from engine state. With fair-share
        // disabled — the closed-loop default — `weight()` returns literal
        // 1.0 and the STRL objective is unchanged.
        if service.fair_share().config().is_enabled() {
            let book = service.fair_share_mut();
            book.begin_cycle();
            for rec in records.values() {
                match rec.state {
                    JobState::Running { ref nodes, .. } => {
                        book.observe_held(rec.spec.id.0, nodes.len() as u64);
                    }
                    JobState::Pending => {
                        book.observe_demand(rec.spec.id.0, u64::from(rec.spec.k));
                    }
                    _ => {}
                }
            }
        }
        let pending: Vec<PendingJob> = pending_order
            .iter()
            .map(|id| {
                let rec = &records[id];
                pending_view(rec, service.fair_share().weight(rec.spec.id.0))
            })
            .collect();
        let mut running: Vec<RunningJob> = Vec::new();
        for rec in records.values() {
            if let JobState::Running {
                started,
                ref nodes,
                preferred,
            } = rec.state
            {
                running.push(RunningJob {
                    id: rec.spec.id,
                    class: rec.class,
                    started,
                    nodes: nodes.clone(),
                    expected_end: ledger
                        .expected_end(AllocHandle(rec.spec.id.0))
                        .unwrap_or(now),
                    preferred,
                    deadline: rec.spec.deadline,
                });
            }
        }
        running.sort_by_key(|r| r.id);

        let wall = Instant::now();
        let decisions = {
            let ctx = CycleContext {
                now,
                cluster: &self.cluster,
                ledger,
                pending: &pending,
                running: &running,
                telemetry,
            };
            self.scheduler.cycle(&ctx)
        };
        let cycle_secs = wall.elapsed().as_secs_f64();
        metrics.cycle_latency.push(cycle_secs);
        metrics
            .solver_latency
            .push(decisions.solver_time.as_secs_f64());
        // Wall durations are measured here (this file is on the srclint
        // L001 allowlist) and enter telemetry only as wall-domain
        // observations, which default exports exclude.
        telemetry.observe_wall("cycle.wall_secs", cycle_secs);
        telemetry.observe_wall("solver.wall_secs", decisions.solver_time.as_secs_f64());
        telemetry.observe_sim("sched.pending_jobs", pending.len() as f64);
        telemetry.observe_sim("sched.running_jobs", running.len() as f64);
        cycle_span.arg("pending", pending.len() as u64);
        cycle_span.arg("running", running.len() as u64);
        cycle_span.arg("launches", decisions.launches.len() as u64);
        cycle_span.arg("preemptions", decisions.preemptions.len() as u64);
        cycle_span.arg("errors", decisions.errors.len() as u64);
        cycle_span.arg("degraded", u64::from(decisions.degraded));
        telemetry.counter_add("sim.launches", decisions.launches.len() as u64);
        telemetry.counter_add("sim.preemptions", decisions.preemptions.len() as u64);
        telemetry.counter_add("sim.abandons", decisions.abandons.len() as u64);
        if decisions.degraded {
            telemetry.counter_add("sim.degraded_cycles", 1);
        }
        metrics.warm_start_hits += decisions.warm_start_hits;
        metrics.warm_start_misses += decisions.warm_start_misses;
        metrics.presolve_reductions += decisions.presolve_reductions;
        // Ladder accounting: rung changes are governed (and rate-limited)
        // inside the scheduler; the engine only observes and records them.
        metrics.ladder_rung = metrics.ladder_rung.max(u64::from(decisions.ladder_rung));
        metrics.anytime_incumbents += decisions.anytime_incumbents;
        telemetry.observe_sim("degraded.ladder_rung", f64::from(decisions.ladder_rung));
        if decisions.anytime_incumbents > 0 {
            telemetry.counter_add("degraded.anytime_incumbents", decisions.anytime_incumbents);
        }
        if decisions.ladder_rung != self.last_rung {
            self.last_rung = decisions.ladder_rung;
            telemetry.counter_add("degraded.ladder_rung_changes", 1);
            trace.record(TraceEvent::LadderRung {
                rung: decisions.ladder_rung,
                at: now,
            });
        }

        // Surface degraded-mode signals: cycles report non-fatal errors
        // instead of panicking or silently dropping work.
        for err in &decisions.errors {
            match err {
                CycleError::Compile { .. } => metrics.compile_errors += 1,
                CycleError::Solver { .. } | CycleError::NoSolution { .. } => {
                    metrics.solver_errors += 1
                }
                CycleError::Lint { .. } => metrics.lint_errors += 1,
                // Counted below via `decisions.certificate_failures`.
                CycleError::Certificate { .. } => {}
            }
        }
        metrics.lint_presolve_rejections += decisions.lint_presolve_rejections;
        metrics.certificates_verified += decisions.certificates_verified;
        metrics.certificate_failures += decisions.certificate_failures;
        if decisions.degraded {
            metrics.degraded_cycles += 1;
            metrics.solver_fallbacks += 1;
            trace.record(TraceEvent::CycleDegraded {
                errors: decisions.errors.iter().map(|e| e.to_string()).collect(),
                at: now,
            });
        }

        // 1. Preemptions: victims lose all progress and requeue.
        for job in decisions.preemptions {
            let rec = records.get_mut(&job).expect("preempting unknown job");
            let JobState::Running {
                started, ref nodes, ..
            } = rec.state
            else {
                continue;
            };
            metrics.busy_node_seconds += (now - started) * nodes.len() as u64;
            ledger.release(AllocHandle(job.0)).expect("ledger release");
            rec.generation += 1;
            rec.preemptions += 1;
            rec.watermark = 0.0;
            rec.run_mult = 1.0;
            rec.state = JobState::Pending;
            pending_order.push(job);
            metrics.preemptions += 1;
            trace.record(TraceEvent::Preempted { job, at: now });
        }

        // 2. Launches.
        for launch in decisions.launches {
            let rec = records.get_mut(&launch.job).expect("launching unknown job");
            assert!(
                matches!(rec.state, JobState::Pending),
                "scheduler launched non-pending job {:?}",
                launch.job
            );
            assert_eq!(
                launch.nodes.len(),
                rec.spec.k as usize,
                "gang size mismatch for {:?}",
                launch.job
            );
            let set = NodeSet::from_ids(self.cluster.num_nodes(), launch.nodes.iter().copied());
            assert_eq!(
                set.len(),
                launch.nodes.len(),
                "duplicate nodes in launch of {:?}",
                launch.job
            );
            let preferred = rec.spec.placement_preferred(&self.cluster, &launch.nodes);
            // The gang runs at its slowest member's rate; a migrated job
            // resumes from its preserved watermark. On the healthy,
            // from-scratch path this reduces to the exact integer runtime.
            let mult = gang_mult(ledger, &launch.nodes);
            rec.run_total = rec.spec.true_runtime_for(preferred) as f64;
            rec.run_mult = mult;
            rec.progress_at = now;
            let true_end = if rec.watermark == 0.0 && mult == 1.0 {
                now + rec.spec.true_runtime_for(preferred)
            } else {
                now + remaining_runtime(rec)
            };
            ledger
                .allocate(
                    AllocHandle(launch.job.0),
                    set,
                    launch.expected_end.max(now + 1),
                )
                .unwrap_or_else(|e| panic!("scheduler double-booked nodes: {e}"));
            rec.state = JobState::Running {
                started: now,
                nodes: launch.nodes.clone(),
                preferred,
            };
            queue.push(
                true_end,
                EventKind::Complete {
                    job: launch.job,
                    generation: rec.generation,
                },
            );
            trace.record(TraceEvent::Launched {
                job: launch.job,
                nodes: launch.nodes,
                preferred,
                at: now,
            });
        }

        // 3. Estimate revisions for running jobs.
        for (job, end) in decisions.revised_ends {
            if matches!(
                records.get(&job).map(|r| &r.state),
                Some(JobState::Running { .. })
            ) {
                let _ = ledger.set_expected_end(AllocHandle(job.0), end);
            }
        }

        // 4. Abandons: pending jobs the scheduler gave up on.
        for job in decisions.abandons {
            let rec = records.get_mut(&job).expect("abandoning unknown job");
            if !matches!(rec.state, JobState::Pending) {
                continue;
            }
            rec.state = JobState::Terminal;
            rec.outcome = Some(JobOutcome::Abandoned { at: now });
            metrics.abandoned += 1;
            *remaining -= 1;
            trace.record(TraceEvent::Abandoned { job, at: now });
        }
    }
}

fn pending_view(rec: &JobRecord, weight: f64) -> PendingJob {
    PendingJob {
        spec: rec.spec.clone(),
        class: rec.class,
        reservation: rec.reservation,
        preemptions: rec.preemptions,
        weight,
    }
}

/// Admits one job into the scheduler: reservation admission (every SLO job
/// asks Rayon for a window `[submit, deadline]` sized by its *estimate*),
/// classification, queueing, tracing, and the scheduler's submit hook. The
/// closed-loop Submit path and the open-loop admission-cycle path share
/// this seam so both classify identically.
#[allow(clippy::too_many_arguments)]
fn admit_job<S: Scheduler>(
    job: JobId,
    now: Time,
    weight: f64,
    rec: &mut JobRecord,
    rs: &mut ReservationSystem,
    pending_order: &mut Vec<JobId>,
    trace: &mut TraceLog,
    scheduler: &mut S,
) {
    if let Some(deadline) = rec.spec.deadline {
        let window = Window::new(
            rec.spec.submit,
            deadline,
            Atom::gang(rec.spec.k, rec.spec.estimated_runtime()),
        );
        match rs.request(&window, now) {
            Some(r) => {
                rec.class = JobClass::SloAccepted;
                rec.reservation = Some(r);
            }
            None => rec.class = JobClass::SloNoReservation,
        }
    } else {
        rec.class = JobClass::BestEffort;
    }
    rec.state = JobState::Pending;
    pending_order.push(job);
    trace.record(TraceEvent::Submitted {
        job,
        class: rec.class,
        at: now,
    });
    let view = pending_view(rec, weight);
    scheduler.on_submit(&view, now);
}

/// Telemetry counter name for an event kind (`sim.events.*`).
fn event_counter(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::Submit { .. } => "sim.events.submit",
        EventKind::Complete { .. } => "sim.events.complete",
        EventKind::NodeDown { .. } => "sim.events.node_down",
        EventKind::NodeUp { .. } => "sim.events.node_up",
        EventKind::PerfFaultStart { .. } => "sim.events.perf_fault_start",
        EventKind::PerfFaultEnd { .. } => "sim.events.perf_fault_end",
        EventKind::Resubmit { .. } => "sim.events.resubmit",
        EventKind::CycleTick => "sim.events.cycle_tick",
    }
}

/// A node's runtime multiplier under its currently active perf-fault
/// windows: the max of their factors (worst wins), 1.0 when none.
fn node_perf_factor(windows: &[PerfFaultWindow], active: &[usize]) -> f64 {
    active
        .iter()
        .map(|&ix| windows[ix].kind.slow_factor())
        .fold(1.0, f64::max)
}

/// The runtime multiplier a gang experiences on `nodes`: gang semantics
/// make it as slow as its slowest member.
fn gang_mult(ledger: &Ledger, nodes: &[NodeId]) -> f64 {
    nodes
        .iter()
        .map(|&n| ledger.health().factor(n))
        .fold(1.0, f64::max)
}

/// Accrues progress earned since the last rebase into the watermark at the
/// run's current rate, and moves the rebase point to `now`.
fn rebase_progress(rec: &mut JobRecord, now: Time) {
    if matches!(rec.state, JobState::Running { .. }) && rec.run_total > 0.0 {
        let elapsed = now.saturating_sub(rec.progress_at) as f64;
        rec.watermark = (rec.watermark + elapsed / (rec.run_total * rec.run_mult)).min(1.0);
        rec.progress_at = now;
    }
}

/// Simulated seconds the current run still needs at its current rate
/// (always at least 1 so a re-derived completion lands strictly in the
/// future).
fn remaining_runtime(rec: &JobRecord) -> u64 {
    let remaining = (1.0 - rec.watermark).max(0.0) * rec.run_total * rec.run_mult;
    (remaining.ceil() as u64).max(1)
}

/// Rebases the gang holding `node` (if any) onto the node-health rates in
/// effect from `now` on: progress to date is preserved via the watermark,
/// the queued completion is invalidated through the generation guard, and
/// a fresh completion is queued at the re-derived end time.
fn retime_gang_on(
    node: NodeId,
    now: Time,
    records: &mut HashMap<JobId, JobRecord>,
    ledger: &Ledger,
    queue: &mut EventQueue,
    trace: &mut TraceLog,
) {
    let Some(handle) = ledger.owner_of(node) else {
        return;
    };
    let job = JobId(handle.0);
    let rec = records
        .get_mut(&job)
        .expect("degraded node held by unknown job");
    let mult = match rec.state {
        JobState::Running { ref nodes, .. } => gang_mult(ledger, nodes),
        _ => return,
    };
    if mult == rec.run_mult {
        return;
    }
    rebase_progress(rec, now);
    rec.run_mult = mult;
    rec.generation += 1;
    queue.push(
        now + remaining_runtime(rec),
        EventKind::Complete {
            job,
            generation: rec.generation,
        },
    );
    trace.record(TraceEvent::GangRetimed {
        job,
        factor_pct: (mult * 100.0).round() as u32,
        at: now,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobType;
    use crate::scheduler::{CycleDecisions, Launch};

    /// FIFO-onto-free-nodes scheduler for engine tests.
    struct Fifo;

    impl Scheduler for Fifo {
        fn cycle(&mut self, ctx: &CycleContext<'_>) -> CycleDecisions {
            let mut d = CycleDecisions::default();
            let mut free: Vec<NodeId> = ctx.ledger.free_nodes().iter().collect();
            for p in ctx.pending {
                let k = p.spec.k as usize;
                if free.len() >= k {
                    let nodes: Vec<NodeId> = free.drain(..k).collect();
                    let preferred = p.spec.placement_preferred(ctx.cluster, &nodes);
                    d.launches.push(Launch {
                        job: p.spec.id,
                        nodes,
                        expected_end: ctx.now + p.spec.estimated_runtime_for(preferred),
                    });
                }
            }
            d
        }

        fn name(&self) -> &str {
            "fifo"
        }
    }

    fn be_job(id: u64, submit: Time, k: u32, runtime: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            submit,
            job_type: JobType::Unconstrained,
            k,
            base_runtime: runtime,
            slowdown: 1.0,
            deadline: None,
            estimate_error: 0.0,
        }
    }

    fn slo_job(id: u64, submit: Time, k: u32, runtime: u64, deadline: Time) -> JobSpec {
        JobSpec {
            deadline: Some(deadline),
            ..be_job(id, submit, k, runtime)
        }
    }

    fn run_fifo(jobs: Vec<JobSpec>) -> SimReport {
        Simulator::new(
            Cluster::uniform(1, 4, 0),
            Fifo,
            SimConfig {
                trace: true,
                ..SimConfig::default()
            },
        )
        .run(jobs)
    }

    #[test]
    fn single_job_lifecycle() {
        let report = run_fifo(vec![be_job(0, 0, 2, 40)]);
        assert_eq!(report.metrics.be_total, 1);
        assert_eq!(report.metrics.be_completed, 1);
        // Launched at the t=0 cycle, runs 40s.
        assert_eq!(
            report.outcomes[&JobId(0)],
            JobOutcome::Completed {
                at: 40,
                preferred: true
            }
        );
        assert_eq!(report.metrics.be_mean_latency(), 40.0);
        assert_eq!(report.metrics.busy_node_seconds, 80);
        assert_eq!(report.end_time, 40);
    }

    #[test]
    fn queueing_when_cluster_full() {
        // Two 3-wide jobs on 4 nodes: the second waits for the first.
        let report = run_fifo(vec![be_job(0, 0, 3, 40), be_job(1, 0, 3, 40)]);
        let c0 = report.outcomes[&JobId(0)].completion().unwrap();
        let c1 = report.outcomes[&JobId(1)].completion().unwrap();
        assert_eq!(c0, 40);
        // Job 1 launches at the first cycle tick at/after 40.
        assert_eq!(c1, 80);
    }

    #[test]
    fn slo_classification_via_reservation() {
        // Cluster capacity 4; two SLO jobs each needing all 4 nodes with a
        // window wide enough for one only.
        let jobs = vec![
            slo_job(0, 0, 4, 50, 60),
            slo_job(1, 0, 4, 50, 60), // cannot fit after job 0's reservation
        ];
        let report = run_fifo(jobs);
        assert_eq!(report.metrics.accepted_slo_total, 1);
        assert_eq!(report.metrics.nores_slo_total, 1);
        assert_eq!(report.classes[&JobId(0)], JobClass::SloAccepted);
        assert_eq!(report.classes[&JobId(1)], JobClass::SloNoReservation);
    }

    #[test]
    fn deadline_attainment_counted() {
        let jobs = vec![
            slo_job(0, 0, 2, 20, 100), // easily met
            slo_job(1, 0, 4, 200, 50), // impossible deadline
        ];
        let report = run_fifo(jobs);
        assert_eq!(report.metrics.accepted_slo_met, 1);
        assert!(report.metrics.total_slo_attainment() < 100.0);
    }

    #[test]
    fn horizon_marks_incomplete() {
        let report = Simulator::new(
            Cluster::uniform(1, 4, 0),
            Fifo,
            SimConfig {
                horizon: Some(10),
                ..SimConfig::default()
            },
        )
        .run(vec![be_job(0, 0, 2, 100)]);
        assert_eq!(report.outcomes[&JobId(0)], JobOutcome::Incomplete);
        assert_eq!(report.metrics.incomplete, 1);
        // Busy time up to the horizon is still accounted.
        assert_eq!(report.metrics.busy_node_seconds, 20);
    }

    #[test]
    fn trace_records_lifecycle() {
        let report = run_fifo(vec![be_job(0, 0, 1, 10)]);
        let events = report.trace.for_job(JobId(0));
        assert!(matches!(events[0], TraceEvent::Submitted { .. }));
        assert!(matches!(events[1], TraceEvent::Launched { .. }));
        assert!(matches!(events[2], TraceEvent::Completed { .. }));
    }

    #[test]
    fn utilization_is_sane() {
        let report = run_fifo(vec![be_job(0, 0, 4, 100)]);
        // 4 nodes busy 100s of a 100s run over 4 nodes: 100%.
        assert!((report.metrics.utilization() - 1.0).abs() < 1e-9);
    }

    /// A scheduler that preempts any running best-effort job whenever an
    /// SLO job is pending, then launches FIFO.
    struct PreemptingFifo;

    impl Scheduler for PreemptingFifo {
        fn cycle(&mut self, ctx: &CycleContext<'_>) -> CycleDecisions {
            let mut d = CycleDecisions::default();
            let slo_pending = ctx.pending.iter().any(|p| p.class.is_slo());
            let mut freed = 0usize;
            if slo_pending {
                for r in ctx.running {
                    if !r.class.is_slo() {
                        d.preemptions.push(r.id);
                        freed += r.nodes.len();
                    }
                }
            }
            let mut free: Vec<NodeId> = ctx.ledger.free_nodes().iter().collect();
            // Nodes freed by preemption this cycle are also usable.
            for r in ctx.running {
                if d.preemptions.contains(&r.id) {
                    free.extend(r.nodes.iter().copied());
                }
            }
            let _ = freed;
            let mut order: Vec<&PendingJob> = ctx.pending.iter().collect();
            order.sort_by_key(|p| !p.class.is_slo()); // SLO first
            for p in order {
                let k = p.spec.k as usize;
                if free.len() >= k {
                    let nodes: Vec<NodeId> = free.drain(..k).collect();
                    d.launches.push(Launch {
                        job: p.spec.id,
                        nodes,
                        expected_end: ctx.now + p.spec.estimated_runtime(),
                    });
                }
            }
            d
        }

        fn name(&self) -> &str {
            "preempting-fifo"
        }
    }

    #[test]
    fn preemption_requeues_and_restarts() {
        // BE job takes the whole cluster; an SLO job arrives and preempts.
        let jobs = vec![be_job(0, 0, 4, 100), slo_job(1, 10, 4, 20, 80)];
        let report = Simulator::new(
            Cluster::uniform(1, 4, 0),
            PreemptingFifo,
            SimConfig::default(),
        )
        .run(jobs);
        assert_eq!(report.metrics.preemptions, 1);
        // SLO met.
        assert_eq!(report.metrics.accepted_slo_met, 1);
        // BE job restarted after preemption and completed eventually.
        assert_eq!(report.metrics.be_completed, 1);
        let be_done = report.outcomes[&JobId(0)].completion().unwrap();
        let slo_done = report.outcomes[&JobId(1)].completion().unwrap();
        assert!(slo_done < be_done, "BE restarted after the SLO job");
        // BE lost its first 12s of progress: completion >= 32 + 100.
        assert!(be_done >= 120);
    }

    fn one_node_outage(at: Time, duration: Time, node: u32) -> FaultPlan {
        FaultPlan::from_script(
            &Cluster::uniform(1, 4, 0),
            &[crate::fault::FaultScript {
                at,
                duration,
                scope: crate::fault::FaultScope::Node(NodeId(node)),
            }],
        )
    }

    #[test]
    fn eviction_retries_then_completes() {
        // Job 0 runs on nodes 0-1 for 100s; node 0 fails at t=30 and heals
        // at t=40. The job is evicted, backs off, and restarts from scratch.
        let config = SimConfig {
            faults: one_node_outage(30, 10, 0),
            retry: RetryPolicy {
                max_retries: 3,
                backoff_base: 8,
                backoff_cap: 64,
            },
            strict_accounting: true,
            trace: true,
            ..SimConfig::default()
        };
        let report =
            Simulator::new(Cluster::uniform(1, 4, 0), Fifo, config).run(vec![be_job(0, 0, 2, 100)]);
        assert_eq!(report.metrics.evictions, 1);
        assert_eq!(report.metrics.retries, 1);
        assert_eq!(report.metrics.abandoned_after_retries, 0);
        let done = report.outcomes[&JobId(0)].completion().unwrap();
        // Evicted at 30, resubmitted at 38, relaunched at the next cycle
        // tick, then a full 100s re-run: strictly later than the fault-free
        // completion at 100.
        assert!(done > 100, "restart must lose progress (done at {done})");
        let events = report.trace.for_job(JobId(0));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Evicted { retry: 1, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Resubmitted { at: 38, .. })));
        // Node-level fault trace is present too.
        assert!(report.trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::NodeDown {
                node: NodeId(0),
                at: 30
            }
        )));
        assert_eq!(report.metrics.down_node_seconds, 10);
    }

    #[test]
    fn stale_complete_after_eviction_is_ignored() {
        // The generation guard: job 0's original Complete event (queued for
        // t=100 at launch) fires after the job was evicted at t=30 and must
        // not complete generation 1. The job completes only via its re-run.
        let config = SimConfig {
            faults: one_node_outage(30, 5, 1),
            retry: RetryPolicy {
                max_retries: 3,
                backoff_base: 100,
                backoff_cap: 100,
            },
            strict_accounting: true,
            trace: true,
            ..SimConfig::default()
        };
        let report =
            Simulator::new(Cluster::uniform(1, 4, 0), Fifo, config).run(vec![be_job(0, 0, 2, 100)]);
        // Backoff of 100s spans the stale Complete at t=100; had the stale
        // event been honored the job would report completion at 100 while
        // holding zero nodes.
        let done = report.outcomes[&JobId(0)].completion().unwrap();
        assert!(
            done > 200,
            "stale completion must be ignored (done at {done})"
        );
        assert_eq!(report.metrics.be_completed, 1);
        let completions = report
            .trace
            .for_job(JobId(0))
            .iter()
            .filter(|e| matches!(e, TraceEvent::Completed { .. }))
            .count();
        assert_eq!(completions, 1);
    }

    #[test]
    fn retry_budget_exhaustion_abandons() {
        // Every retry lands the job back on a cluster whose nodes keep
        // failing; with max_retries=2 the third eviction abandons it.
        let cluster = Cluster::uniform(1, 2, 0);
        let outages = (0..6)
            .map(|i| crate::fault::FaultScript {
                at: 10 + i * 20,
                duration: 5,
                scope: crate::fault::FaultScope::Node(NodeId((i % 2) as u32)),
            })
            .collect::<Vec<_>>();
        let config = SimConfig {
            faults: FaultPlan::from_script(&cluster, &outages),
            retry: RetryPolicy {
                max_retries: 2,
                backoff_base: 1,
                backoff_cap: 1,
            },
            strict_accounting: true,
            trace: true,
            ..SimConfig::default()
        };
        let report = Simulator::new(cluster, Fifo, config).run(vec![be_job(0, 0, 2, 1000)]);
        assert_eq!(report.outcomes[&JobId(0)], JobOutcome::Abandoned { at: 50 });
        assert_eq!(report.metrics.evictions, 3);
        assert_eq!(report.metrics.retries, 2);
        assert_eq!(report.metrics.abandoned_after_retries, 1);
        // Scheduler-initiated abandons are counted separately.
        assert_eq!(report.metrics.abandoned, 0);
        assert!(report
            .trace
            .for_job(JobId(0))
            .iter()
            .any(|e| matches!(e, TraceEvent::RetriesExhausted { at: 50, .. })));
    }

    #[test]
    fn down_nodes_are_not_scheduled() {
        // 2 of 4 nodes down from t=0 to t=50; a 3-wide job cannot launch
        // until the repair.
        let cluster = Cluster::uniform(1, 4, 0);
        let config = SimConfig {
            faults: FaultPlan::from_script(
                &cluster,
                &[crate::fault::FaultScript {
                    at: 0,
                    duration: 50,
                    scope: crate::fault::FaultScope::Nodes(vec![NodeId(0), NodeId(1)]),
                }],
            ),
            strict_accounting: true,
            ..SimConfig::default()
        };
        let report = Simulator::new(cluster, Fifo, config).run(vec![be_job(0, 0, 3, 10)]);
        let done = report.outcomes[&JobId(0)].completion().unwrap();
        assert!(done >= 60, "launch had to wait for repair (done at {done})");
        assert_eq!(report.metrics.evictions, 0);
        assert_eq!(report.metrics.down_node_seconds, 100);
    }

    #[test]
    fn degraded_cycles_are_counted() {
        /// Reports a degraded cycle (with errors) before behaving like FIFO.
        struct DegradedFifo {
            cycles: u32,
        }
        impl Scheduler for DegradedFifo {
            fn cycle(&mut self, ctx: &CycleContext<'_>) -> CycleDecisions {
                let mut d = Fifo.cycle(ctx);
                self.cycles += 1;
                if self.cycles == 1 {
                    d.errors.push(crate::scheduler::CycleError::Solver {
                        detail: "injected".into(),
                    });
                    d.errors.push(crate::scheduler::CycleError::Compile {
                        job: Some(JobId(0)),
                        detail: "injected".into(),
                    });
                    d.degraded = true;
                }
                d
            }
            fn name(&self) -> &str {
                "degraded-fifo"
            }
        }
        let report = Simulator::new(
            Cluster::uniform(1, 4, 0),
            DegradedFifo { cycles: 0 },
            SimConfig {
                trace: true,
                ..SimConfig::default()
            },
        )
        .run(vec![be_job(0, 0, 1, 10)]);
        assert_eq!(report.metrics.degraded_cycles, 1);
        assert_eq!(report.metrics.solver_fallbacks, 1);
        assert_eq!(report.metrics.solver_errors, 1);
        assert_eq!(report.metrics.compile_errors, 1);
        assert!(report
            .trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::CycleDegraded { .. })));
    }

    fn slow_node_window(node: u32, at: Time, duration: Time, factor: f64) -> PerfFaultPlan {
        PerfFaultPlan::from_script(
            &Cluster::uniform(1, 4, 0),
            &[crate::fault::PerfFaultScript {
                at,
                duration,
                scope: crate::fault::FaultScope::Node(NodeId(node)),
                kind: crate::fault::PerfFaultKind::SlowNode { factor },
                announced: false,
            }],
        )
    }

    #[test]
    fn perf_fault_stretches_runtime_from_launch() {
        // Node 0 runs 2x slow for the whole run; a 1-wide 40s job launched
        // on it takes 80s. Healthy runs of the same job take 40s.
        let config = SimConfig {
            perf_faults: slow_node_window(0, 0, 1000, 2.0),
            strict_accounting: true,
            trace: true,
            ..SimConfig::default()
        };
        let report =
            Simulator::new(Cluster::uniform(1, 4, 0), Fifo, config).run(vec![be_job(0, 0, 1, 40)]);
        assert_eq!(report.outcomes[&JobId(0)].completion().unwrap(), 80);
        assert_eq!(report.metrics.perf_faulted_nodes, 1);
        assert!(report.trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::PerfDegraded {
                factor_pct: 200,
                ..
            }
        )));
    }

    #[test]
    fn mid_run_perf_fault_rebases_progress() {
        // A 40s job starts healthy; at t=20 (half done) its node drops to
        // half speed until t=1000. The remaining half takes 40s: done at 60.
        let config = SimConfig {
            perf_faults: slow_node_window(0, 20, 980, 2.0),
            strict_accounting: true,
            trace: true,
            ..SimConfig::default()
        };
        let report =
            Simulator::new(Cluster::uniform(1, 4, 0), Fifo, config).run(vec![be_job(0, 0, 1, 40)]);
        assert_eq!(report.outcomes[&JobId(0)].completion().unwrap(), 60);
        assert!(report
            .trace
            .for_job(JobId(0))
            .iter()
            .any(|e| matches!(e, TraceEvent::GangRetimed { at: 20, .. })));
    }

    #[test]
    fn perf_fault_recovery_rebases_again() {
        // 40s job; node half-speed over [20, 40): 20s fast (half the work),
        // 20s slow (a quarter), then the last quarter at full speed (10s).
        let config = SimConfig {
            perf_faults: slow_node_window(0, 20, 20, 2.0),
            strict_accounting: true,
            trace: true,
            ..SimConfig::default()
        };
        let report =
            Simulator::new(Cluster::uniform(1, 4, 0), Fifo, config).run(vec![be_job(0, 0, 1, 40)]);
        assert_eq!(report.outcomes[&JobId(0)].completion().unwrap(), 50);
        assert!(report.trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::PerfRecovered {
                node: NodeId(0),
                at: 40
            }
        )));
        // The stale completions queued before each rebase must not fire.
        let completions = report
            .trace
            .for_job(JobId(0))
            .iter()
            .filter(|e| matches!(e, TraceEvent::Completed { .. }))
            .count();
        assert_eq!(completions, 1);
    }

    #[test]
    fn overlapping_perf_windows_compose_by_max() {
        // Two windows on node 0: 2x over [0, 200) and 4x over [16, 48).
        // A 32s job: 16s at 2x (8 units), 32s at 4x (8 units), then 2x
        // again for the remaining 16 units -> 32s -> done at 80.
        let cluster = Cluster::uniform(1, 4, 0);
        let plan = slow_node_window(0, 0, 200, 2.0).merge(slow_node_window(0, 16, 32, 4.0));
        let config = SimConfig {
            perf_faults: plan,
            strict_accounting: true,
            ..SimConfig::default()
        };
        let report = Simulator::new(cluster, Fifo, config).run(vec![be_job(0, 0, 1, 32)]);
        assert_eq!(report.outcomes[&JobId(0)].completion().unwrap(), 80);
        assert_eq!(report.metrics.perf_faulted_nodes, 1);
    }

    #[test]
    fn gang_runs_at_slowest_member_rate() {
        // A 2-wide gang with one member on the slow node is slowed whole.
        let config = SimConfig {
            perf_faults: slow_node_window(1, 0, 1000, 3.0),
            strict_accounting: true,
            ..SimConfig::default()
        };
        let report =
            Simulator::new(Cluster::uniform(1, 4, 0), Fifo, config).run(vec![be_job(0, 0, 2, 20)]);
        assert_eq!(report.outcomes[&JobId(0)].completion().unwrap(), 60);
    }

    #[test]
    fn straggler_is_detected_and_migrated_with_progress_preserved() {
        // Four 1-wide jobs; node 0 is 4x slow (unannounced), so job 0
        // stretches from 20s to 80s while jobs 1-3 (100s) progress
        // normally. Once job 0's lateness ratio crosses the detector
        // threshold it is speculatively migrated. The only free node is
        // node 0 again, so the migration is placement-neutral — which is
        // exactly what makes it a progress-preservation test: completion
        // stays at 80 (a progress-losing restart at t=32 would finish at
        // 112).
        let config = SimConfig {
            perf_faults: slow_node_window(0, 0, 10_000, 4.0),
            stragglers: StragglerConfig::defaults(),
            strict_accounting: true,
            trace: true,
            ..SimConfig::default()
        };
        let jobs = vec![
            be_job(0, 0, 1, 20),
            be_job(1, 0, 1, 100),
            be_job(2, 0, 1, 100),
            be_job(3, 0, 1, 100),
        ];
        let report = Simulator::new(Cluster::uniform(1, 4, 0), Fifo, config).run(jobs);
        assert_eq!(report.outcomes[&JobId(0)].completion().unwrap(), 80);
        assert!(report.metrics.stragglers_detected >= 1);
        assert!(report.metrics.speculative_migrations >= 1);
        // The per-job budget bounds migrations.
        assert!(report.metrics.speculative_migrations <= 2);
        assert!(report
            .trace
            .for_job(JobId(0))
            .iter()
            .any(|e| matches!(e, TraceEvent::StragglerMigrated { .. })));
        // Healthy cohort members were never flagged.
        for id in 1..4 {
            assert!(report
                .trace
                .for_job(JobId(id))
                .iter()
                .all(|e| !matches!(e, TraceEvent::StragglerMigrated { .. })));
        }
    }

    #[test]
    fn disabled_straggler_defense_never_migrates() {
        let config = SimConfig {
            perf_faults: slow_node_window(0, 0, 10_000, 4.0),
            strict_accounting: true,
            ..SimConfig::default()
        };
        let jobs = vec![
            be_job(0, 0, 1, 20),
            be_job(1, 0, 1, 100),
            be_job(2, 0, 1, 100),
            be_job(3, 0, 1, 100),
        ];
        let report = Simulator::new(Cluster::uniform(1, 4, 0), Fifo, config).run(jobs);
        assert_eq!(report.metrics.stragglers_detected, 0);
        assert_eq!(report.metrics.speculative_migrations, 0);
        assert_eq!(report.outcomes[&JobId(0)].completion().unwrap(), 80);
    }

    #[test]
    fn perf_fault_on_down_node_is_harmless() {
        // Node 0 is down over [10, 50) and perf-degraded over [20, 30):
        // the perf window finds no owner and the run proceeds normally.
        let config = SimConfig {
            faults: one_node_outage(10, 40, 0),
            perf_faults: slow_node_window(0, 20, 10, 8.0),
            strict_accounting: true,
            trace: true,
            ..SimConfig::default()
        };
        let report =
            Simulator::new(Cluster::uniform(1, 4, 0), Fifo, config).run(vec![be_job(0, 0, 2, 100)]);
        assert_eq!(report.metrics.be_completed, 1);
        assert_eq!(report.metrics.perf_faulted_nodes, 1);
    }

    #[test]
    fn announced_maintenance_registers_with_ledger_health() {
        // An announced window is registered before the run starts; the
        // ledger excludes the node from future availability (covered by
        // cluster tests) and the engine still degrades it while active.
        let cluster = Cluster::uniform(1, 4, 0);
        let plan =
            PerfFaultPlan::maintenance(&cluster, 50, 30, crate::fault::FaultScope::Node(NodeId(2)));
        let config = SimConfig {
            perf_faults: plan,
            strict_accounting: true,
            trace: true,
            ..SimConfig::default()
        };
        let report = Simulator::new(cluster, Fifo, config).run(vec![be_job(0, 0, 1, 200)]);
        assert_eq!(report.metrics.be_completed, 1);
        assert_eq!(report.metrics.perf_faulted_nodes, 1);
        assert!(report.trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::PerfDegraded {
                node: NodeId(2),
                at: 50,
                ..
            }
        )));
    }

    #[test]
    fn ladder_rung_reports_thread_into_metrics_and_trace() {
        /// Reports a rung sequence 0,2,2,1,... through CycleDecisions.
        struct RungFifo {
            cycles: u32,
        }
        impl Scheduler for RungFifo {
            fn cycle(&mut self, ctx: &CycleContext<'_>) -> CycleDecisions {
                let mut d = Fifo.cycle(ctx);
                self.cycles += 1;
                d.ladder_rung = match self.cycles {
                    1 => 0,
                    2 | 3 => 2,
                    _ => 1,
                };
                if d.ladder_rung == 2 {
                    d.anytime_incumbents = 1;
                }
                d
            }
            fn name(&self) -> &str {
                "rung-fifo"
            }
        }
        let report = Simulator::new(
            Cluster::uniform(1, 4, 0),
            RungFifo { cycles: 0 },
            SimConfig {
                trace: true,
                ..SimConfig::default()
            },
        )
        .run(vec![be_job(0, 0, 1, 20)]);
        assert_eq!(report.metrics.ladder_rung, 2);
        assert_eq!(report.metrics.anytime_incumbents, 2);
        // Rung changes (0->2 at cycle 2, 2->1 at cycle 4) are traced.
        let rung_events: Vec<u8> = report
            .trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::LadderRung { rung, .. } => Some(*rung),
                _ => None,
            })
            .collect();
        assert_eq!(rung_events, vec![2, 1]);
    }

    #[test]
    fn abandon_terminates_pending_job() {
        /// Abandons every pending SLO job immediately.
        struct Abandoner;
        impl Scheduler for Abandoner {
            fn cycle(&mut self, ctx: &CycleContext<'_>) -> CycleDecisions {
                CycleDecisions {
                    abandons: ctx.pending.iter().map(|p| p.spec.id).collect(),
                    ..Default::default()
                }
            }
            fn name(&self) -> &str {
                "abandoner"
            }
        }
        let report = Simulator::new(Cluster::uniform(1, 4, 0), Abandoner, SimConfig::default())
            .run(vec![slo_job(0, 0, 2, 10, 100)]);
        assert_eq!(report.metrics.abandoned, 1);
        assert_eq!(report.outcomes[&JobId(0)], JobOutcome::Abandoned { at: 0 });
        assert_eq!(report.metrics.accepted_slo_attainment(), 0.0);
    }
}
