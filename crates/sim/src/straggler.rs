//! Straggler detection: deterministic, cohort-relative.
//!
//! A straggler is a running gang whose observed runtime has outgrown its
//! own estimate by more than the cluster-typical amount. Each running job
//! carries a *lateness ratio* — elapsed wall time over estimated runtime
//! for its placement — and the detector flags jobs whose ratio exceeds
//! `threshold ×` the cohort median, subject to an absolute floor (so a
//! job a few seconds late is never flagged) and a minimum cohort size
//! (so a lone job cannot be a straggler relative to itself).
//!
//! The detector is a pure function of the ratios, so the same simulated
//! state always flags the same jobs — no wall clock, no randomness. The
//! engine responds by *speculatively migrating* flagged gangs: the gang
//! is released (its progress watermark is preserved), re-enters the
//! pending queue, and is re-placed through the normal STRL path, with the
//! PR 2 generation guard invalidating the stale completion event.

use crate::job::JobId;

/// Knobs for the straggler defense. Disabled by default: detection and
/// migration only run when explicitly enabled, so fault-free runs
/// reproduce pre-straggler behavior byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerConfig {
    /// Master switch.
    pub enabled: bool,
    /// Flag a job when `ratio > threshold * cohort_median`.
    pub threshold: f64,
    /// Never flag a job whose ratio is at or below this floor, regardless
    /// of the median (protects against flagging in an all-healthy cohort
    /// where the median is ~1).
    pub min_ratio: f64,
    /// Minimum number of running jobs before anyone can be flagged.
    pub min_cohort: usize,
    /// Speculative migrations performed per scheduling cycle (the rest of
    /// the flagged jobs wait for the next cycle).
    pub max_migrations_per_cycle: usize,
    /// Lifetime migration budget per job; past it the job is left to
    /// finish where it runs.
    pub max_migrations_per_job: u32,
}

impl StragglerConfig {
    /// Detection and migration off.
    pub fn disabled() -> Self {
        StragglerConfig {
            enabled: false,
            ..StragglerConfig::defaults()
        }
    }

    /// Detection on with the default knobs: flag at 2× the cohort median,
    /// 1.5× absolute floor, cohorts of 3+, one migration per cycle, two
    /// per job.
    pub fn defaults() -> Self {
        StragglerConfig {
            enabled: true,
            threshold: 2.0,
            min_ratio: 1.5,
            min_cohort: 3,
            max_migrations_per_cycle: 1,
            max_migrations_per_job: 2,
        }
    }
}

impl Default for StragglerConfig {
    fn default() -> Self {
        StragglerConfig::disabled()
    }
}

/// Flags stragglers in a cohort of `(job, lateness_ratio)` pairs.
///
/// Returns the flagged jobs ordered worst-first (highest ratio, ties by
/// job id) so the caller can apply a per-cycle migration cap and always
/// migrate the worst offender first.
pub fn detect_stragglers(cohort: &[(JobId, f64)], config: &StragglerConfig) -> Vec<JobId> {
    if !config.enabled || cohort.len() < config.min_cohort {
        return Vec::new();
    }
    let mut ratios: Vec<f64> = cohort.iter().map(|&(_, r)| r).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // Lower median: deterministic for even cohorts without averaging.
    let median = ratios[(ratios.len() - 1) / 2];
    let cutoff = config.threshold * median;
    let mut flagged: Vec<(JobId, f64)> = cohort
        .iter()
        .copied()
        .filter(|&(_, r)| r > cutoff && r > config.min_ratio)
        .collect();
    flagged.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    flagged.into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cohort(ratios: &[f64]) -> Vec<(JobId, f64)> {
        ratios
            .iter()
            .enumerate()
            .map(|(i, &r)| (JobId(i as u64), r))
            .collect()
    }

    #[test]
    fn disabled_flags_nothing() {
        let c = cohort(&[1.0, 1.0, 10.0]);
        assert!(detect_stragglers(&c, &StragglerConfig::disabled()).is_empty());
    }

    #[test]
    fn flags_outlier_above_median_multiple() {
        let c = cohort(&[1.0, 1.1, 0.9, 4.0]);
        let flagged = detect_stragglers(&c, &StragglerConfig::defaults());
        assert_eq!(flagged, vec![JobId(3)]);
    }

    #[test]
    fn healthy_cohort_flags_nothing() {
        let c = cohort(&[0.9, 1.0, 1.1, 1.05]);
        assert!(detect_stragglers(&c, &StragglerConfig::defaults()).is_empty());
    }

    #[test]
    fn small_cohort_flags_nothing() {
        let c = cohort(&[1.0, 40.0]);
        assert!(detect_stragglers(&c, &StragglerConfig::defaults()).is_empty());
    }

    #[test]
    fn absolute_floor_guards_fast_cohorts() {
        // Median 0.2: 3x the median is still a fast job; the floor keeps
        // it unflagged.
        let c = cohort(&[0.2, 0.2, 0.2, 0.7]);
        assert!(detect_stragglers(&c, &StragglerConfig::defaults()).is_empty());
    }

    #[test]
    fn worst_first_with_deterministic_ties() {
        let c = vec![
            (JobId(7), 1.0),
            (JobId(3), 5.0),
            (JobId(1), 5.0),
            (JobId(0), 1.0),
            (JobId(4), 0.9),
            (JobId(9), 8.0),
        ];
        let flagged = detect_stragglers(&c, &StragglerConfig::defaults());
        assert_eq!(flagged, vec![JobId(9), JobId(1), JobId(3)]);
    }

    #[test]
    fn detection_is_pure() {
        let c = cohort(&[1.0, 1.0, 1.0, 3.2, 6.0]);
        let cfg = StragglerConfig::defaults();
        assert_eq!(detect_stragglers(&c, &cfg), detect_stragglers(&c, &cfg));
    }
}
