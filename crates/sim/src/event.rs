//! The simulator's event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::job::JobId;
use crate::Time;
use tetrisched_cluster::NodeId;

/// Kinds of simulation events, in processing-priority order for equal
/// timestamps: completions free resources before fault transitions mutate
/// node state, repairs land before new failures (so a zero-length outage
/// nets out to up), arrivals and retry re-queues are recorded next, and
/// the scheduler cycle fires last so it sees a settled state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A running job's gang finished. The generation guards against stale
    /// completions after a preemption restarted the job.
    Complete {
        /// Finished job.
        job: JobId,
        /// Run generation the completion belongs to.
        generation: u32,
    },
    /// A node repair: the node rejoins the free pool.
    NodeUp {
        /// Repaired node.
        node: NodeId,
    },
    /// A node failure: any gang holding the node is evicted and the node
    /// leaves the free pool until a matching [`EventKind::NodeUp`].
    NodeDown {
        /// Failed node.
        node: NodeId,
    },
    /// A performance-fault window starts: the node stays up but slows, and
    /// in-flight work on it is rebased to the new rate. `ix` indexes the
    /// run's [`PerfFaultPlan`](crate::fault::PerfFaultPlan) windows.
    PerfFaultStart {
        /// Window index in the plan.
        ix: usize,
    },
    /// A performance-fault window ends: the node's rate recovers (up to
    /// other still-active windows on the same node).
    PerfFaultEnd {
        /// Window index in the plan.
        ix: usize,
    },
    /// A job arrives in the system.
    Submit {
        /// Arriving job.
        job: JobId,
    },
    /// An evicted job's retry backoff expired; it re-enters the pending
    /// queue.
    Resubmit {
        /// Retrying job.
        job: JobId,
    },
    /// The periodic scheduler cycle.
    CycleTick,
}

impl EventKind {
    fn priority(&self) -> u8 {
        match self {
            EventKind::Complete { .. } => 0,
            EventKind::NodeUp { .. } => 1,
            EventKind::NodeDown { .. } => 2,
            // Perf windows settle after fail-stop transitions (an ending
            // window on a node that just died is a no-op) and before
            // arrivals, so submissions and the cycle see final node rates.
            EventKind::PerfFaultEnd { .. } => 3,
            EventKind::PerfFaultStart { .. } => 4,
            EventKind::Submit { .. } => 5,
            EventKind::Resubmit { .. } => 6,
            EventKind::CycleTick => 7,
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event fires.
    pub at: Time,
    /// What happens.
    pub kind: EventKind,
    /// Insertion sequence, for fully deterministic ordering.
    pub seq: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest event.
        other
            .at
            .cmp(&self.at)
            .then(other.kind.priority().cmp(&self.kind.priority()))
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic min-priority event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, at: Time, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { at, kind, seq });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::CycleTick);
        q.push(10, EventKind::CycleTick);
        q.push(20, EventKind::CycleTick);
        assert_eq!(q.pop().unwrap().at, 10);
        assert_eq!(q.pop().unwrap().at, 20);
        assert_eq!(q.pop().unwrap().at, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_orders_by_kind_priority() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::CycleTick);
        q.push(5, EventKind::Resubmit { job: JobId(3) });
        q.push(5, EventKind::Submit { job: JobId(1) });
        q.push(5, EventKind::NodeDown { node: NodeId(0) });
        q.push(5, EventKind::NodeUp { node: NodeId(0) });
        q.push(5, EventKind::PerfFaultStart { ix: 1 });
        q.push(5, EventKind::PerfFaultEnd { ix: 0 });
        q.push(
            5,
            EventKind::Complete {
                job: JobId(2),
                generation: 0,
            },
        );
        assert!(matches!(q.pop().unwrap().kind, EventKind::Complete { .. }));
        assert!(matches!(q.pop().unwrap().kind, EventKind::NodeUp { .. }));
        assert!(matches!(q.pop().unwrap().kind, EventKind::NodeDown { .. }));
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::PerfFaultEnd { .. }
        ));
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::PerfFaultStart { .. }
        ));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Submit { .. }));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Resubmit { .. }));
        assert!(matches!(q.pop().unwrap().kind, EventKind::CycleTick));
    }

    #[test]
    fn equal_events_order_by_insertion() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::Submit { job: JobId(1) });
        q.push(5, EventKind::Submit { job: JobId(2) });
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Submit { job: JobId(1) }
        ));
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::Submit { job: JobId(2) }
        ));
    }

    #[test]
    fn peek_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(7, EventKind::CycleTick);
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }
}
