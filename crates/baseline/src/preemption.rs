//! Preemption-victim selection for the CapacityScheduler baseline.

use tetrisched_sim::{RunningJob, Time};

/// Whether a running job may be preempted to enforce a capacity guarantee.
///
/// Preemptible containers are those *not* currently protected by a live
/// reservation window: best-effort jobs, SLO jobs without reservations, and
/// formerly reserved jobs that outlived their reservation window.
pub fn is_preemptible(_job: &RunningJob, reservation_end: Option<Time>, now: Time) -> bool {
    match reservation_end {
        // Accepted-SLO job: protected while its reservation window is live.
        Some(end) => now >= end,
        // Everything else runs at best-effort priority.
        None => true,
    }
}

/// Picks victims to free at least `needed` nodes, most recently started
/// first (minimizing lost work), from jobs already determined preemptible.
///
/// Returns the chosen victims (possibly freeing more than `needed` since
/// gangs release whole node sets), or `None` when even preempting every
/// candidate cannot cover the deficit.
pub fn select_victims<'a>(
    candidates: &[&'a RunningJob],
    needed: usize,
) -> Option<Vec<&'a RunningJob>> {
    let total: usize = candidates.iter().map(|j| j.nodes.len()).sum();
    if total < needed {
        return None;
    }
    let mut by_recency: Vec<&RunningJob> = candidates.to_vec();
    // Most recent start first; job id breaks ties deterministically.
    by_recency.sort_by_key(|j| (std::cmp::Reverse(j.started), j.id));
    let mut out = Vec::new();
    let mut freed = 0usize;
    for j in by_recency {
        if freed >= needed {
            break;
        }
        freed += j.nodes.len();
        out.push(j);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrisched_cluster::NodeId;
    use tetrisched_sim::JobId;
    use tetrisched_strl::JobClass;

    fn running(id: u64, started: Time, width: usize) -> RunningJob {
        RunningJob {
            id: JobId(id),
            class: JobClass::BestEffort,
            started,
            nodes: (0..width).map(|i| NodeId(i as u32)).collect(),
            expected_end: started + 100,
            preferred: true,
            deadline: None,
        }
    }

    #[test]
    fn reservation_protects_until_window_end() {
        let j = running(0, 0, 2);
        assert!(!is_preemptible(&j, Some(50), 10));
        assert!(is_preemptible(&j, Some(50), 50));
        assert!(is_preemptible(&j, None, 10));
    }

    #[test]
    fn victims_most_recent_first() {
        let a = running(0, 10, 2);
        let b = running(1, 30, 2);
        let c = running(2, 20, 2);
        let picked = select_victims(&[&a, &b, &c], 3).unwrap();
        let ids: Vec<u64> = picked.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![1, 2]); // started at 30, then 20
    }

    #[test]
    fn insufficient_candidates_returns_none() {
        let a = running(0, 10, 2);
        assert!(select_victims(&[&a], 3).is_none());
    }

    #[test]
    fn exact_fit_stops_early() {
        let a = running(0, 10, 4);
        let b = running(1, 20, 4);
        let picked = select_victims(&[&a, &b], 4).unwrap();
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].id.0, 1);
    }

    #[test]
    fn tie_on_start_breaks_by_id() {
        let a = running(0, 10, 1);
        let b = running(1, 10, 1);
        let picked = select_victims(&[&b, &a], 1).unwrap();
        assert_eq!(picked[0].id.0, 0);
    }
}
