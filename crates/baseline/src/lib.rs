//! The Rayon/CapacityScheduler baseline stack.
//!
//! The paper compares TetriSched against "the best-configured YARN
//! reservation and CapacityScheduler stack" (Sec. 6.1): the Rayon
//! reservation system is enabled, and container preemption is turned on so
//! the CapacityScheduler can enforce Rayon's capacity guarantees. This crate
//! emulates that stack's scheduling behaviour:
//!
//! - jobs with accepted reservations are served from a **production queue**
//!   once their reservation window opens, with guaranteed capacity obtained
//!   by **preempting** best-effort containers when necessary,
//! - a job that outlives its reservation (runtime under-estimate) keeps its
//!   containers but becomes preemptible, competing as best effort — the
//!   contention cascade the paper analyzes in Sec. 7.1,
//! - SLO jobs without reservations and best-effort jobs share a FIFO
//!   **best-effort queue**; their deadline information is invisible to the
//!   scheduler (Sec. 7.1: "the deadline information for any SLO jobs in the
//!   best-effort queue is lost"),
//! - placement is **heterogeneity-oblivious**: free nodes are picked
//!   pseudo-randomly, so GPU/MPI jobs frequently land on slow placements,
//! - there is no plan-ahead and no estimate use at scheduling time.

pub mod capacity_scheduler;
pub mod preemption;

pub use capacity_scheduler::{CapacityScheduler, CapacitySchedulerConfig};
