//! The CapacityScheduler emulation (Rayon/CS stack of Sec. 6.1).

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use tetrisched_cluster::NodeId;
use tetrisched_reservation::Reservation;
use tetrisched_sim::{
    CycleContext, CycleDecisions, JobId, Launch, PendingJob, RunningJob, Scheduler, Time,
};
use tetrisched_strl::JobClass;

use crate::preemption::{is_preemptible, select_victims};

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct CapacitySchedulerConfig {
    /// Whether reserved jobs may preempt best-effort containers — the
    /// paper enables this to give the baseline its best configuration.
    pub enable_preemption: bool,
    /// Seed for the heterogeneity-oblivious placement order.
    pub placement_seed: u64,
}

impl Default for CapacitySchedulerConfig {
    fn default() -> Self {
        CapacitySchedulerConfig {
            enable_preemption: true,
            placement_seed: 1,
        }
    }
}

/// The Rayon/CapacityScheduler baseline.
///
/// See the crate docs for the modelled behaviours. The scheduler is
/// deliberately ignorant of job runtime estimates, placement preferences,
/// and future availability: exactly the information TetriSched exploits.
pub struct CapacityScheduler {
    config: CapacitySchedulerConfig,
    /// Reservations by job, recorded at submission (the scheduler needs
    /// them to know which running containers are protected).
    reservations: HashMap<JobId, Reservation>,
}

impl CapacityScheduler {
    /// Creates the baseline scheduler.
    pub fn new(config: CapacitySchedulerConfig) -> Self {
        CapacityScheduler {
            config,
            reservations: HashMap::new(),
        }
    }

    /// Creates the baseline with default (paper) configuration.
    pub fn paper_default() -> Self {
        Self::new(CapacitySchedulerConfig::default())
    }

    fn reservation_end(&self, job: JobId) -> Option<Time> {
        self.reservations.get(&job).map(|r| r.end)
    }

    /// Heterogeneity-oblivious free-node order: shuffled deterministically
    /// from the seed and cycle time.
    fn shuffled_free(&self, ctx: &CycleContext<'_>) -> Vec<NodeId> {
        let mut free: Vec<NodeId> = ctx.ledger.free_nodes().iter().collect();
        let seed = self
            .config
            .placement_seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(ctx.now);
        free.shuffle(&mut StdRng::seed_from_u64(seed));
        free
    }
}

impl Scheduler for CapacityScheduler {
    fn on_submit(&mut self, job: &PendingJob, _now: Time) {
        if let Some(r) = job.reservation {
            self.reservations.insert(job.spec.id, r);
        }
    }

    fn cycle(&mut self, ctx: &CycleContext<'_>) -> CycleDecisions {
        let mut d = CycleDecisions::default();
        let mut free = self.shuffled_free(ctx);
        let mut preempted: HashSet<JobId> = HashSet::new();

        // Split pending work into the production queue (live reservation
        // window) and the best-effort queue; jobs whose window has not
        // opened yet wait.
        let mut production: Vec<&PendingJob> = Vec::new();
        let mut best_effort: Vec<&PendingJob> = Vec::new();
        for p in ctx.pending {
            match (p.class, p.reservation) {
                (JobClass::SloAccepted, Some(r)) if ctx.now < r.start => {} // waits
                (JobClass::SloAccepted, Some(r)) if ctx.now < r.end => production.push(p),
                // Reservation lapsed (or inconsistent record): best effort.
                _ => best_effort.push(p),
            }
        }
        // Earlier reservations first; id breaks ties.
        production.sort_by_key(|p| (p.reservation.map(|r| r.start), p.spec.id));

        for p in &production {
            let k = p.spec.k as usize;
            if free.len() < k && self.config.enable_preemption {
                let needed = k - free.len();
                let candidates: Vec<&RunningJob> = ctx
                    .running
                    .iter()
                    .filter(|r| {
                        !preempted.contains(&r.id)
                            && is_preemptible(r, self.reservation_end(r.id), ctx.now)
                    })
                    .collect();
                if let Some(victims) = select_victims(&candidates, needed) {
                    for v in victims {
                        preempted.insert(v.id);
                        d.preemptions.push(v.id);
                        free.extend(v.nodes.iter().copied());
                    }
                }
            }
            if free.len() >= k {
                let nodes: Vec<NodeId> = free.drain(..k).collect();
                let preferred = p.spec.placement_preferred(ctx.cluster, &nodes);
                d.launches.push(Launch {
                    job: p.spec.id,
                    nodes,
                    expected_end: ctx.now + p.spec.estimated_runtime_for(preferred),
                });
            }
        }

        // Best-effort FIFO (submission order) with skip: a blocked gang does
        // not stall smaller jobs behind it.
        for p in &best_effort {
            let k = p.spec.k as usize;
            if free.len() >= k {
                let nodes: Vec<NodeId> = free.drain(..k).collect();
                let preferred = p.spec.placement_preferred(ctx.cluster, &nodes);
                d.launches.push(Launch {
                    job: p.spec.id,
                    nodes,
                    expected_end: ctx.now + p.spec.estimated_runtime_for(preferred),
                });
            }
        }

        d
    }

    fn name(&self) -> &str {
        "rayon-cs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetrisched_cluster::Cluster;
    use tetrisched_sim::{JobSpec, JobType, SimConfig, Simulator};

    fn be_job(id: u64, submit: Time, k: u32, runtime: u64) -> JobSpec {
        JobSpec {
            id: JobId(id),
            submit,
            job_type: JobType::Unconstrained,
            k,
            base_runtime: runtime,
            slowdown: 1.0,
            deadline: None,
            estimate_error: 0.0,
        }
    }

    fn slo_job(id: u64, submit: Time, k: u32, runtime: u64, deadline: Time) -> JobSpec {
        JobSpec {
            deadline: Some(deadline),
            ..be_job(id, submit, k, runtime)
        }
    }

    fn run(cluster: Cluster, jobs: Vec<JobSpec>) -> tetrisched_sim::SimReport {
        Simulator::new(
            cluster,
            CapacityScheduler::paper_default(),
            SimConfig::default(),
        )
        .run(jobs)
    }

    #[test]
    fn best_effort_jobs_run_fifo() {
        let report = run(
            Cluster::uniform(1, 4, 0),
            vec![be_job(0, 0, 2, 20), be_job(1, 0, 2, 20)],
        );
        assert_eq!(report.metrics.be_completed, 2);
        assert_eq!(report.metrics.be_mean_latency(), 20.0);
    }

    #[test]
    fn reserved_job_preempts_best_effort() {
        // BE job fills the cluster; a reserved SLO job must preempt it.
        let report = run(
            Cluster::uniform(1, 4, 0),
            vec![be_job(0, 0, 4, 300), slo_job(1, 8, 4, 40, 100)],
        );
        assert!(report.metrics.preemptions >= 1);
        assert_eq!(report.metrics.accepted_slo_met, 1);
        // The BE job restarted and eventually completed.
        assert_eq!(report.metrics.be_completed, 1);
    }

    #[test]
    fn reserved_job_waits_for_window_start() {
        // Capacity 4. First SLO books [0, 50). Second books [50, 100) and
        // must not run before t=50 even though the cluster is idle at 0 —
        // wait: it is NOT idle (job 0 holds it). Use a small first job so
        // the cluster IS idle while job 1 waits for its window.
        let report = run(
            Cluster::uniform(1, 4, 0),
            vec![
                slo_job(0, 0, 4, 50, 60),
                slo_job(1, 0, 4, 40, 150), // admitted after job 0: window starts at 50
            ],
        );
        let t0 = report.outcomes[&JobId(0)].completion().unwrap();
        let t1 = report.outcomes[&JobId(1)].completion().unwrap();
        assert!(t0 <= 60);
        // Job 1 cannot start before its reservation at 50.
        assert!(t1 >= 90, "job 1 completed at {t1}");
        assert_eq!(report.metrics.accepted_slo_met, 2);
    }

    #[test]
    fn underestimated_job_becomes_preemptible() {
        // Job 0 estimates 20s but truly runs 80s: its reservation [0,20)
        // lapses mid-run. Job 1's reservation [20, 60) then preempts it.
        let mut j0 = slo_job(0, 0, 4, 80, 100);
        j0.estimate_error = -0.75; // estimate 20
        let j1 = slo_job(1, 0, 4, 30, 100);
        let report = run(Cluster::uniform(1, 4, 0), vec![j0, j1]);
        assert!(report.metrics.preemptions >= 1, "lapsed job preempted");
        // Job 1 (still protected) meets its deadline.
        let t1 = report.outcomes[&JobId(1)].completion().unwrap();
        assert!(t1 <= 100);
    }

    #[test]
    fn protected_job_is_never_preempted() {
        // Two SLO jobs with non-overlapping reservations: no preemption of
        // a job inside its window.
        let report = run(
            Cluster::uniform(1, 4, 0),
            vec![slo_job(0, 0, 4, 50, 60), slo_job(1, 4, 4, 40, 200)],
        );
        assert_eq!(report.outcomes[&JobId(0)].completion(), Some(50));
        assert_eq!(report.metrics.accepted_slo_met, 2);
    }

    #[test]
    fn oblivious_placement_slows_gpu_jobs() {
        // 2 GPU nodes out of 8; a GPU job placed randomly will often run
        // slowed. With seed 1 and a single 2-wide GPU job on an otherwise
        // empty cluster, verify the completion reflects *some* placement
        // decision (either 60 preferred or 90 slowed) and that the baseline
        // ignores preferences (it never waits for GPU nodes).
        let mut job = be_job(0, 0, 2, 60);
        job.job_type = JobType::Gpu;
        job.slowdown = 1.5;
        let report = run(Cluster::uniform(4, 2, 1), vec![job]);
        let done = report.outcomes[&JobId(0)].completion().unwrap();
        assert!(done == 60 || done == 90, "completion {done}");
    }

    #[test]
    fn deadline_info_lost_in_best_effort_queue() {
        // An SLO job without reservation competes FIFO behind earlier BE
        // work even when its deadline is urgent.
        let jobs = vec![
            be_job(0, 0, 4, 50),
            be_job(1, 0, 4, 50),
            // Rejected reservation (cluster plan full in its window).
            slo_job(2, 0, 4, 30, 35),
        ];
        let report = run(Cluster::uniform(1, 4, 0), jobs);
        // Jobs 0/1 occupy [0, 100); job 2's deadline 35 is blown.
        assert_eq!(report.metrics.nores_slo_met, 0);
    }

    #[test]
    fn does_not_preempt_when_disabled() {
        let sched = CapacityScheduler::new(CapacitySchedulerConfig {
            enable_preemption: false,
            placement_seed: 1,
        });
        let report = Simulator::new(Cluster::uniform(1, 4, 0), sched, SimConfig::default())
            .run(vec![be_job(0, 0, 4, 300), slo_job(1, 8, 4, 40, 100)]);
        assert_eq!(report.metrics.preemptions, 0);
        assert_eq!(report.metrics.accepted_slo_met, 0);
    }

    #[test]
    fn name_reported() {
        assert_eq!(CapacityScheduler::paper_default().name(), "rayon-cs");
    }
}
