//! Property tests for the cluster substrate: bitset algebra, partition
//! refinement laws, and allocation-ledger conservation.

use proptest::prelude::*;
use tetrisched_cluster::{AllocHandle, Ledger, NodeId, NodeSet, PartitionSet};

const UNIVERSE: usize = 48;

fn arb_set() -> impl Strategy<Value = NodeSet> {
    proptest::collection::btree_set(0u32..UNIVERSE as u32, 0..UNIVERSE)
        .prop_map(|ids| NodeSet::from_ids(UNIVERSE, ids.into_iter().map(NodeId)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn set_algebra_laws(a in arb_set(), b in arb_set()) {
        // |A| + |B| = |A ∪ B| + |A ∩ B|.
        prop_assert_eq!(a.len() + b.len(), a.or(&b).len() + a.and(&b).len());
        // A \ B is disjoint from B and unions back to A ∪ B.
        let diff = a.minus(&b);
        prop_assert!(diff.is_disjoint(&b));
        prop_assert_eq!(diff.or(&b.and(&a)).len(), a.len());
        // Subset laws.
        prop_assert!(a.and(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.or(&b)));
    }

    #[test]
    fn refinement_laws(sets in proptest::collection::vec(arb_set(), 0..6)) {
        let p = PartitionSet::refine(UNIVERSE, &sets);
        // Classes are nonempty, disjoint, and exhaustive.
        let mut seen = NodeSet::empty(UNIVERSE);
        for c in p.classes() {
            prop_assert!(!c.is_empty());
            prop_assert!(seen.is_disjoint(c));
            seen = seen.or(c);
        }
        prop_assert_eq!(seen.len(), UNIVERSE);
        // Every input set is an exact union of classes.
        for s in &sets {
            let cover = p.cover(s).expect("refined set must be covered");
            let mut union = NodeSet::empty(UNIVERSE);
            for ix in cover {
                union = union.or(p.class(ix));
            }
            prop_assert_eq!(&union, s);
        }
        // Refinement is idempotent: refining again with class sets keeps
        // the class count.
        let again = PartitionSet::refine(
            UNIVERSE,
            p.classes(),
        );
        prop_assert_eq!(again.len(), p.len());
    }

    #[test]
    fn ledger_conserves_nodes(
        allocs in proptest::collection::vec(
            (proptest::collection::btree_set(0u32..UNIVERSE as u32, 1..8), 1u64..100),
            1..12,
        ),
    ) {
        let mut ledger = Ledger::new(UNIVERSE);
        let mut live: Vec<AllocHandle> = Vec::new();
        for (i, (ids, end)) in allocs.iter().enumerate() {
            let set = NodeSet::from_ids(UNIVERSE, ids.iter().map(|&x| NodeId(x)));
            let handle = AllocHandle(i as u64);
            let free_before = ledger.free_nodes().len();
            match ledger.allocate(handle, set.clone(), *end) {
                Ok(()) => {
                    live.push(handle);
                    prop_assert_eq!(ledger.free_nodes().len(), free_before - set.len());
                }
                Err(_) => {
                    // Failed allocations must not change state.
                    prop_assert_eq!(ledger.free_nodes().len(), free_before);
                }
            }
            // Conservation: free + busy == universe.
            prop_assert_eq!(ledger.free_nodes().len() + ledger.busy_count(), UNIVERSE);
        }
        // Availability is monotone in time.
        let all = NodeSet::full(UNIVERSE);
        let mut prev = 0;
        for t in (0..120).step_by(10) {
            let avail = ledger.avail_at(&all, t);
            prop_assert!(avail >= prev, "availability shrank over time");
            prev = avail;
        }
        // Releasing everything frees the universe.
        for h in live {
            ledger.release(h).expect("release live handle");
        }
        prop_assert_eq!(ledger.free_nodes().len(), UNIVERSE);
    }
}
