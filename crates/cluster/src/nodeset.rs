//! Fixed-capacity bitset of nodes: the representation of equivalence sets.
//!
//! Equivalence sets (paper Sec. 4.2) are sets of machines a job values
//! interchangeably. They are manipulated heavily during partition refinement
//! and availability queries, so they are stored as bitsets over the dense
//! node-id space.

use crate::node::NodeId;
use std::fmt;

/// A set of nodes over a fixed universe of `capacity` node ids.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: usize,
}

impl NodeSet {
    /// Creates an empty set over a universe of `capacity` nodes.
    pub fn empty(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates the full set over a universe of `capacity` nodes.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::empty(capacity);
        for i in 0..capacity {
            s.insert(NodeId(i as u32));
        }
        s
    }

    /// Creates a set from an iterator of node ids.
    pub fn from_ids(capacity: usize, ids: impl IntoIterator<Item = NodeId>) -> Self {
        let mut s = Self::empty(capacity);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Universe size this set was created for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is outside the universe.
    // srclint: checked-indexing: the assert above the store guarantees
    // id.index() < capacity, and words holds ceil(capacity/64) entries.
    pub fn insert(&mut self, id: NodeId) {
        assert!(id.index() < self.capacity, "node id out of universe");
        self.words[id.index() / 64] |= 1u64 << (id.index() % 64);
    }

    /// Removes a node.
    // srclint: checked-indexing: guarded by id.index() < capacity, and
    // words holds ceil(capacity/64) entries.
    pub fn remove(&mut self, id: NodeId) {
        if id.index() < self.capacity {
            self.words[id.index() / 64] &= !(1u64 << (id.index() % 64));
        }
    }

    /// Membership test.
    // srclint: checked-indexing: short-circuit id.index() < capacity guard
    // precedes the word lookup; words holds ceil(capacity/64) entries.
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.capacity && self.words[id.index() / 64] & (1u64 << (id.index() % 64)) != 0
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set intersection.
    pub fn and(&self, other: &NodeSet) -> NodeSet {
        self.zip_with(other, |a, b| a & b)
    }

    /// Set union.
    pub fn or(&self, other: &NodeSet) -> NodeSet {
        self.zip_with(other, |a, b| a | b)
    }

    /// Set difference (`self \ other`).
    pub fn minus(&self, other: &NodeSet) -> NodeSet {
        self.zip_with(other, |a, b| a & !b)
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Whether the two sets share no nodes.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & b == 0)
    }

    /// Iterates node ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(NodeId((wi * 64) as u32 + tz))
                }
            })
        })
    }

    /// Takes up to `k` nodes from the set (lowest ids first); returns fewer
    /// when the set is smaller than `k`.
    pub fn take(&self, k: usize) -> Vec<NodeId> {
        self.iter().take(k).collect()
    }

    fn zip_with(&self, other: &NodeSet, f: impl Fn(u64, u64) -> u64) -> NodeSet {
        assert_eq!(
            self.capacity, other.capacity,
            "node sets from different universes"
        );
        NodeSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            capacity: self.capacity,
        }
    }
}

impl fmt::Display for NodeSet {
    /// Formats as `{M0, M3, M5}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Builds a set sized to the largest id seen. Prefer
    /// [`NodeSet::from_ids`] when the universe size is known.
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let ids: Vec<NodeId> = iter.into_iter().collect();
        let cap = ids.iter().map(|i| i.index() + 1).max().unwrap_or(0);
        NodeSet::from_ids(cap, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::empty(100);
        s.insert(NodeId(5));
        s.insert(NodeId(64));
        assert!(s.contains(NodeId(5)));
        assert!(s.contains(NodeId(64)));
        assert!(!s.contains(NodeId(6)));
        assert_eq!(s.len(), 2);
        s.remove(NodeId(5));
        assert!(!s.contains(NodeId(5)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_operations() {
        let a = NodeSet::from_ids(10, ids(&[1, 2, 3]));
        let b = NodeSet::from_ids(10, ids(&[2, 3, 4]));
        assert_eq!(a.and(&b).take(10), ids(&[2, 3]));
        assert_eq!(a.or(&b).take(10), ids(&[1, 2, 3, 4]));
        assert_eq!(a.minus(&b).take(10), ids(&[1]));
    }

    #[test]
    fn subset_and_disjoint() {
        let a = NodeSet::from_ids(10, ids(&[1, 2]));
        let b = NodeSet::from_ids(10, ids(&[1, 2, 3]));
        let c = NodeSet::from_ids(10, ids(&[4, 5]));
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn full_and_iter_order() {
        let s = NodeSet::full(130);
        assert_eq!(s.len(), 130);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v[0], NodeId(0));
        assert_eq!(v[129], NodeId(129));
    }

    #[test]
    fn take_limits() {
        let s = NodeSet::from_ids(10, ids(&[7, 8, 9]));
        assert_eq!(s.take(2), ids(&[7, 8]));
        assert_eq!(s.take(5), ids(&[7, 8, 9]));
    }

    #[test]
    fn display_format() {
        let s = NodeSet::from_ids(10, ids(&[0, 3]));
        assert_eq!(format!("{s}"), "{M0, M3}");
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        let mut s = NodeSet::empty(4);
        s.insert(NodeId(4));
    }
}
