//! Cluster model for TetriSched: nodes, racks, static attributes,
//! equivalence sets, and the space-time allocation ledger.
//!
//! The TetriSched paper (EuroSys 2016) evaluates on two physical testbeds —
//! RC256 (256 slaves in 8 racks) and RC80 (an 80-node subset) — with static
//! heterogeneity expressed as node attributes (e.g. GPU-enabled racks). This
//! crate models those topologies and provides the two machine-set facilities
//! the scheduler core depends on:
//!
//! - **equivalence sets** ([`NodeSet`]) and their **partition refinement**
//!   ([`partition::PartitionSet`]) — the optimization the paper credits with
//!   "dynamically partitioning cluster resources at the beginning of each
//!   cycle to minimize the number of partition variables" (Sec. 7.3),
//! - the **allocation ledger** ([`allocation::Ledger`]) tracking which nodes
//!   each running job holds and when they are expected to free up, which is
//!   what gives plan-ahead its visibility into future availability
//!   (Sec. 2.3.2).
//!
//! # Examples
//!
//! ```
//! use tetrisched_cluster::{AllocHandle, Attr, Cluster, Ledger, PartitionSet};
//!
//! // The Fig. 1 toy cluster: 2 racks x 2 servers, rack 0 GPU-enabled.
//! let cluster = Cluster::fig1_toy();
//! let gpus = cluster.nodes_with_attr(&Attr::gpu());
//! assert_eq!(gpus.len(), 2);
//!
//! // Refine the cluster against the GPU equivalence set: 2 classes.
//! let parts = PartitionSet::refine(cluster.num_nodes(), &[gpus.clone()]);
//! assert_eq!(parts.len(), 2);
//!
//! // A job holds both GPU nodes until t=20; plan-ahead sees them free at 20.
//! let mut ledger = Ledger::new(cluster.num_nodes());
//! ledger.allocate(AllocHandle(1), gpus.clone(), 20).unwrap();
//! assert_eq!(ledger.avail_at(&gpus, 10), 0);
//! assert_eq!(ledger.avail_at(&gpus, 20), 2);
//! ```

pub mod allocation;
pub mod health;
pub mod node;
pub mod nodeset;
pub mod partition;
pub mod topology;

pub use allocation::{AllocHandle, Ledger};
pub use health::{MaintenanceWindow, NodeHealth};
pub use node::{Attr, Node, NodeId, RackId};
pub use nodeset::NodeSet;
pub use partition::PartitionSet;
pub use topology::Cluster;

/// Simulated wall-clock time in seconds.
pub type Time = u64;
